#!/usr/bin/env python
"""Declarative modelling: magic square from constraints, no custom code.

Run:  python examples/declarative_model.py [n]

The paper's benchmarks ship hand-written incremental cost functions (as the
C library's benchmarks do).  This example shows the other way in: declare
the magic square as a permutation array plus ``2n + 2`` linear equations,
wrap the model in :class:`ModelProblem`, and hand it to the same engine.

Declarative models now run *incrementally* with no user code change:
``ModelProblem`` caches every constraint's error and evaluates candidate
swaps through vectorized per-constraint ``swap_errors`` kernels over a
compiled incidence index, touching only the constraints incident to the
swapped cells.  The comparison against the native implementation below
shows what remains of the generic-vs-plugged-in gap of the C library once
the generic mode is incremental too.
"""

import sys
import time

from repro import AdaptiveSearch, AdaptiveSearchConfig, make_problem
from repro.csp.constraints import LinearConstraint
from repro.csp.domain import IntegerDomain
from repro.csp.model import Model
from repro.problems.base import ModelProblem


def declarative_magic_square(n: int) -> ModelProblem:
    model = Model(f"magic-{n}")
    cells = model.add_array("cell", n * n, IntegerDomain(1, n * n))
    model.declare_permutation(cells)
    magic = n * (n * n + 1) // 2
    ones = [1.0] * n
    for r in range(n):
        model.add_constraint(
            LinearConstraint(
                [r * n + c for c in range(n)], ones, "==", magic, name=f"row{r}"
            )
        )
    for c in range(n):
        model.add_constraint(
            LinearConstraint(
                [r * n + c for r in range(n)], ones, "==", magic, name=f"col{c}"
            )
        )
    model.add_constraint(
        LinearConstraint(
            [i * n + i for i in range(n)], ones, "==", magic, name="diag"
        )
    )
    model.add_constraint(
        LinearConstraint(
            [i * n + (n - 1 - i) for i in range(n)], ones, "==", magic, name="anti"
        )
    )
    return ModelProblem(model)


def main(n: int = 4) -> None:
    config = AdaptiveSearchConfig(
        max_iterations=300_000,
        time_limit=60,
        freeze_loc_min=5,
        reset_limit=max(5, n * n // 8),
        reset_fraction=0.25,
    )

    declarative = declarative_magic_square(n)
    t = time.perf_counter()
    result = AdaptiveSearch(config, use_problem_defaults=False).solve(
        declarative, seed=7
    )
    dt_decl = time.perf_counter() - t
    print(f"declarative model : solved={result.solved} "
          f"iterations={result.iterations} time={dt_decl:.2f}s")
    assert result.solved

    native = make_problem("magic_square", n=n)
    t = time.perf_counter()
    result2 = AdaptiveSearch(config, use_problem_defaults=False).solve(
        native, seed=7
    )
    dt_native = time.perf_counter() - t
    print(f"native incremental: solved={result2.solved} "
          f"iterations={result2.iterations} time={dt_native:.2f}s")
    per_iter_ratio = (dt_decl / result.iterations) / (dt_native / result2.iterations)
    print(f"-> same engine, same landscape; both paths are incremental — "
          f"hand-written deltas keep a ~{per_iter_ratio:.1f}x per-iteration edge "
          f"over the generic constraint kernels")
    print()
    print(native.render(result2.config))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 4)
