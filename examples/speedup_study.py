#!/usr/bin/env python
"""Reproduce the paper's Figures 1-3 end-to-end (scaled-down).

Run:  python examples/speedup_study.py [--quick]

Pipeline (the same one ``benchmarks/`` uses, with smaller sample counts):
1. measure independent sequential solving times of the four paper
   benchmarks (cached in .repro_cache/ — rerunning is instant);
2. rescale to the paper's time regime (pure unit change, see
   EXPERIMENTS.md);
3. simulate HA8000 / Grid'5000 multi-walk executions as min-of-k over the
   measured distribution and plot speedups as ASCII charts.
"""

import sys

from repro.harness import SampleCache, run_experiment


def main(quick: bool = False) -> None:
    cache = SampleCache(".repro_cache")
    n_samples = 30 if quick else 120
    sim_reps = 200 if quick else 500

    for experiment_id in ("fig1", "fig2", "fig3"):
        report = run_experiment(
            experiment_id, cache=cache, n_samples=n_samples, sim_reps=sim_reps
        )
        print(report.render())
        print("=" * 78)


if __name__ == "__main__":
    main(quick="--quick" in sys.argv)
