#!/usr/bin/env python
"""Fitness-landscape analysis of the paper's benchmarks.

Run:  python examples/landscape_analysis.py

Probes each benchmark's swap landscape (improving-move density, cost
autocorrelation / correlation length) and instruments a real Adaptive
Search run (move mix, best-cost timeline).  Together these explain the
per-benchmark parameter choices: smooth landscapes with dense improving
moves barely need the tabu/reset machinery, rugged or plateau-heavy ones
lean on it.
"""

import numpy as np

from repro import AdaptiveSearch, AdaptiveSearchConfig, make_problem
from repro.core.instrumentation import (
    BestCostTimeline,
    MoveHistogram,
    cost_autocorrelation,
    improving_move_density,
)

BENCHMARKS = [
    ("costas", {"n": 11}),
    ("all_interval", {"n": 14}),
    ("magic_square", {"n": 6}),
    ("queens", {"n": 30}),
    ("alpha", {}),
]


def correlation_length(rho1: float) -> float:
    if rho1 <= 0 or rho1 >= 1:
        return float("nan")
    return -1.0 / np.log(rho1)


def main() -> None:
    print(f"{'benchmark':18s} {'improv.density':>14s} {'corr.length':>12s} "
          f"{'move mix of one solving run':>40s}")
    print("-" * 96)
    for family, params in BENCHMARKS:
        problem = make_problem(family, **params)
        density = improving_move_density(problem, n_configs=10, rng=0,
                                         max_pairs=300)
        rho = cost_autocorrelation(problem, walk_length=1500, max_lag=1, rng=0)
        ell = correlation_length(float(rho[1]))

        hist = MoveHistogram()
        timeline = BestCostTimeline()
        solver = AdaptiveSearch(
            AdaptiveSearchConfig(max_iterations=300_000, time_limit=30)
        )
        result = solver.solve(problem, seed=1, callbacks=[hist, timeline])
        status = "solved" if result.solved else f"cost {result.cost:g}"
        print(f"{problem.name:18s} {density:14.3f} {ell:12.1f} "
              f"{hist.summary():>40s}  [{status}]")

    print()
    print("reading: smooth landscapes (long correlation length) with dense")
    print("improving moves favour descent, but smoothness alone is not ease —")
    print("alpha is the smoothest probe here yet needs the most worsening")
    print("moves, because its local minima sit far above cost 0; plateau-")
    print("heavy landscapes (all-interval) instead lean on the freeze/accept")
    print("machinery. The move mix shows which mechanism carried each run.")


if __name__ == "__main__":
    main()
