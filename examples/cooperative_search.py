#!/usr/bin/env python
"""Dependent multi-walk (the paper's future work) vs independent walks.

Run:  python examples/cooperative_search.py

The paper's conclusion proposes inter-process communication — recording
"interesting crossroads" from which restarts can operate — while warning
that beating the independent scheme is hard because configuration costs
are heuristic.  This example runs both schemes side by side and prints the
comparison the paper asks for.
"""

import numpy as np

from repro import AdaptiveSearchConfig, make_problem
from repro.parallel import (
    CooperationConfig,
    CooperativeMultiWalk,
    MultiWalkSolver,
)

WALKERS = 8
SEEDS = (1, 2, 3, 4, 5)


def main() -> None:
    config = AdaptiveSearchConfig(max_iterations=500_000, time_limit=30.0)
    cooperation = CooperationConfig(
        report_interval=32, adopt_interval=128, p_adopt=0.8,
        pool_size=8, min_relative_gain=0.1, perturb_fraction=0.05,
    )

    for family, params in (("costas", {"n": 10}), ("magic_square", {"n": 6})):
        problem = make_problem(family, **params)
        print(f"== {problem.name}, {WALKERS} walkers, {len(SEEDS)} seeds ==")

        indep, coop, adoptions = [], [], 0
        for seed in SEEDS:
            r_i = MultiWalkSolver(config, executor="inline").solve(
                problem, WALKERS, seed=seed
            )
            assert r_i.solved
            indep.append(min(w.iterations for w in r_i.walks if w.solved))

            r_c = CooperativeMultiWalk(config, cooperation).solve(
                problem, WALKERS, seed=seed
            )
            assert r_c.solved
            coop.append(r_c.parallel_iterations)
            adoptions += r_c.adoptions

        med_i, med_c = np.median(indep), np.median(coop)
        print(f"  independent : median {med_i:.0f} parallel iterations")
        print(f"  cooperative : median {med_c:.0f} parallel iterations "
              f"({adoptions} adoptions total)")
        verdict = (
            "cooperation wins" if med_c < med_i * 0.8
            else "independent wins" if med_c > med_i * 1.25
            else "statistical tie"
        )
        print(f"  -> {verdict} (the paper predicts cooperation is hard to "
              "make pay off)")
        print()


if __name__ == "__main__":
    main()
