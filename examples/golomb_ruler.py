#!/usr/bin/env python
"""Value-move Adaptive Search on a non-permutation CSP: Golomb rulers.

Run:  python examples/golomb_ruler.py [order]

The paper's benchmarks are all permutation problems (swap neighbourhood);
the C library also supports general CSPs where a move changes one
variable's value.  This example exercises that mode
(:class:`ValueAdaptiveSearch`) on CSPLib prob006: place marks on a ruler of
optimal length so all pairwise distances differ.
"""

import sys

from repro.core.config import AdaptiveSearchConfig
from repro.core.value_solver import ValueAdaptiveSearch
from repro.problems.golomb import OPTIMAL_LENGTHS, GolombRulerProblem


def render_ruler(marks: list[int], length: int) -> str:
    line = ["-"] * (length + 1)
    for m in marks:
        line[m] = "|"
    return "".join(line)


def main(order: int = 7) -> None:
    problem = GolombRulerProblem(order)
    print(f"searching a perfect Golomb ruler: {order} marks, "
          f"length {problem.length} (optimal, OEIS A003022)")

    solver = ValueAdaptiveSearch(
        AdaptiveSearchConfig(max_iterations=2_000_000, time_limit=60)
    )
    result = solver.solve(problem, seed=2012)
    print(result.summary())
    assert result.solved

    marks = problem.marks(result.config)
    print(f"marks: {marks}")
    print(render_ruler(marks, problem.length))
    distances = sorted(
        b - a for i, a in enumerate(marks) for b in marks[i + 1 :]
    )
    print(f"pairwise distances ({len(distances)}): {distances}")
    assert len(set(distances)) == len(distances)

    print()
    print("solving every order with a stored optimal length:")
    for n in sorted(OPTIMAL_LENGTHS):
        if n < 3:
            continue
        p = GolombRulerProblem(n)
        r = solver.solve(p, seed=42)
        status = f"{r.stats.iterations:6d} iterations" if r.solved else "unsolved"
        print(f"  order {n:2d}, length {p.length:3d}: {status}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 7)
