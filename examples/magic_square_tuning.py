#!/usr/bin/env python
"""Tuning Adaptive Search: what the C library's knobs actually do.

Run:  python examples/magic_square_tuning.py

Sweeps the three tunables that shape the search dynamics on magic-square —
``prob_select_loc_min`` (chance of taking the best non-improving move at a
local minimum), ``freeze_loc_min`` (tabu tenure) and the reset pair
(``reset_limit`` / ``reset_fraction``) — and prints median iterations to
solve.  Also compares Adaptive Search against the min-conflicts baseline.
"""

import numpy as np

from repro import (
    AdaptiveSearch,
    AdaptiveSearchConfig,
    MinConflicts,
    MinConflictsConfig,
    make_problem,
)

SEEDS = range(6)
MAX_ITERS = 60_000


def median_iterations(solver, problem) -> str:
    iters = []
    solved = 0
    for seed in SEEDS:
        result = solver.solve(problem, seed=seed)
        solved += result.solved
        iters.append(result.stats.iterations)
    med = int(np.median(iters))
    return f"{med:>8} iters (solved {solved}/{len(list(SEEDS))})"


def main() -> None:
    problem = make_problem("magic_square", n=6)
    print(f"problem: {problem.name}\n")

    print("-- prob_select_loc_min (accepting non-improving moves) --")
    for prob in (0.0, 0.25, 0.5, 0.75, 1.0):
        cfg = AdaptiveSearchConfig(
            max_iterations=MAX_ITERS, prob_select_loc_min=prob,
            freeze_loc_min=5, reset_limit=10, reset_fraction=0.25,
        )
        solver = AdaptiveSearch(cfg, use_problem_defaults=False)
        print(f"  p={prob:4.2f}: {median_iterations(solver, problem)}")

    print("\n-- freeze_loc_min (tabu tenure after a refused local min) --")
    for freeze in (1, 3, 5, 10, 20):
        cfg = AdaptiveSearchConfig(
            max_iterations=MAX_ITERS, prob_select_loc_min=0.5,
            freeze_loc_min=freeze, reset_limit=10, reset_fraction=0.25,
        )
        solver = AdaptiveSearch(cfg, use_problem_defaults=False)
        print(f"  freeze={freeze:3d}: {median_iterations(solver, problem)}")

    print("\n-- reset aggressiveness --")
    for limit, fraction in ((3, 0.8), (5, 0.25), (10, 0.25), (20, 0.1)):
        cfg = AdaptiveSearchConfig(
            max_iterations=MAX_ITERS, prob_select_loc_min=0.5,
            freeze_loc_min=5, reset_limit=limit, reset_fraction=fraction,
        )
        solver = AdaptiveSearch(cfg, use_problem_defaults=False)
        print(f"  limit={limit:3d} fraction={fraction:.2f}: "
              f"{median_iterations(solver, problem)}")

    print("\n-- engines head-to-head (problem-tuned defaults) --")
    adaptive = AdaptiveSearch(AdaptiveSearchConfig(max_iterations=MAX_ITERS))
    print(f"  adaptive search: {median_iterations(adaptive, problem)}")
    mc = MinConflicts(MinConflictsConfig(max_iterations=MAX_ITERS))
    print(f"  min-conflicts:   {median_iterations(mc, problem)}")




def tuned_with_grid_search() -> None:
    """The same exploration, productized: repro.core.tuning.grid_search."""
    from repro.core.tuning import grid_search
    from repro.util.ascii_plot import render_table

    problem = make_problem("magic_square", n=5)
    result = grid_search(
        problem,
        {
            "freeze_loc_min": [1, 5, 10],
            "prob_select_loc_min": [0.25, 0.5],
        },
        seeds=6,
        max_iterations=60_000,
    )
    print("\n-- grid search (repro.core.tuning) --")
    print(render_table(
        ["parameters", "solve rate", "median iters", "mean iters"],
        result.as_rows(),
        title=f"ranked configurations on {result.problem_name}",
    ))
    print(f"best: {result.best_parameters()}")


if __name__ == "__main__":
    main()
    tuned_with_grid_search()
