#!/usr/bin/env python
"""The Costas Array Problem — the paper's flagship benchmark.

Run:  python examples/costas_array.py [n]

Solves CAP for a given order (default 13), prints the array, then
demonstrates *why* CAP parallelizes so well: its sequential runtime
distribution is approximately exponential, and for memoryless runtimes the
expected minimum of k independent runs is mean/k — ideal linear speedup,
which is exactly the paper's Figure 3.
"""

import sys

import numpy as np

from repro import AdaptiveSearch, AdaptiveSearchConfig, make_problem
from repro.stats import best_fit, predicted_speedup


def main(n: int = 13) -> None:
    problem = make_problem("costas", n=n)
    solver = AdaptiveSearch(AdaptiveSearchConfig(time_limit=120.0))

    print(f"solving {problem.name} ...")
    result = solver.solve(problem, seed=2026)
    print(result.summary())
    assert result.solved
    print(problem.render(result.config))
    print()

    # characterize the runtime distribution over independent runs; costs
    # are measured in engine iterations — the Las Vegas cost unit, free of
    # Python's per-run setup overhead (see EXPERIMENTS.md "Cost metric")
    print("collecting 60 independent sequential solving costs ...")
    iters = []
    for seed in range(60):
        r = solver.solve(problem, seed=seed)
        if r.solved:
            iters.append(max(r.stats.iterations, 1))
    times = np.asarray(iters, dtype=float)
    print(f"mean {times.mean():.0f}  median {np.median(times):.0f}  "
          f"min {times.min():.0f}  max {times.max():.0f}  (iterations)")

    fit = best_fit(times)
    print(f"best-fitting family: {fit.summary()}")
    speedups = predicted_speedup(fit, [16, 32, 64, 128, 256])
    print("model-predicted multi-walk speedups "
          "(linear = the paper's Figure 3):")
    for cores, speedup in speedups.items():
        bar = "#" * min(60, int(round(40 * speedup / 256)))
        print(f"  {cores:4d} cores: {speedup:7.1f}  {bar}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 13)
