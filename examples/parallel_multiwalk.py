#!/usr/bin/env python
"""Independent multi-walk in depth: scaling walkers on one problem.

Run:  python examples/parallel_multiwalk.py

Uses the *inline* executor, which runs every walk to completion and
computes the exact parallel completion time (min across walks) — the
semantics are identical to k dedicated cores because the walks never
communicate.  This lets a single-core machine measure multi-walk scaling
exactly; the process executor is then shown once for real parallelism.
"""

import numpy as np

from repro import AdaptiveSearchConfig, make_problem
from repro.parallel import MultiWalkSolver


def main() -> None:
    problem = make_problem("all_interval", n=14)
    config = AdaptiveSearchConfig(max_iterations=2_000_000, time_limit=60.0)

    print(f"problem: {problem.name}")
    print(f"{'walkers':>8} | {'parallel time':>13} | {'speedup':>8} | "
          f"{'total work (iters)':>18} | winner")
    print("-" * 70)

    baseline = None
    for walkers in (1, 2, 4, 8, 16):
        # average over a few master seeds to smooth run-to-run variance
        times, work, winners = [], [], []
        for seed in (11, 22, 33):
            result = MultiWalkSolver(config, executor="inline").solve(
                problem, walkers, seed=seed
            )
            assert result.solved
            times.append(result.wall_time)
            work.append(result.total_iterations)
            winners.append(result.winner.walk_id)
        mean_time = float(np.mean(times))
        if baseline is None:
            baseline = mean_time
        print(f"{walkers:>8} | {mean_time:>12.3f}s | {baseline / mean_time:>8.2f} | "
              f"{int(np.mean(work)):>18} | {winners}")

    print()
    print("same semantics with real OS processes (executor='process'):")
    result = MultiWalkSolver(config, executor="process").solve(problem, 4, seed=11)
    print(result.summary())


if __name__ == "__main__":
    main()
