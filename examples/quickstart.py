#!/usr/bin/env python
"""Quickstart: solve a CSP with Adaptive Search, sequentially and in parallel.

Run:  python examples/quickstart.py

Covers the three core API entry points in under a minute:
1. build a benchmark problem (``make_problem``),
2. solve it with the sequential Adaptive Search engine,
3. solve it with the paper's independent multi-walk parallel scheme.
"""

from repro import AdaptiveSearch, AdaptiveSearchConfig, make_problem
from repro.parallel import solve_parallel


def main() -> None:
    # -- 1. a problem: 10x10 magic square (CSPLib prob019) ---------------
    problem = make_problem("magic_square", n=10)
    print(f"problem: {problem.name} ({problem.size} variables, "
          f"magic constant {problem.magic_constant})")

    # -- 2. sequential Adaptive Search -----------------------------------
    config = AdaptiveSearchConfig(max_iterations=2_000_000, time_limit=120.0)
    solver = AdaptiveSearch(config)
    result = solver.solve(problem, seed=42)
    print(result.summary())
    assert result.solved, "increase the budget if this ever fails"
    print(problem.render(result.config))
    print()

    # -- 3. independent multi-walk (the paper's parallel scheme) ---------
    # Four walks race from independent random starts; the first one to
    # find a solution wins and the others are cancelled.  On a multi-core
    # machine executor="process" gives real parallel speedup.
    parallel = solve_parallel(
        problem, n_walkers=4, seed=42, config=config, executor="process",
        time_limit=120.0,
    )
    print(parallel.summary())
    assert parallel.solved
    winner = parallel.winner
    print(f"walk {winner.walk_id} solved after {winner.iterations} iterations; "
          f"losing walks were cancelled after the completion broadcast")


if __name__ == "__main__":
    main()
