#!/usr/bin/env python
"""Runtime distributions: *why* the paper's speedups look the way they do.

Run:  python examples/runtime_distributions.py

For each paper benchmark this script measures independent sequential
solving costs (in iterations), scores how *exponential* — i.e. memoryless —
the distribution is, and draws the derived multi-walk runtime
distributions ``F_k(t) = 1 - (1 - F(t))^k``.  An exponential RTD means the
expected minimum of k runs is mean/k: ideal linear speedup, the Costas
regime of Figure 3.  A runtime floor (min runtime / mean) caps speedup at
its inverse: the CSPLib regime of Figures 1-2.
"""

from repro.core.config import AdaptiveSearchConfig
from repro.harness import SampleCache
from repro.harness.runner import BenchmarkSpec, collect_samples, scaled_times
from repro.stats import exponentiality, rtd_chart

BENCHMARKS = [
    BenchmarkSpec("costas", {"n": 12}, label="costas", metric="iterations"),
    BenchmarkSpec("all_interval", {"n": 14}, label="all-interval", metric="iterations"),
    BenchmarkSpec("magic_square", {"n": 6}, label="magic-square", metric="iterations"),
    BenchmarkSpec("perfect_square", {}, label="perfect-square", metric="iterations"),
]


def main(n_runs: int = 60) -> None:
    cache = SampleCache(".repro_cache")
    config = AdaptiveSearchConfig(max_iterations=2_000_000, time_limit=60.0)

    sample_sets = {}
    print("benchmark exponentiality (QQ-r near 1 + tiny floor => linear speedup):")
    for spec in BENCHMARKS:
        samples = collect_samples(
            spec, n_runs, seed=(2012, len(spec.label)), solver_config=config,
            cache=cache,
        )
        values = scaled_times(samples, metric="iterations")
        # normalize each benchmark to mean 1 so the curves share an axis
        sample_sets[spec.label] = values / values.mean()
        print(f"  {spec.label:15s} {exponentiality(values).summary()}")

    print()
    print(rtd_chart(
        {"costas": sample_sets["costas"]},
        walkers=(1, 16, 256),
        title="costas: measured RTD and derived multi-walk RTDs",
    ))
    print()
    print(rtd_chart(
        sample_sets,
        walkers=(1,),
        title="sequential RTDs of the four paper benchmarks (mean-normalized)",
    ))


if __name__ == "__main__":
    main()
