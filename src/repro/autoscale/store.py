"""The model store: keyed runtime models with persistence.

One :class:`ModelStore` holds every learned :class:`RuntimeModel`, keyed
by ``(family, size)``.  A sized observation feeds *two* models — the
exact ``(family, size)`` one and the family-wide aggregate ``(family,
None)`` — which is what makes the lookup ladder work: a never-seen size
of a well-known family answers from the aggregate instead of cold-start
defaults.

Persistence is one JSON document (histograms sparse, fits as
``(name, params)``).  :meth:`open` warm-starts from an existing file and
tolerates a missing one; a *corrupt* file is surfaced as
:class:`~repro.errors.AutoscaleError` by :meth:`load` but silently
replaced by a fresh store in :meth:`open` — a gateway restart must not
crash because its model cache rotted.

Thread-safety: the gateway's asyncio loop, the coordinator's loop, and
CLI threads may share one store, so all mutation happens under a lock
(observe is microseconds; refits are amortized).
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Any, Iterator, Optional

from repro.errors import AutoscaleError
from repro.autoscale.models import RuntimeModel, model_key

__all__ = ["ModelStore"]

#: on-disk schema version
_STORE_VERSION = 1


class ModelStore:
    """Keyed runtime models with a family/size lookup ladder.

    Parameters
    ----------
    path:
        optional persistence path; :meth:`save` without an argument
        writes here.
    min_samples / refit_interval:
        defaults for newly created models (see :class:`RuntimeModel`).
    """

    def __init__(
        self,
        path: str | Path | None = None,
        *,
        min_samples: int = 5,
        refit_interval: int = 8,
    ) -> None:
        self.path = Path(path) if path is not None else None
        self.min_samples = min_samples
        self.refit_interval = refit_interval
        self._models: dict[tuple[str, Optional[int]], RuntimeModel] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # learning
    # ------------------------------------------------------------------
    def _model(self, family: str, size: Optional[int]) -> RuntimeModel:
        key = (family, size)
        model = self._models.get(key)
        if model is None:
            model = RuntimeModel(
                family,
                size,
                min_samples=self.min_samples,
                refit_interval=self.refit_interval,
            )
            self._models[key] = model
        return model

    def observe(
        self, family: str, wall_time: float, size: Optional[int] = None
    ) -> None:
        """Stream one observation into the exact and aggregate models."""
        if not family:
            return
        with self._lock:
            self._model(family, size).observe(wall_time)
            if size is not None:
                self._model(family, None).observe(wall_time)

    # ------------------------------------------------------------------
    # lookup ladder
    # ------------------------------------------------------------------
    def get(
        self, family: str, size: Optional[int] = None
    ) -> Optional[RuntimeModel]:
        """Most specific model with any evidence: exact size, then the
        family aggregate, then ``None`` (callers fall back to defaults)."""
        with self._lock:
            if size is not None:
                model = self._models.get((family, size))
                if model is not None and model.n_observed > 0:
                    return model
            model = self._models.get((family, None))
            if model is not None and model.n_observed > 0:
                return model
        return None

    def __len__(self) -> int:
        with self._lock:
            return len(self._models)

    def __iter__(self) -> Iterator[RuntimeModel]:
        with self._lock:
            models = list(self._models.values())
        return iter(
            sorted(models, key=lambda m: (m.family, m.size is not None, m.size or 0))
        )

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def to_json(self) -> dict[str, Any]:
        with self._lock:
            return {
                "version": _STORE_VERSION,
                "models": [m.to_json() for m in self._models.values()],
            }

    def save(self, path: str | Path | None = None) -> Path:
        """Write the store to ``path`` (default: the constructor path)."""
        target = Path(path) if path is not None else self.path
        if target is None:
            raise AutoscaleError("no path to save the model store to")
        target.parent.mkdir(parents=True, exist_ok=True)
        # write-then-rename: a crash mid-save never corrupts the warm start
        tmp = target.with_suffix(target.suffix + ".tmp")
        tmp.write_text(
            json.dumps(self.to_json(), indent=2) + "\n", encoding="utf-8"
        )
        tmp.replace(target)
        return target

    @classmethod
    def load(
        cls,
        path: str | Path,
        *,
        min_samples: int = 5,
        refit_interval: int = 8,
    ) -> "ModelStore":
        """Strict load: raises :class:`AutoscaleError` on missing/corrupt."""
        source = Path(path)
        try:
            data = json.loads(source.read_text(encoding="utf-8"))
        except OSError as err:
            raise AutoscaleError(f"cannot read model store: {err}") from err
        except json.JSONDecodeError as err:
            raise AutoscaleError(
                f"model store {source} is not valid JSON: {err}"
            ) from err
        if not isinstance(data, dict) or "models" not in data:
            raise AutoscaleError(
                f"model store {source} has no 'models' list"
            )
        store = cls(
            source, min_samples=min_samples, refit_interval=refit_interval
        )
        for record in data["models"]:
            model = RuntimeModel.from_json(record)
            store._models[(model.family, model.size)] = model
        return store

    @classmethod
    def open(
        cls,
        path: str | Path,
        *,
        min_samples: int = 5,
        refit_interval: int = 8,
    ) -> "ModelStore":
        """Forgiving open for services: warm-start when the file is good,
        fresh store (bound to the same path) when missing or corrupt."""
        source = Path(path)
        if source.exists():
            try:
                return cls.load(
                    source,
                    min_samples=min_samples,
                    refit_interval=refit_interval,
                )
            except AutoscaleError:
                pass  # rotted cache: relearn rather than refuse to serve
        return cls(
            source, min_samples=min_samples, refit_interval=refit_interval
        )

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, dict[str, Any]]:
        """Inspection view: one row per model, CLI/healthz friendly."""
        rows: dict[str, dict[str, Any]] = {}
        for model in self:
            rows[model_key(model.family, model.size)] = {
                "observations": model.n_observed,
                "fit": model.fit.name if model.fit is not None else None,
                "mean": round(model.mean(), 6) if model.n_observed else None,
                "p95": (
                    round(model.quantile(0.95), 6) if model.n_observed else None
                ),
            }
        return rows
