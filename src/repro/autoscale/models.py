"""Per problem-family/size runtime models learned online.

A :class:`RuntimeModel` owns one :class:`DecayingHistogram` plus the most
recent parametric fit of it.  Observations stream in from telemetry (the
gateway's completed jobs, the coordinator's solved walks); every
``refit_interval`` observations the histogram's representative sample is
re-fitted with :func:`repro.stats.best_fit` in fallback mode, so a
cold-start model degrades to a labeled point mass instead of raising.

The model answers the three questions the predictive scheduler asks:

- ``quantile(q)`` — hedge triggers (dispatch a second copy past p95);
- ``survival(t)`` / ``expected_min`` via ``fit`` — deadline-hit
  probability and walker-count choice;
- ``mean()`` — predicted cost in walker-seconds for admission.

Serialization keeps the histogram (sparse buckets) and the fit as
``(name, params)`` — :func:`repro.stats.refreeze` rebuilds the frozen
distribution on load, so a restarted service warm-starts exactly where
the previous one left off.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.errors import AutoscaleError, DegenerateSamplesError
from repro.stats import DistributionFit, best_fit, refreeze
from repro.autoscale.histogram import DecayingHistogram

__all__ = ["RuntimeModel", "model_key"]


def model_key(family: str, size: Optional[int]) -> str:
    """Stable string key for one (family, size) model; size ``None`` is the
    family-wide aggregate every sized observation also feeds."""
    return family if size is None else f"{family}/{size}"


class RuntimeModel:
    """One family/size runtime distribution learned from streamed walls.

    Parameters
    ----------
    family / size:
        the problem family (e.g. ``"costas"``) and instance size this
        model describes; ``size=None`` marks the family-wide aggregate.
    min_samples:
        observations before the first fit is attempted.
    refit_interval:
        observations between refits once fitting has started (refits are
        a few milliseconds; amortizing them keeps the observe path cheap).
    """

    def __init__(
        self,
        family: str,
        size: Optional[int] = None,
        *,
        min_samples: int = 5,
        refit_interval: int = 8,
        histogram: DecayingHistogram | None = None,
    ) -> None:
        if min_samples < 1:
            raise AutoscaleError(f"min_samples must be >= 1, got {min_samples}")
        if refit_interval < 1:
            raise AutoscaleError(
                f"refit_interval must be >= 1, got {refit_interval}"
            )
        self.family = family
        self.size = size
        self.min_samples = min_samples
        self.refit_interval = refit_interval
        self.histogram = histogram if histogram is not None else DecayingHistogram()
        self.fit: DistributionFit | None = None
        self.fit_error: str = ""
        self._since_fit = 0

    # ------------------------------------------------------------------
    # learning
    # ------------------------------------------------------------------
    @property
    def n_observed(self) -> int:
        return self.histogram.count

    def observe(self, wall_time: float) -> None:
        """Stream one wall-time observation in; refit when due."""
        before = self.histogram.count
        self.histogram.observe(wall_time)
        if self.histogram.count == before:
            return  # rejected (non-positive / non-finite)
        self._since_fit += 1
        if self.n_observed < self.min_samples:
            return
        if self.fit is None or self._since_fit >= self.refit_interval:
            self.refit()

    def refit(self) -> None:
        """Re-fit the histogram's representative sample (never raises)."""
        self._since_fit = 0
        samples = self.histogram.representative_sample()
        try:
            self.fit = best_fit(samples, on_degenerate="fallback")
            self.fit_error = ""
        except DegenerateSamplesError as err:  # pragma: no cover - empty hist
            self.fit = None
            self.fit_error = str(err)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def quantile(self, q: float) -> float:
        """Runtime quantile from the fit, or the raw histogram before one
        exists (0 when the model has no evidence at all)."""
        if self.fit is not None and self.fit.name != "degenerate":
            return float(self.fit.frozen.ppf(q))
        return self.histogram.quantile(q)

    def mean(self) -> float:
        if self.fit is not None:
            return float(self.fit.mean)
        return self.histogram.mean()

    def cdf(self, t: float) -> float:
        """P(T <= t): fitted when available, else empirical."""
        if self.fit is not None and self.fit.name != "degenerate":
            return float(self.fit.cdf(t))
        return self.histogram.cdf(t)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def to_json(self) -> dict[str, Any]:
        record: dict[str, Any] = {
            "family": self.family,
            "size": self.size,
            "min_samples": self.min_samples,
            "refit_interval": self.refit_interval,
            "histogram": self.histogram.to_json(),
        }
        if self.fit is not None:
            record["fit"] = {
                "name": self.fit.name,
                "params": [float(p) for p in self.fit.params],
            }
        if self.fit_error:
            record["fit_error"] = self.fit_error
        return record

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "RuntimeModel":
        try:
            size = data.get("size")
            model = cls(
                family=str(data["family"]),
                size=None if size is None else int(size),
                min_samples=int(data.get("min_samples", 5)),
                refit_interval=int(data.get("refit_interval", 8)),
                histogram=DecayingHistogram.from_json(data["histogram"]),
            )
        except (KeyError, TypeError, ValueError) as err:
            raise AutoscaleError(f"corrupt model record: {err}") from err
        fit_record = data.get("fit")
        if fit_record is not None:
            try:
                model.fit = refreeze(
                    str(fit_record["name"]), fit_record["params"]
                )
            except (KeyError, TypeError, ValueError) as err:
                raise AutoscaleError(
                    f"corrupt fit record for {model.family}: {err}"
                ) from err
        model.fit_error = str(data.get("fit_error", ""))
        return model

    def summary(self) -> str:
        label = model_key(self.family, self.size)
        if self.fit is None:
            return f"{label}: {self.n_observed} obs, no fit yet"
        return (
            f"{label}: {self.n_observed} obs, {self.fit.name} "
            f"mean={self.mean():.4g} p95={self.quantile(0.95):.4g}"
        )
