"""repro.autoscale — online runtime learning and predictive scheduling.

The paper's central observation — parallel multi-walk speedup is a
function of the *sequential runtime distribution* — run in reverse and
online: instead of measuring a distribution offline to explain a
speedup, the serving stack learns distributions from its own telemetry
and uses them to *choose* walker counts, hedge delays, and admission
costs before each job runs.

Layers, bottom up:

- :class:`DecayingHistogram` — streaming log-bucketed sketch of wall
  times with exponential forgetting;
- :class:`RuntimeModel` — one (family, size) histogram plus its current
  parametric fit, refit periodically via :func:`repro.stats.best_fit`;
- :class:`ModelStore` — all models, the exact→aggregate lookup ladder,
  and JSON persistence for warm restarts;
- :class:`Predictor` — the decision API the gateway planner, the
  coordinator's hedging loop, and the admission controller call.
"""

from repro.autoscale.histogram import DecayingHistogram
from repro.autoscale.models import RuntimeModel, model_key
from repro.autoscale.predictor import Decision, Predictor
from repro.autoscale.store import ModelStore

__all__ = [
    "DecayingHistogram",
    "Decision",
    "ModelStore",
    "Predictor",
    "RuntimeModel",
    "model_key",
]
