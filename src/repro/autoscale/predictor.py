"""The predictive scheduler's decision API.

A :class:`Predictor` turns learned runtime models into the three
scheduling decisions the serving stack needs:

- :meth:`choose_walkers` — how many independent walkers ``k`` a job
  should get.  With a deadline, the smallest ``k`` whose predicted
  first-finisher probability ``P(min_k <= d) = 1 - S(d)^k`` reaches the
  confidence target (the Arbelaez/Truchet/Codognet speedup-prediction
  programme run forward); without one, the largest ``k`` whose predicted
  efficiency ``speedup(k)/k`` stays above a floor — exponential-like
  families get many walkers, saturating families stop early.
- :meth:`hedge_delay` — the fitted runtime quantile past which an
  outstanding walk is a straggler worth duplicating (replaces the fixed
  ``hedge_factor x median`` multiplier).
- :meth:`expected_cost` — predicted walker-seconds of a ``k``-walker job
  (every walker runs until the first finishes, so cost ~ ``k *
  E[min_k]``), the admission controller's shedding currency.

Every decision falls down a ladder when evidence is missing: exact
``(family, size)`` model → family aggregate → static defaults.  The
:class:`Decision` record says which rung answered, so planners and tests
can tell a learned choice from a cold-start default.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Optional

from repro.errors import AutoscaleError
from repro.stats import expected_min
from repro.autoscale.models import RuntimeModel, model_key
from repro.autoscale.store import ModelStore

__all__ = ["Predictor", "Decision"]


@dataclass(frozen=True)
class Decision:
    """One walker-count decision and its provenance."""

    n_walkers: int
    #: ``"default"`` (no model), ``"efficiency"`` or ``"deadline"``
    rule: str
    #: which model answered (``"costas/12"``, ``"costas"``) or ``""``
    model: str = ""
    #: predicted P(finish <= deadline) for the chosen k (deadline rule)
    hit_probability: Optional[float] = None


class Predictor:
    """Predictive scheduling decisions over a :class:`ModelStore`.

    Parameters
    ----------
    store:
        the learned models (default: a fresh in-memory store).
    default_walkers / max_walkers:
        the cold-start plan and the hard ceiling on any plan.
    min_efficiency:
        no-deadline rule: largest ``k`` with ``speedup(k)/k`` above this.
    confidence:
        deadline rule: smallest ``k`` with ``P(min_k <= d)`` above this.
    hedge_quantile:
        default quantile for :meth:`hedge_delay`.
    """

    def __init__(
        self,
        store: ModelStore | None = None,
        *,
        default_walkers: int = 4,
        max_walkers: int = 64,
        min_efficiency: float = 0.5,
        confidence: float = 0.9,
        hedge_quantile: float = 0.95,
    ) -> None:
        if not 1 <= default_walkers <= max_walkers:
            raise AutoscaleError(
                f"need 1 <= default_walkers <= max_walkers, got "
                f"{default_walkers} and {max_walkers}"
            )
        if not 0.0 < min_efficiency <= 1.0:
            raise AutoscaleError(
                f"min_efficiency must be in (0, 1], got {min_efficiency}"
            )
        if not 0.0 < confidence < 1.0:
            raise AutoscaleError(
                f"confidence must be in (0, 1), got {confidence}"
            )
        if not 0.0 < hedge_quantile < 1.0:
            raise AutoscaleError(
                f"hedge_quantile must be in (0, 1), got {hedge_quantile}"
            )
        self.store = store if store is not None else ModelStore()
        self.default_walkers = default_walkers
        self.max_walkers = max_walkers
        self.min_efficiency = min_efficiency
        self.confidence = confidence
        self.hedge_quantile = hedge_quantile

    # ------------------------------------------------------------------
    # learning passthrough
    # ------------------------------------------------------------------
    def observe(
        self, family: str, wall_time: float, size: Optional[int] = None
    ) -> None:
        """Stream one completed-walk/job wall time into the models."""
        self.store.observe(family, wall_time, size=size)

    def save(self) -> Optional[Path]:
        """Persist the store when it has a path (no-op otherwise)."""
        if self.store.path is None:
            return None
        return self.store.save()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _usable(
        self, family: str, size: Optional[int]
    ) -> Optional[RuntimeModel]:
        model = self.store.get(family, size)
        if model is None or model.fit is None:
            return None
        return model

    def _candidates(self) -> list[int]:
        ks = []
        k = 1
        while k <= self.max_walkers:
            ks.append(k)
            k *= 2
        return ks

    # ------------------------------------------------------------------
    # decisions
    # ------------------------------------------------------------------
    def decide(
        self,
        family: str,
        size: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> Decision:
        """Full walker-count decision with provenance."""
        model = self._usable(family, size)
        if model is None:
            return Decision(self.default_walkers, "default")
        label = model_key(model.family, model.size)
        fit = model.fit
        assert fit is not None
        if deadline is not None and deadline > 0:
            best_k, best_p = 1, 0.0
            for k in self._candidates():
                p = self._hit_probability(model, deadline, k)
                if p > best_p + 1e-12:
                    best_k, best_p = k, p
                if p >= self.confidence:
                    return Decision(k, "deadline", label, hit_probability=p)
            # even max_walkers cannot reach the confidence target: give the
            # job the smallest k achieving the best reachable probability
            # rather than burning walkers past the saturation point
            return Decision(
                best_k, "deadline", label, hit_probability=best_p
            )
        if fit.name == "degenerate":
            # a point mass predicts zero speedup: parallelism is pure waste
            return Decision(1, "efficiency", label)
        base = expected_min(fit, 1)
        if base <= 0:
            return Decision(self.default_walkers, "default", label)
        plan = 1
        for k in self._candidates():
            low = expected_min(fit, k)
            if low <= 0:
                break
            if (base / low) / k >= self.min_efficiency:
                plan = k
        return Decision(plan, "efficiency", label)

    def choose_walkers(
        self,
        family: str,
        size: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> int:
        """The walker count alone (see :meth:`decide` for provenance)."""
        return self.decide(family, size, deadline).n_walkers

    @staticmethod
    def _hit_probability(
        model: RuntimeModel, deadline: float, n_walkers: int
    ) -> float:
        """``P(min of k <= deadline)`` under the model's fit."""
        fit = model.fit
        if fit is not None and fit.name != "degenerate":
            survival = float(fit.survival(deadline))
        else:
            survival = 1.0 - model.cdf(deadline)
        survival = min(1.0, max(0.0, survival))
        return 1.0 - survival**n_walkers

    def deadline_hit_probability(
        self,
        family: str,
        deadline: float,
        n_walkers: int,
        size: Optional[int] = None,
    ) -> Optional[float]:
        """Predicted probability that a ``k``-walker job beats ``deadline``
        (``None`` when no model has evidence for the family)."""
        if deadline <= 0 or n_walkers < 1:
            raise AutoscaleError(
                f"need deadline > 0 and n_walkers >= 1, got "
                f"{deadline} and {n_walkers}"
            )
        model = self._usable(family, size)
        if model is None:
            return None
        return self._hit_probability(model, deadline, n_walkers)

    def hedge_delay(
        self,
        family: str,
        size: Optional[int] = None,
        quantile: Optional[float] = None,
    ) -> Optional[float]:
        """Quantile-triggered straggler threshold: hedge a walk once it
        outlives this many seconds (``None`` = no model, caller falls back
        to the fixed multiplier or skips hedging)."""
        q = self.hedge_quantile if quantile is None else quantile
        if not 0.0 < q < 1.0:
            raise AutoscaleError(f"quantile must be in (0, 1), got {q}")
        model = self._usable(family, size)
        if model is None:
            return None
        delay = model.quantile(q)
        return delay if delay > 0 else None

    def expected_cost(
        self,
        family: str,
        n_walkers: int,
        size: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> Optional[float]:
        """Predicted walker-seconds of a ``k``-walker job.

        First-finisher-wins means every walker runs for ``min_k`` then is
        cancelled, so cost ~ ``k * E[min_k]`` (capped at ``k * deadline``
        when a deadline would cut the job off first).  ``None`` when the
        family has no model yet.
        """
        if n_walkers < 1:
            raise AutoscaleError(f"n_walkers must be >= 1, got {n_walkers}")
        model = self._usable(family, size)
        if model is None:
            return None
        runtime = expected_min(model.fit, n_walkers)
        if deadline is not None and deadline > 0:
            runtime = min(runtime, deadline)
        return n_walkers * runtime

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Inspection view merging store rows with per-family plans."""
        rows = self.store.stats()
        for model in self.store:
            key = model_key(model.family, model.size)
            if key in rows and model.fit is not None:
                decision = self.decide(model.family, model.size)
                rows[key]["plan"] = decision.n_walkers
                rows[key]["rule"] = decision.rule
        return rows
