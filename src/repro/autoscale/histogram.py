"""Decaying log-bucketed runtime histograms.

The online learner's substrate: every walk/job wall-time observation
lands in one of ~100 geometrically spaced buckets spanning microseconds
to days, and every observation multiplies existing mass by a decay factor
— so the histogram is an exponentially weighted window over the last
``window`` observations.  Old measurements fade as tenants change the mix
of instances they submit, which is exactly the staleness failure mode a
sliding list would handle with abrupt forgetting.

Two consumers:

- quantile queries (``quantile``/``cdf``) answer hedging and deadline
  questions directly from the empirical mass, no fit required;
- ``representative_sample`` reconstitutes a weighted pseudo-sample for
  :func:`repro.stats.best_fit`, turning the streaming sketch back into
  the offline fitting machinery's input.
"""

from __future__ import annotations

import math
from typing import Any, Sequence

import numpy as np

from repro.errors import AutoscaleError

__all__ = ["DecayingHistogram"]

#: histogram support: 1 microsecond .. ~11.5 days, in seconds
_T_MIN = 1e-6
_T_MAX = 1e6


class DecayingHistogram:
    """Exponentially decaying histogram over log-spaced runtime buckets.

    Parameters
    ----------
    n_buckets:
        bucket count over the fixed ``[1e-6 s, 1e6 s]`` support (values
        outside clamp into the edge buckets).  The default 96 gives 8
        buckets per decade — ~33% relative resolution, plenty for
        quantile-triggered hedging.
    window:
        effective observation window: existing mass is multiplied by
        ``1 - 1/window`` per observation, so total mass converges to
        ``window`` and an observation's weight halves every
        ``~0.69 * window`` arrivals.
    """

    __slots__ = ("n_buckets", "window", "counts", "count", "_growth")

    def __init__(self, n_buckets: int = 96, window: int = 512) -> None:
        if n_buckets < 8:
            raise AutoscaleError(f"n_buckets must be >= 8, got {n_buckets}")
        if window < 2:
            raise AutoscaleError(f"window must be >= 2, got {window}")
        self.n_buckets = n_buckets
        self.window = window
        #: decayed mass per bucket (floats; decay shrinks them)
        self.counts = np.zeros(n_buckets, dtype=np.float64)
        #: lifetime observations (undecayed integer, for refit triggers)
        self.count = 0
        self._growth = math.log(_T_MAX / _T_MIN) / n_buckets

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    def _index(self, value: float) -> int:
        if value <= _T_MIN:
            return 0
        index = int(math.log(value / _T_MIN) / self._growth)
        return min(index, self.n_buckets - 1)

    def _midpoint(self, index: int) -> float:
        """Geometric midpoint of bucket ``index``."""
        return _T_MIN * math.exp(self._growth * (index + 0.5))

    # ------------------------------------------------------------------
    # streaming
    # ------------------------------------------------------------------
    def observe(self, value: float, weight: float = 1.0) -> None:
        """Fold one wall-time observation in (non-positive values ignored)."""
        if not (value > 0.0) or not math.isfinite(value) or weight <= 0.0:
            return
        self.counts *= 1.0 - 1.0 / self.window
        self.counts[self._index(value)] += weight
        self.count += 1

    @property
    def total(self) -> float:
        """Current (decayed) total mass."""
        return float(self.counts.sum())

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def mean(self) -> float:
        """Mass-weighted mean of bucket midpoints (0 when empty)."""
        total = self.total
        if total <= 0.0:
            return 0.0
        mids = np.array([self._midpoint(i) for i in range(self.n_buckets)])
        return float(np.dot(self.counts, mids) / total)

    def quantile(self, q: float) -> float:
        """Empirical quantile by linear interpolation inside the bucket."""
        if not 0.0 <= q <= 1.0:
            raise AutoscaleError(f"quantile must be in [0, 1], got {q}")
        total = self.total
        if total <= 0.0:
            return 0.0
        target = q * total
        cumulative = 0.0
        for index in range(self.n_buckets):
            mass = self.counts[index]
            if mass <= 0.0:
                continue
            if cumulative + mass >= target:
                lo = _T_MIN * math.exp(self._growth * index)
                hi = _T_MIN * math.exp(self._growth * (index + 1))
                frac = (target - cumulative) / mass
                return float(lo + frac * (hi - lo))
            cumulative += mass
        return float(_T_MAX)

    def cdf(self, t: float) -> float:
        """Fraction of (decayed) mass at or below ``t``."""
        total = self.total
        if total <= 0.0:
            return 0.0
        if t <= 0.0:
            return 0.0
        index = self._index(t)
        below = float(self.counts[:index].sum())
        lo = _T_MIN * math.exp(self._growth * index)
        hi = _T_MIN * math.exp(self._growth * (index + 1))
        frac = min(1.0, max(0.0, (t - lo) / (hi - lo)))
        return min(1.0, (below + frac * float(self.counts[index])) / total)

    def representative_sample(self, max_points: int = 256) -> np.ndarray:
        """A weighted pseudo-sample reconstituting the sketch for fitting.

        Each non-empty bucket contributes its geometric midpoint repeated
        proportionally to its mass (at least once, so tails are never
        silently dropped), totalling about ``max_points`` values — the
        shape `best_fit` needs without keeping raw samples around.
        """
        if max_points < 1:
            raise AutoscaleError(f"max_points must be >= 1, got {max_points}")
        total = self.total
        if total <= 0.0:
            return np.empty(0, dtype=np.float64)
        values: list[float] = []
        for index in range(self.n_buckets):
            mass = float(self.counts[index])
            if mass <= 0.0:
                continue
            repeats = max(1, round(mass / total * max_points))
            values.extend([self._midpoint(index)] * repeats)
        return np.asarray(values, dtype=np.float64)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def to_json(self) -> dict[str, Any]:
        return {
            "n_buckets": self.n_buckets,
            "window": self.window,
            "count": self.count,
            # sparse encoding: only non-empty buckets travel
            "buckets": {
                str(i): round(float(self.counts[i]), 9)
                for i in range(self.n_buckets)
                if self.counts[i] > 0.0
            },
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "DecayingHistogram":
        try:
            hist = cls(
                n_buckets=int(data["n_buckets"]), window=int(data["window"])
            )
            hist.count = int(data.get("count", 0))
            for key, mass in dict(data.get("buckets", {})).items():
                index = int(key)
                if not 0 <= index < hist.n_buckets:
                    raise AutoscaleError(
                        f"bucket index {index} outside [0, {hist.n_buckets})"
                    )
                hist.counts[index] = float(mass)
        except (KeyError, TypeError, ValueError) as err:
            raise AutoscaleError(f"corrupt histogram record: {err}") from err
        return hist

    def merge(self, other: "DecayingHistogram") -> None:
        """Fold another histogram's mass in (same geometry required)."""
        if other.n_buckets != self.n_buckets:
            raise AutoscaleError(
                f"cannot merge histograms with {other.n_buckets} vs "
                f"{self.n_buckets} buckets"
            )
        self.counts += other.counts
        self.count += other.count
