"""Exception hierarchy for :mod:`repro`.

Every error raised deliberately by the library derives from
:class:`ReproError`, so callers can catch library failures without masking
programming errors (``TypeError`` etc. still propagate untouched).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ModelError",
    "ProblemError",
    "SolverError",
    "ParallelError",
    "NetError",
    "CoopError",
    "GatewayError",
    "StatsError",
    "DegenerateSamplesError",
    "AutoscaleError",
    "ChaosError",
    "TelemetryError",
    "SimulationError",
    "ExperimentError",
    "CacheError",
]


class ReproError(Exception):
    """Base class for all library-raised errors."""


class ModelError(ReproError):
    """Invalid CSP model construction (bad domain, arity mismatch, ...)."""


class ProblemError(ReproError):
    """Invalid benchmark-problem instance or configuration."""


class SolverError(ReproError):
    """Solver misconfiguration or invariant violation during search."""


class ParallelError(ReproError):
    """Failures of the multi-walk parallel runtime."""


class NetError(ReproError):
    """Failures of the distributed coordinator/node backend."""


class CoopError(ReproError):
    """Invalid cooperative-search (island model) configuration or state."""


class GatewayError(ReproError):
    """Failures of the solve-as-a-service HTTP/WebSocket gateway."""


class StatsError(ReproError):
    """Invalid statistical request (bad samples, impossible fit)."""


class DegenerateSamplesError(StatsError, ValueError):
    """Samples too degenerate to characterize a runtime distribution
    (constant, all near zero, or fewer than the minimum count).

    Subclasses :class:`ValueError` so callers that predate the typed
    hierarchy — and treat any fitting failure as "keep the previous
    model" — continue to work unchanged.
    """


class AutoscaleError(ReproError):
    """Invalid autoscale model store, predictor request, or persistence."""


class ChaosError(ReproError):
    """Invalid fault plan, scenario, or chaos-runner request."""


class TelemetryError(ReproError):
    """Invalid telemetry configuration or corrupt trace data."""


class SimulationError(ReproError):
    """Invalid platform description or simulation request."""


class ExperimentError(ReproError):
    """Unknown experiment id or inconsistent harness request."""


class CacheError(ReproError):
    """Corrupt or unreadable on-disk sample cache."""
