"""Preset platforms with the paper's topologies.

Node/core counts are quoted from the paper's Section 1:

- HA8000 (University of Tokyo): 952 nodes x 4 AMD Opteron 8356 quad-cores
  (16 cores/node, 15232 total); normal service caps a user at 64 nodes
  (1024 cores); the paper used up to 256 cores.
- Grid'5000 Sophia-Antipolis, Suno: 45 Dell PowerEdge R410 x 8 cores = 360.
- Grid'5000 Sophia-Antipolis, Helios: 56 Sun Fire X4100 x 4 cores = 224.

Relative ``core_speed`` is 1.0 on the reference platforms: sequential
samples are measured with *this* library on *this* host, and speedups (the
paper's reported metric) are invariant to a uniform speed factor.  Helios
carries a mild speed handicap and jitter (older AMD nodes on a shared grid).

``launch_overhead`` encodes the empirically relevant difference between the
machines: the HA8000 batch system starts large MPI jobs noticeably slower
than the Grid'5000 clusters, which is the mechanism the paper suspects
behind perfect-square's *worse* speedups on HA8000 once execution times
drop under a second ("execution time is getting too small ... some other
mechanisms interfere").  With a 0.5 s overhead floor on HA8000 vs 0.1 s on
Suno, small-runtime benchmarks saturate exactly as in Figures 1-2.
"""

from __future__ import annotations

from repro.cluster.topology import Platform
from repro.errors import SimulationError

__all__ = [
    "HA8000",
    "GRID5000_SUNO",
    "GRID5000_HELIOS",
    "LOCAL",
    "PLATFORMS",
    "get_platform",
]

HA8000 = Platform(
    name="HA8000",
    nodes=952,
    cores_per_node=16,
    core_speed=1.0,
    launch_overhead=0.5,
    speed_jitter=0.0,
    max_cores_per_job=1024,
    description=(
        "Hitachi HA8000 supercomputer, University of Tokyo: 952 nodes, "
        "4x AMD Opteron 8356 (quad core, 2.3 GHz) per node, 32 GB/node."
    ),
)

GRID5000_SUNO = Platform(
    name="Grid5000/Suno",
    nodes=45,
    cores_per_node=8,
    core_speed=1.0,
    launch_overhead=0.1,
    speed_jitter=0.05,
    max_cores_per_job=0,
    description=(
        "Grid'5000 Sophia-Antipolis, Suno cluster: 45 Dell PowerEdge R410, "
        "8 cores each (360 cores)."
    ),
)

GRID5000_HELIOS = Platform(
    name="Grid5000/Helios",
    nodes=56,
    cores_per_node=4,
    core_speed=0.85,
    launch_overhead=0.12,
    speed_jitter=0.08,
    max_cores_per_job=0,
    description=(
        "Grid'5000 Sophia-Antipolis, Helios cluster: 56 Sun Fire X4100, "
        "4 cores each (224 cores)."
    ),
)

LOCAL = Platform(
    name="local",
    nodes=1,
    cores_per_node=1024,
    core_speed=1.0,
    launch_overhead=0.0,
    speed_jitter=0.0,
    description="Idealized local machine (no overhead, homogeneous cores).",
)

PLATFORMS: dict[str, Platform] = {
    "ha8000": HA8000,
    "grid5000_suno": GRID5000_SUNO,
    "grid5000_helios": GRID5000_HELIOS,
    "local": LOCAL,
}


def get_platform(name: str) -> Platform:
    """Look up a preset platform by key (case-insensitive)."""
    key = name.lower()
    if key not in PLATFORMS:
        known = ", ".join(sorted(PLATFORMS))
        raise SimulationError(f"unknown platform {name!r}; known: {known}")
    return PLATFORMS[key]
