"""Sequential run samples: the raw material of the platform simulation.

A :class:`RunSample` records one independent sequential solve (time,
iterations, outcome).  Collections of samples are what the harness caches on
disk and what the simulator bootstraps from.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from repro.core.result import SolveResult
from repro.errors import CacheError

__all__ = ["RunSample", "samples_from_results", "save_samples", "load_samples", "wall_times", "iteration_counts"]

_FORMAT_VERSION = 1


@dataclass(frozen=True)
class RunSample:
    """One sequential solve, reduced to what the simulation needs."""

    wall_time: float
    iterations: int
    solved: bool
    seed: str = ""

    def __post_init__(self) -> None:
        if self.wall_time < 0:
            raise ValueError(f"wall_time must be >= 0, got {self.wall_time}")
        if self.iterations < 0:
            raise ValueError(f"iterations must be >= 0, got {self.iterations}")


def samples_from_results(
    results: Iterable[SolveResult], seeds: Iterable[object] | None = None
) -> list[RunSample]:
    """Convert solver results into run samples."""
    seed_list = list(seeds) if seeds is not None else None
    samples = []
    for idx, result in enumerate(results):
        seed_repr = ""
        if seed_list is not None and idx < len(seed_list):
            seed_repr = repr(seed_list[idx])
        samples.append(
            RunSample(
                wall_time=result.stats.wall_time,
                iterations=result.stats.iterations,
                solved=result.solved,
                seed=seed_repr,
            )
        )
    return samples


def wall_times(samples: Sequence[RunSample], *, solved_only: bool = True) -> np.ndarray:
    """Wall times as a float array (by default only of solved runs)."""
    chosen = [s for s in samples if s.solved or not solved_only]
    return np.asarray([s.wall_time for s in chosen], dtype=np.float64)


def iteration_counts(
    samples: Sequence[RunSample], *, solved_only: bool = True
) -> np.ndarray:
    """Iteration counts as a float array (machine-independent "time")."""
    chosen = [s for s in samples if s.solved or not solved_only]
    return np.asarray([s.iterations for s in chosen], dtype=np.float64)


def save_samples(path: str | Path, samples: Sequence[RunSample], meta: dict | None = None) -> None:
    """Atomically write samples (+ metadata) as JSON."""
    path = Path(path)
    payload = {
        "version": _FORMAT_VERSION,
        "meta": meta or {},
        "samples": [asdict(s) for s in samples],
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as f:
            json.dump(payload, f)
        os.replace(tmp_name, path)
    except BaseException:
        if os.path.exists(tmp_name):
            os.unlink(tmp_name)
        raise


def load_samples(path: str | Path) -> tuple[list[RunSample], dict]:
    """Read samples written by :func:`save_samples`; returns (samples, meta)."""
    path = Path(path)
    try:
        with open(path, encoding="utf-8") as f:
            payload = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        raise CacheError(f"cannot read sample file {path}: {err}") from err
    if not isinstance(payload, dict) or payload.get("version") != _FORMAT_VERSION:
        raise CacheError(
            f"sample file {path} has unsupported format "
            f"(version={payload.get('version') if isinstance(payload, dict) else '?'})"
        )
    try:
        samples = [RunSample(**record) for record in payload["samples"]]
    except (KeyError, TypeError, ValueError) as err:
        raise CacheError(f"corrupt sample record in {path}: {err}") from err
    return samples, payload.get("meta", {})
