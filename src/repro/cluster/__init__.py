"""Simulated parallel platforms.

The paper ran on two machines we do not have: the Hitachi HA8000
supercomputer (952 nodes x 16 cores) and the Grid'5000 Suno/Helios clusters.
For *communication-free* independent multi-walks, the parallel completion
time on ``k`` homogeneous cores is exactly ``min`` of ``k`` i.i.d. draws from
the sequential runtime distribution (plus job-launch overhead) — the same
order-statistics identity the authors use to analyse their own results.

This package therefore substitutes the hardware with:

- :class:`~repro.cluster.topology.Platform` — machine descriptions with the
  paper's node/core counts, per-core relative speed, and launch overhead;
- :class:`~repro.cluster.simulate.MultiWalkSimulator` — Monte-Carlo
  min-of-k simulation over *measured* sequential run samples, with optional
  per-core speed heterogeneity (the Grid'5000 case).

The substitution is documented in DESIGN.md; its fidelity is validated in
``tests/integration`` by comparing simulated speedups against the exact
inline multi-walk executor on the same sample sets.
"""

from repro.cluster.topology import Platform
from repro.cluster.platforms import (
    GRID5000_HELIOS,
    GRID5000_SUNO,
    HA8000,
    LOCAL,
    PLATFORMS,
    get_platform,
)
from repro.cluster.batch import BatchSimulator, CampaignResult, Job, JobExecution, campaign_jobs
from repro.cluster.simulate import MultiWalkSimulator, SimulatedRun
from repro.cluster.trace import RunSample, load_samples, samples_from_results, save_samples

__all__ = [
    "Platform",
    "HA8000",
    "GRID5000_SUNO",
    "GRID5000_HELIOS",
    "LOCAL",
    "PLATFORMS",
    "get_platform",
    "MultiWalkSimulator",
    "SimulatedRun",
    "BatchSimulator",
    "CampaignResult",
    "Job",
    "JobExecution",
    "campaign_jobs",
    "RunSample",
    "samples_from_results",
    "save_samples",
    "load_samples",
]
