"""Discrete-event batch scheduling of experiment campaigns.

The paper's numbers come from batch campaigns: many multi-walk jobs at
different core counts queued on a shared machine (HA8000's "normal
service", Grid'5000 reservations).  This module simulates such a campaign
with first-come-first-served core allocation, answering questions the
figures do not: how long does the whole Figure-1 campaign occupy the
machine, how much of the machine sits idle, and how long do wide jobs wait
behind narrow ones.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Sequence

from repro.cluster.simulate import MultiWalkSimulator
from repro.cluster.topology import Platform
from repro.errors import SimulationError
from repro.util.rng import SeedLike

__all__ = ["Job", "JobExecution", "CampaignResult", "BatchSimulator", "campaign_jobs"]


@dataclass(frozen=True)
class Job:
    """One batch job: ``cores`` cores held for ``duration`` seconds.

    ``duration`` includes the solver's completion time; the platform's
    launch overhead is added by the scheduler (it is machine time too).
    """

    job_id: str
    cores: int
    duration: float
    label: str = ""

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise SimulationError(f"job {self.job_id}: cores must be >= 1")
        if self.duration < 0:
            raise SimulationError(f"job {self.job_id}: duration must be >= 0")


@dataclass(frozen=True)
class JobExecution:
    """Where one job landed in the schedule."""

    job: Job
    submit_time: float
    start_time: float
    end_time: float

    @property
    def wait_time(self) -> float:
        return self.start_time - self.submit_time


@dataclass
class CampaignResult:
    """Outcome of a whole campaign."""

    executions: list[JobExecution] = field(default_factory=list)
    makespan: float = 0.0
    total_core_seconds: float = 0.0
    capacity_core_seconds: float = 0.0

    @property
    def utilization(self) -> float:
        """Busy core-seconds / available core-seconds over the makespan."""
        if self.capacity_core_seconds <= 0:
            return 0.0
        return self.total_core_seconds / self.capacity_core_seconds

    @property
    def mean_wait(self) -> float:
        if not self.executions:
            return 0.0
        return sum(e.wait_time for e in self.executions) / len(self.executions)

    def summary(self) -> str:
        return (
            f"{len(self.executions)} jobs, makespan {self.makespan:.1f}s, "
            f"utilization {self.utilization:.1%}, "
            f"mean wait {self.mean_wait:.1f}s"
        )


class BatchSimulator:
    """FCFS batch scheduler over one platform's usable cores.

    Jobs are started in submission order as soon as enough cores are free;
    FCFS means a wide job at the queue head blocks later narrow jobs
    (no backfilling) — the conservative classic policy.
    """

    def __init__(self, platform: Platform) -> None:
        self.platform = platform

    def run_campaign(
        self, jobs: Sequence[Job], *, submit_times: Sequence[float] | None = None
    ) -> CampaignResult:
        """Schedule ``jobs``; all submitted at t=0 unless given times."""
        capacity = self.platform.usable_cores
        for job in jobs:
            if job.cores > capacity:
                raise SimulationError(
                    f"job {job.job_id} wants {job.cores} cores but "
                    f"{self.platform.name} offers {capacity} per campaign"
                )
        if submit_times is None:
            submits = [0.0] * len(jobs)
        else:
            submits = [float(t) for t in submit_times]
            if len(submits) != len(jobs):
                raise SimulationError(
                    "submit_times length must match the job list"
                )
            if any(t < 0 for t in submits):
                raise SimulationError("submit times must be >= 0")

        # pending jobs in FCFS order (submit time, sequence number)
        order = sorted(range(len(jobs)), key=lambda i: (submits[i], i))
        free = capacity
        now = 0.0
        running: list[tuple[float, int, int]] = []  # (end_time, seq, cores)
        executions: list[JobExecution] = []
        queue = list(order)
        idx = 0  # next job in FCFS order not yet started
        while idx < len(queue) or running:
            if idx < len(queue):
                j = queue[idx]
                job = jobs[j]
                ready = max(now, submits[j])
                if job.cores <= free and (not running or ready <= running[0][0]):
                    # start the job at `ready`
                    now = ready
                    duration = job.duration + self.platform.launch_overhead
                    end = now + duration
                    heapq.heappush(running, (end, j, job.cores))
                    free -= job.cores
                    executions.append(
                        JobExecution(
                            job=job,
                            submit_time=submits[j],
                            start_time=now,
                            end_time=end,
                        )
                    )
                    idx += 1
                    continue
            # cannot start the next job now: advance to the next completion
            if not running:  # pragma: no cover - guarded by the loop condition
                raise SimulationError("scheduler deadlock (empty machine)")
            end, _j, cores = heapq.heappop(running)
            now = max(now, end)
            free += cores

        makespan = max((e.end_time for e in executions), default=0.0)
        busy = sum(
            (e.end_time - e.start_time) * e.job.cores for e in executions
        )
        return CampaignResult(
            executions=executions,
            makespan=makespan,
            total_core_seconds=busy,
            capacity_core_seconds=makespan * capacity,
        )


def campaign_jobs(
    sample_times: dict[str, Sequence[float]],
    core_counts: Sequence[int],
    platform: Platform,
    *,
    reps_per_point: int = 1,
    rng: SeedLike = None,
) -> list[Job]:
    """Build the jobs of a Figure-1-style campaign.

    One job per (benchmark, core count, repetition); each job's duration is
    one simulated multi-walk completion time at that core count.
    """
    if reps_per_point < 1:
        raise SimulationError("reps_per_point must be >= 1")
    sim = MultiWalkSimulator(platform, rng)
    jobs: list[Job] = []
    for label, times in sample_times.items():
        for cores in core_counts:
            for rep in range(reps_per_point):
                # simulate_run already charges the launch overhead; strip it
                # here because the scheduler re-adds it as machine time
                duration = sim.simulate_run(times, int(cores))
                duration = max(0.0, duration - platform.launch_overhead)
                jobs.append(
                    Job(
                        job_id=f"{label}-{cores}c-r{rep}",
                        cores=int(cores),
                        duration=duration,
                        label=label,
                    )
                )
    return jobs
