"""Platform descriptions.

A :class:`Platform` captures what matters to independent multi-walk
performance: how many cores can be requested, how fast each core runs the
sequential engine relative to the measurement host, how much per-job launch
overhead the batch system adds, and how heterogeneous the cores are (the
Grid'5000 sites mix machine generations; a supercomputer partition does not).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimulationError

__all__ = ["Platform"]


@dataclass(frozen=True)
class Platform:
    """One parallel machine.

    Parameters
    ----------
    name:
        display name ("HA8000", "Grid5000/Suno", ...).
    nodes:
        number of nodes in the machine.
    cores_per_node:
        cores per node; ``nodes * cores_per_node`` bounds walker counts.
    core_speed:
        relative speed of one core w.r.t. the host where sequential samples
        were measured (2.0 = twice as fast, halves simulated runtimes).
    launch_overhead:
        seconds added to every parallel execution (job launch + completion
        detection; the paper's runs pay MPI startup).
    speed_jitter:
        coefficient of variation of per-core speed (0 = homogeneous).
        Models grid heterogeneity; sampled per core per simulated run.
    max_cores_per_job:
        scheduling policy cap (the HA8000 "normal service" limits users to
        64 nodes / 1024 cores); 0 means no cap beyond machine size.
    description:
        free-text provenance note.
    """

    name: str
    nodes: int
    cores_per_node: int
    core_speed: float = 1.0
    launch_overhead: float = 0.0
    speed_jitter: float = 0.0
    max_cores_per_job: int = 0
    description: str = ""

    def __post_init__(self) -> None:
        if self.nodes <= 0:
            raise SimulationError(f"{self.name}: nodes must be > 0, got {self.nodes}")
        if self.cores_per_node <= 0:
            raise SimulationError(
                f"{self.name}: cores_per_node must be > 0, got {self.cores_per_node}"
            )
        if self.core_speed <= 0:
            raise SimulationError(
                f"{self.name}: core_speed must be > 0, got {self.core_speed}"
            )
        if self.launch_overhead < 0:
            raise SimulationError(
                f"{self.name}: launch_overhead must be >= 0, "
                f"got {self.launch_overhead}"
            )
        if not 0.0 <= self.speed_jitter < 1.0:
            raise SimulationError(
                f"{self.name}: speed_jitter must be in [0, 1), "
                f"got {self.speed_jitter}"
            )
        if self.max_cores_per_job < 0:
            raise SimulationError(
                f"{self.name}: max_cores_per_job must be >= 0, "
                f"got {self.max_cores_per_job}"
            )

    @property
    def total_cores(self) -> int:
        return self.nodes * self.cores_per_node

    @property
    def usable_cores(self) -> int:
        """Largest walker count one job may request."""
        if self.max_cores_per_job:
            return min(self.total_cores, self.max_cores_per_job)
        return self.total_cores

    def validate_cores(self, cores: int) -> None:
        """Reject walker counts the machine could not host."""
        if cores <= 0:
            raise SimulationError(f"core count must be >= 1, got {cores}")
        if cores > self.usable_cores:
            raise SimulationError(
                f"{self.name}: {cores} cores requested but at most "
                f"{self.usable_cores} are usable per job"
            )

    def core_speeds(self, cores: int, rng: np.random.Generator) -> np.ndarray:
        """Relative speeds of ``cores`` allocated cores for one run.

        Homogeneous platforms return a constant vector; with
        ``speed_jitter`` > 0 speeds are lognormal around ``core_speed`` with
        the requested coefficient of variation.
        """
        self.validate_cores(cores)
        if self.speed_jitter == 0.0:
            return np.full(cores, self.core_speed)
        cv = self.speed_jitter
        sigma = np.sqrt(np.log1p(cv * cv))
        mu = np.log(self.core_speed) - 0.5 * sigma * sigma
        return rng.lognormal(mean=mu, sigma=sigma, size=cores)

    def __str__(self) -> str:
        return (
            f"{self.name}: {self.nodes} nodes x {self.cores_per_node} cores "
            f"(total {self.total_cores}, usable {self.usable_cores}/job)"
        )
