"""Monte-Carlo min-of-k simulation of independent multi-walk executions.

Given ``m`` measured sequential solving times of one benchmark, a simulated
``k``-core execution draws ``k`` times (bootstrap, with replacement), divides
each by its core's relative speed, takes the minimum, and adds the platform's
launch overhead.  Repeating this yields the distribution of parallel
completion times, hence expected times and speedups for the paper's figures.

Why this is faithful: walks never communicate, so the ``k``-core run time is
*identically* ``min`` of ``k`` independent sequential run times — there is no
modelling approximation beyond bootstrap resampling of the measured
distribution (Verhoeven & Aarts 1995; also the analysis used in the
companion papers [1, 4] of the reproduced paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.cluster.topology import Platform
from repro.errors import SimulationError
from repro.util.rng import SeedLike, as_generator

__all__ = ["SimulatedRun", "MultiWalkSimulator"]


@dataclass(frozen=True)
class SimulatedRun:
    """Aggregate of the simulated parallel-time distribution at one ``k``."""

    cores: int
    mean_time: float
    median_time: float
    std_time: float
    min_time: float
    max_time: float
    n_reps: int

    def as_dict(self) -> dict[str, float]:
        return {
            "cores": self.cores,
            "mean_time": self.mean_time,
            "median_time": self.median_time,
            "std_time": self.std_time,
            "min_time": self.min_time,
            "max_time": self.max_time,
            "n_reps": self.n_reps,
        }


class MultiWalkSimulator:
    """Simulates independent multi-walk executions on a platform.

    Parameters
    ----------
    platform:
        machine description (core counts, speed, overhead, heterogeneity).
    rng:
        seed or generator driving the bootstrap (deterministic experiments
        pass a fixed seed).
    """

    def __init__(self, platform: Platform, rng: SeedLike = None) -> None:
        self.platform = platform
        self.rng = as_generator(rng)

    # ------------------------------------------------------------------
    def _draw(self, source: Sequence[float] | object, size: tuple[int, ...]) -> np.ndarray:
        """Draw runtimes from an empirical sample or a parametric fit.

        ``source`` is either a 1-D array of measured times (nonparametric
        bootstrap) or any object with a ``sample(size, rng)`` method, e.g. a
        :class:`repro.stats.fitting.DistributionFit` (parametric draws).
        Parametric draws matter at high core counts: bootstrapping the
        minimum of ``k`` values from ``m`` measurements floors out near the
        sample minimum once ``k`` approaches ``m``.
        """
        sampler = getattr(source, "sample", None)
        if callable(sampler):
            n = int(np.prod(size))
            draws = np.asarray(sampler(n, self.rng), dtype=np.float64).reshape(size)
            return np.maximum(draws, 0.0)
        arr = np.asarray(source, dtype=np.float64)
        if arr.ndim != 1 or arr.size == 0:
            raise SimulationError(
                "need a non-empty 1-D array of sequential run times"
            )
        if np.any(arr < 0) or not np.all(np.isfinite(arr)):
            raise SimulationError("run times must be finite and non-negative")
        return self.rng.choice(arr, size=size, replace=True)

    def simulate_run(self, samples: Sequence[float] | object, cores: int) -> float:
        """One simulated parallel completion time on ``cores`` cores."""
        self.platform.validate_cores(cores)
        draws = self._draw(samples, (cores,))
        speeds = self.platform.core_speeds(cores, self.rng)
        return float(np.min(draws / speeds) + self.platform.launch_overhead)

    def simulate_many(
        self, samples: Sequence[float] | object, cores: int, n_reps: int = 200
    ) -> np.ndarray:
        """``n_reps`` independent simulated parallel completion times."""
        if n_reps <= 0:
            raise SimulationError(f"n_reps must be >= 1, got {n_reps}")
        self.platform.validate_cores(cores)
        draws = self._draw(samples, (n_reps, cores))
        if self.platform.speed_jitter == 0.0:
            scaled = draws / self.platform.core_speed
        else:
            speeds = np.vstack(
                [self.platform.core_speeds(cores, self.rng) for _ in range(n_reps)]
            )
            scaled = draws / speeds
        return scaled.min(axis=1) + self.platform.launch_overhead

    def summarize(
        self, samples: Sequence[float] | object, cores: int, n_reps: int = 200
    ) -> SimulatedRun:
        """Distribution summary of parallel completion times at one ``k``."""
        times = self.simulate_many(samples, cores, n_reps)
        return SimulatedRun(
            cores=cores,
            mean_time=float(times.mean()),
            median_time=float(np.median(times)),
            std_time=float(times.std(ddof=1)) if len(times) > 1 else 0.0,
            min_time=float(times.min()),
            max_time=float(times.max()),
            n_reps=len(times),
        )

    # ------------------------------------------------------------------
    def expected_times(
        self,
        samples: Sequence[float] | object,
        core_counts: Sequence[int],
        n_reps: int = 200,
    ) -> dict[int, SimulatedRun]:
        """Summaries for a whole sweep of core counts."""
        return {int(k): self.summarize(samples, int(k), n_reps) for k in core_counts}

    def speedups(
        self,
        samples: Sequence[float] | object,
        core_counts: Sequence[int],
        n_reps: int = 200,
        *,
        baseline_cores: int = 1,
    ) -> dict[int, float]:
        """Mean-time speedups relative to ``baseline_cores``.

        The paper's Figures 1-2 use 1-core baselines; Figure 3 (CAP) uses
        32 cores because sequential runs are impractically long — pass
        ``baseline_cores=32`` to reproduce it.
        """
        sweep = sorted({int(k) for k in core_counts} | {int(baseline_cores)})
        runs = self.expected_times(samples, sweep, n_reps)
        base = runs[int(baseline_cores)].mean_time
        if base <= 0:
            raise SimulationError(
                f"baseline mean time is {base}; cannot form speedups"
            )
        return {
            int(k): base / runs[int(k)].mean_time
            for k in core_counts
        }
