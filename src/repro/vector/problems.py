"""Batched problem kernels for the vector-walk engine.

A :class:`VectorProblem` adapter evaluates ``k`` independent walks of one
problem instance simultaneously: the configurations live in a ``(k, n)``
int64 matrix (one lane per row) and every protocol call is a NumPy-batched
kernel over all lanes at once.  The adapters are *exact*: for every lane the
returned errors and swap deltas are bit-identical to the scalar
:class:`~repro.problems.base.Problem` protocol on that lane's configuration,
which is what makes the vector engine's trajectories reproducible against
the scalar engine (see ``tests/vector``).

Design rule (why there is no incremental state here): scalar walks maintain
per-walk caches because one swap invalidates O(1) of them.  Across ``k``
lanes the bookkeeping for incremental updates (different swaps per lane,
partial resets, restarts) costs more in Python than rebuilding the derived
tables from the configuration matrix with two or three full-width NumPy
passes — so ``begin_round`` rebuilds everything, once per lock-step round.

Batched swap-delta kernels
--------------------------
``magic_square``
    the scalar all-``j`` delta formula lifted to ``(k, n)`` with per-lane
    gathers of the selected variable's row/column/diagonal sums (int32
    arithmetic; all quantities are small integers, so float64 results are
    exact).
``costas`` / ``all_interval``
    both costs are count-table costs ``sum_b max(c_b - 1, 0)`` over buckets
    holding ``N`` items, which equals ``N - distinct``.  Distinct values fit
    a machine-word bitmask (differences span < 64 values), so the cost of a
    candidate configuration is ``N`` minus the popcount of an OR-reduction —
    no scatter, no sort, no per-bucket collision handling.  The kernel
    materializes the *post-swap* difference tensor for every candidate ``j``
    in one shot via indicator tables: ``new = old + (T[i] - T[j]) * dv``,
    then OR-reduces bit masks and popcounts.  Padding slots carry a
    dedicated sentinel bit that inflates every lane and candidate equally
    and cancels in the delta.
"""

from __future__ import annotations

from typing import Callable, Type

import numpy as np

from repro.problems.all_interval import AllIntervalProblem
from repro.problems.base import Problem
from repro.problems.costas import CostasProblem
from repro.problems.magic_square import MagicSquareProblem

__all__ = [
    "VectorProblem",
    "VectorMagicSquare",
    "VectorCostas",
    "VectorAllInterval",
    "ScalarLaneFallback",
    "register_vector_adapter",
    "as_vector_problem",
    "has_batched_kernels",
]


class VectorProblem:
    """Protocol advancing ``k`` lanes of one problem in lock-step.

    Call order per round: ``begin_round(configs)`` once, then ``errors()``
    and ``deltas(i_sel)`` against the tables built from that snapshot.  The
    engine mutates ``configs`` only *after* ``deltas`` (swaps / resets), so
    staleness is never observable.

    ``errors`` and ``deltas`` may return any numeric dtype (values must be
    exact) and may reuse an internal buffer — the engine consumes both
    before the next ``begin_round``.  ``delta_sentinel`` is the "never pick
    this" value the engine writes over the selected variable's own column
    before the batched argmin: ``inf`` for float kernels, the dtype maximum
    for integer kernels (whose real deltas are orders of magnitude smaller).
    """

    #: True for real batched kernels, False for the per-lane fallback
    batched = True

    #: written over column ``i_sel`` before the argmin; see class docstring
    delta_sentinel: float = np.inf

    def __init__(self, problem: Problem, k: int) -> None:
        if k < 1:
            raise ValueError(f"lane count must be >= 1, got {k}")
        self.problem = problem
        self.k = int(k)
        self.n = problem.size

    def begin_round(self, configs: np.ndarray) -> None:
        """Rebuild derived tables from the ``(k, n)`` configuration matrix."""
        raise NotImplementedError

    def errors(self) -> np.ndarray:
        """Per-variable error projection, ``(k, n)`` float64."""
        raise NotImplementedError

    def deltas(self, i_sel: np.ndarray) -> np.ndarray:
        """Swap deltas of lane ``l``'s variable ``i_sel[l]`` against every
        ``j``, as a ``(k, n)`` numeric matrix with entry
        ``[l, i_sel[l]] == 0``."""
        raise NotImplementedError

    # -- optional incremental hooks -----------------------------------
    # The engine reports every mutation it makes to the configuration
    # matrix between rounds.  Adapters that maintain derived state
    # incrementally (cheaper than a full rebuild when most lanes change by
    # one swap) override these; the defaults keep ``begin_round`` as a
    # from-scratch rebuild.

    def notify_swaps(
        self, lanes: np.ndarray, ii: np.ndarray, jj: np.ndarray, configs: np.ndarray
    ) -> None:
        """Lanes ``lanes`` swapped cells ``ii``/``jj`` (already applied)."""

    def notify_rows(self, lanes: "list[int]", configs: np.ndarray) -> None:
        """Whole rows rewritten (partial reset / restart)."""

    def lane_costs(self, configs: np.ndarray) -> np.ndarray:
        """Stateless cost of every lane, ``(k,)`` float64."""
        problem = self.problem
        return np.asarray(
            [problem.cost(configs[lane]) for lane in range(len(configs))],
            dtype=np.float64,
        )


# ----------------------------------------------------------------------
# magic square
# ----------------------------------------------------------------------
class VectorMagicSquare(VectorProblem):
    """Batched magic-square kernels (order ``n``, ``A = n*n`` variables).

    All arithmetic runs in the narrowest exact integer dtype: per-family
    delta terms are bounded by twice the worst line error, which fits int16
    through order 31 (int32 beyond), and the four family terms accumulate
    into an int32 buffer — a 4x memory-traffic reduction versus float64
    that the delta kernel, being bandwidth-bound at ``(k, A)`` width, turns
    directly into throughput.  Line sums are stored ``- m`` (the magic
    constant) so every error term is a plain ``abs``.
    """

    def __init__(self, problem: MagicSquareProblem, k: int) -> None:
        super().__init__(problem, k)
        n = self.order = problem.order
        A = self.n
        self.m = problem.magic_constant
        self._rows = problem._rows  # (A,) cell -> row index
        self._cols = problem._cols
        self._on_diag = problem._on_diag
        self._on_anti = problem._on_anti
        self._ar = np.arange(k)
        # worst line sum = the n largest values in one line; a combined
        # row term |s_i'| - e_i + |s_j'| - e_j stays within 2*(err + A)
        bound = int(np.arange(A - n + 1, A + 1).sum())
        worst_term = (bound - self.m) + A
        self._cdt = np.int16 if 2 * worst_term < np.iinfo(np.int16).max else np.int32
        self.delta_sentinel = int(np.iinfo(np.int32).max)
        self._diag_cells = np.flatnonzero(problem._on_diag)
        self._anti_cells = np.flatnonzero(problem._on_anti)
        self._on_diag_c = problem._on_diag.astype(self._cdt)
        self._on_anti_c = problem._on_anti.astype(self._cdt)
        self._cfg = np.empty((k, A), dtype=self._cdt)
        self._dv = np.empty((k, A), dtype=self._cdt)
        self._t = np.empty((k, A), dtype=self._cdt)
        self._t2 = np.empty((k, A), dtype=self._cdt)
        self._t3 = np.empty((k, A), dtype=self._cdt)
        self._acc = np.empty((k, A), dtype=np.int32)
        # a cell error sums four non-negative line terms, so uint16 holds
        # it whenever the combined bound fits — half the argmax traffic
        edt = np.uint16 if 4 * worst_term < np.iinfo(np.uint16).max else np.int32
        self._err = np.empty((k, A), dtype=edt)
        self._diag_ix = np.arange(n)
        self._synced = False
        self._dirty: list[int] = []

    def _rebuild_lane(self, lane: int, configs: np.ndarray) -> None:
        n, cdt, m = self.order, self._cdt, self.m
        self._cfg[lane] = configs[lane]
        g = self._cfg[lane].reshape(n, n)
        ix = self._diag_ix
        self._rs[lane] = g.sum(axis=1, dtype=cdt)
        self._rs[lane] -= cdt(m)
        self._cs[lane] = g.sum(axis=0, dtype=cdt)
        self._cs[lane] -= cdt(m)
        self._dg[lane] = g[ix, ix].sum(dtype=cdt) - cdt(m)
        self._at[lane] = g[ix, n - 1 - ix].sum(dtype=cdt) - cdt(m)

    def notify_swaps(
        self, lanes: np.ndarray, ii: np.ndarray, jj: np.ndarray, configs: np.ndarray
    ) -> None:
        if not self._synced or lanes.size == 0:
            return
        new_i = configs[lanes, ii]
        new_j = configs[lanes, jj]
        self._cfg[lanes, ii] = new_i
        self._cfg[lanes, jj] = new_j
        d = (new_i - new_j).astype(self._cdt)  # value change at cell ii
        rows, cols = self._rows, self._cols
        # lanes are unique, so each (lane, line) slot appears once per
        # statement; same-line swaps cancel across the two statements
        self._rs[lanes, rows[ii]] += d
        self._rs[lanes, rows[jj]] -= d
        self._cs[lanes, cols[ii]] += d
        self._cs[lanes, cols[jj]] -= d
        self._dg[lanes] += d * (self._on_diag_c[ii] - self._on_diag_c[jj])
        self._at[lanes] += d * (self._on_anti_c[ii] - self._on_anti_c[jj])

    def notify_rows(self, lanes: "list[int]", configs: np.ndarray) -> None:
        if self._synced:
            self._dirty.extend(lanes)

    def begin_round(self, configs: np.ndarray) -> None:
        k, n = self.k, self.order
        cdt, m = self._cdt, self.m
        if self._synced:
            for lane in self._dirty:
                self._rebuild_lane(lane, configs)
            self._dirty.clear()
        else:
            np.copyto(self._cfg, configs, casting="unsafe")
            grid = self._cfg.reshape(k, n, n)
            # line sums relative to the magic constant
            self._rs = grid.sum(axis=2, dtype=cdt)
            self._rs -= cdt(m)
            self._cs = grid.sum(axis=1, dtype=cdt)
            self._cs -= cdt(m)
            ix = self._diag_ix
            self._dg = grid[:, ix, ix].sum(axis=1, dtype=cdt)
            self._dg -= cdt(m)
            self._at = grid[:, ix, n - 1 - ix].sum(axis=1, dtype=cdt)
            self._at -= cdt(m)
            self._synced = True
        self._re = np.abs(self._rs)
        self._ce = np.abs(self._cs)
        self._de = np.abs(self._dg)
        self._ae = np.abs(self._at)

    def errors(self) -> np.ndarray:
        # cell c has row c // n and column c % n, so the per-cell error is
        # one broadcast add over the (k, n, n) view — no gather, no copy.
        # The abs'd line terms are non-negative, so when the error buffer
        # is uint16 the int16 terms are reinterpreted (a free view, same
        # bits) rather than cast.
        k, n = self.k, self.order
        e = self._err
        re, ce, de, ae = self._re, self._ce, self._de, self._ae
        if e.dtype == np.uint16:
            re, ce = re.view(np.uint16), ce.view(np.uint16)
            de, ae = de.view(np.uint16), ae.view(np.uint16)
        np.add(re[:, :, None], ce[:, None, :], out=e.reshape(k, n, n))
        e[:, self._diag_cells] += de[:, None]
        e[:, self._anti_cells] += ae[:, None]
        return e

    def deltas(self, i_sel: np.ndarray) -> np.ndarray:
        ar = self._ar
        cfg = self._cfg
        n = self.order
        rows, cols = self._rows, self._cols
        rs, cs, re, ce = self._rs, self._cs, self._re, self._ce
        dv, t, t2, t3, acc = self._dv, self._t, self._t2, self._t3, self._acc
        lane_col = ar[:, None]
        span = np.arange(n)[None, :]

        vi = cfg[ar, i_sel][:, None]                     # (k, 1)
        np.subtract(cfg, vi, out=dv)                     # (k, A)
        ri = rows[i_sel]                                 # (k,)
        ci = cols[i_sel]

        # rows: |s_i + dv| - e_i + |s_j - dv| - e_j, zero within i's own
        # row.  Cell c sits in row c // n, so the per-cell row-sum "gather"
        # is a broadcast over the (k, n, n) view (no materialized copy),
        # and i's own row is the contiguous cell block ri*n .. ri*n + n.
        kk = self.k
        dv3 = dv.reshape(kk, n, n)
        t23 = t2.reshape(kk, n, n)
        t33 = t3.reshape(kk, n, n)
        np.add(dv, rs[ar, ri][:, None], out=t)
        np.abs(t, out=t)
        t -= re[ar, ri][:, None]
        np.subtract(rs[:, :, None], dv3, out=t23)
        np.abs(t2, out=t2)
        t23 -= re[:, :, None]
        t += t2
        t[lane_col, ri[:, None] * n + span] = 0

        # columns, same shape (broadcast over the last axis); the result
        # lands in t2 so both families combine in a single upcasting add
        np.add(dv, cs[ar, ci][:, None], out=t2)
        np.abs(t2, out=t2)
        t2 -= ce[ar, ci][:, None]
        np.subtract(cs[:, None, :], dv3, out=t33)
        np.abs(t3, out=t3)
        t33 -= ce[:, None, :]
        t2 += t3
        t2[lane_col, ci[:, None] + span * n] = 0
        np.add(t, t2, out=acc)

        # diagonals: coefficient ([i on diag] - [j on diag]) covers the
        # i-only / j-only / both / neither cases.  When i is off the
        # diagonal (the overwhelmingly common case) the coefficient is
        # nonzero only on the n diagonal cells, so the term is an (m, n)
        # scatter-add instead of a full (k, A) pass; the few lanes whose
        # selected variable sits on the diagonal take the full-width path.
        self._diag_family(
            i_sel, dv, acc, self._on_diag, self._on_diag_c, self._diag_cells,
            self._dg, self._de,
        )
        self._diag_family(
            i_sel, dv, acc, self._on_anti, self._on_anti_c, self._anti_cells,
            self._at, self._ae,
        )

        acc[ar, i_sel] = 0
        return acc

    def _diag_family(
        self,
        i_sel: np.ndarray,
        dv: np.ndarray,
        acc: np.ndarray,
        on_line: np.ndarray,
        on_line_c: np.ndarray,
        line_cells: np.ndarray,
        line_sum: np.ndarray,
        line_err: np.ndarray,
    ) -> None:
        i_on = on_line[i_sel]
        if not i_on.all():
            off = np.flatnonzero(~i_on)
            if off.size == self.k:
                sub_dv = dv[:, line_cells]
                acc[:, line_cells] += np.abs(
                    line_sum[:, None] - sub_dv
                ) - line_err[:, None]
            else:
                sub_dv = dv[off[:, None], line_cells[None, :]]
                acc[off[:, None], line_cells[None, :]] += np.abs(
                    line_sum[off, None] - sub_dv
                ) - line_err[off, None]
        if i_on.any():
            on = np.flatnonzero(i_on)
            coef = self._cdt(1) - on_line_c
            term = np.abs(line_sum[on, None] + coef * dv[on]) - line_err[on, None]
            acc[on] += term

    def lane_costs(self, configs: np.ndarray) -> np.ndarray:
        k, n = len(configs), self.order
        m = self.m
        grid = configs.reshape(k, n, n)
        diag_ix = np.arange(n)
        return (
            np.abs(grid.sum(axis=2) - m).sum(axis=1)
            + np.abs(grid.sum(axis=1) - m).sum(axis=1)
            + np.abs(grid[:, diag_ix, diag_ix].sum(axis=1) - m)
            + np.abs(grid[:, diag_ix, n - 1 - diag_ix].sum(axis=1) - m)
        ).astype(np.float64)


# ----------------------------------------------------------------------
# costas
# ----------------------------------------------------------------------
class VectorCostas(VectorProblem):
    """Batched Costas kernels via the bitmask-distinct identity.

    Cost over ``P = n(n-1)/2`` difference pairs equals
    ``sum_d (n - d - distinct_d)``: pairs at distance ``d`` minus the number
    of distinct difference values at that distance.  Differences span
    ``2n - 1 < 64`` values, so ``distinct_d`` is the popcount of an OR of
    single-bit masks — computable for every candidate swap at once from the
    post-swap difference tensor (see module docstring).  Works for
    ``n <= 32`` (uint64 masks); larger orders use the scalar fallback.
    """

    MAX_N = 32

    def __init__(self, problem: CostasProblem, k: int) -> None:
        super().__init__(problem, k)
        n = self.n
        if n > self.MAX_N:
            raise ValueError(f"bitmask kernel supports n <= {self.MAX_N}")
        self.off = n - 1
        self.W = 2 * n - 1
        nd = na = n - 1
        self.nd, self.na = nd, na
        self.P = n * (n - 1) // 2
        # pair tables (shared with the scalar problem's reference kernels)
        self._pa = problem._pair_a
        self._pb = problem._pair_b
        self._pd = problem._pair_d
        # incidence matrix: errors = dup_pairs @ inc
        inc = np.zeros((self.P, n), dtype=np.float64)
        inc[np.arange(self.P), self._pa] += 1.0
        inc[np.arange(self.P), self._pb] += 1.0
        self._inc = inc
        # rectangular (a, d) pair layout, a = left endpoint, d = distance;
        # transposed so the OR-reduction runs over the *leading* axis, where
        # NumPy reduces with contiguous full-width passes
        a_ix = np.arange(na)
        d_ix = np.arange(1, n)
        validT = (a_ix[:, None] + d_ix[None, :]) < n        # (na, nd)
        self._validT = validT
        self._iaT = np.where(validT, a_ix[:, None], 0)
        self._ibT = np.where(validT, a_ix[:, None] + d_ix[None, :], 0)
        self.SENT = self.W  # padding sentinel bit; cancels in the delta
        # indicator table: T4[pos, a, d] = [b == pos] - [a == pos]
        T4 = np.zeros((n, na, nd), dtype=np.int16)
        for pos in range(n):
            T4[pos] = np.where(
                validT,
                (self._ibT == pos).astype(np.int16)
                - (self._iaT == pos).astype(np.int16),
                0,
            )
        self._T4 = T4
        # big-tensor layout (na, nd, k, n_j): Tj broadcast over lanes
        self._Tj = np.ascontiguousarray(T4.transpose(1, 2, 0))[:, :, None, :]
        self._mask_dtype = np.uint32 if self.W < 32 else np.uint64
        self._D = np.empty((na, nd, k, n), dtype=np.int16)
        self._new = np.empty((na, nd, k, n), dtype=np.int16)
        self._newu = np.empty((na, nd, k, n), dtype=self._mask_dtype)
        self._mask = np.empty((na, nd, k, n), dtype=self._mask_dtype)
        self._one = self._mask_dtype(1)
        self._lane_col = np.arange(k)[:, None]

    def begin_round(self, configs: np.ndarray) -> None:
        k, n, off, W = self.k, self.n, self.off, self.W
        self._V = configs
        diffs = configs[:, self._pb] - configs[:, self._pa] + off   # (k, P)
        self._diffs = diffs
        keys = (self._lane_col * self.nd + (self._pd[None, :] - 1)) * W + diffs
        self._counts = np.bincount(
            keys.ravel(), minlength=k * self.nd * W
        ).reshape(k, self.nd, W)
        oldk = configs[:, self._ibT] - configs[:, self._iaT] + off  # (k, na, nd)
        oldk = np.where(self._validT[None], oldk, self.SENT)
        self._oldT = np.ascontiguousarray(
            oldk.transpose(1, 2, 0)
        ).astype(np.int16)                                          # (na, nd, k)

    def errors(self) -> np.ndarray:
        c = self._counts[self._lane_col, self._pd[None, :] - 1, self._diffs]
        dup = (c > 1).astype(np.float64)
        return dup @ self._inc

    def deltas(self, i_sel: np.ndarray) -> np.ndarray:
        k, n = self.k, self.n
        ar = self._lane_col[:, 0]
        vi = self._V[ar, i_sel]
        dv = (self._V - vi[:, None]).astype(np.int16)               # (k, n)
        TiT = np.ascontiguousarray(
            self._T4[i_sel].transpose(1, 2, 0)
        )[:, :, :, None]                                            # (na, nd, k, 1)
        D, new, newu, mask = self._D, self._new, self._newu, self._mask
        np.subtract(TiT, self._Tj, out=D)
        np.multiply(D, dv[None, None, :, :], out=new)
        np.add(new, self._oldT[:, :, :, None], out=new)
        newu[...] = new
        np.left_shift(self._one, newu, out=mask)
        ors = np.bitwise_or.reduce(mask, axis=0)                    # (nd, k, n)
        sumd = np.bitwise_count(ors).sum(axis=0, dtype=np.int32)    # (k, n)
        mo = np.left_shift(self._one, self._oldT.astype(self._mask_dtype))
        co = np.bitwise_count(np.bitwise_or.reduce(mo, axis=0)).sum(
            axis=0, dtype=np.int32
        )                                                           # (k,)
        deltas = (co[:, None] - sumd).astype(np.float64)
        deltas[ar, i_sel] = 0.0
        return deltas

    def lane_costs(self, configs: np.ndarray) -> np.ndarray:
        k = len(configs)
        off, W = self.off, self.W
        diffs = configs[:, self._pb] - configs[:, self._pa] + off
        lane_col = np.arange(k)[:, None]
        keys = (lane_col * self.nd + (self._pd[None, :] - 1)) * W + diffs
        counts = np.bincount(keys.ravel(), minlength=k * self.nd * W)
        counts = counts.reshape(k, self.nd * W)
        return np.maximum(counts - 1, 0).sum(axis=1).astype(np.float64)


# ----------------------------------------------------------------------
# all interval
# ----------------------------------------------------------------------
class VectorAllInterval(VectorProblem):
    """Batched All-Interval kernels (same bitmask-distinct identity).

    The ``n - 1`` adjacent absolute differences form one bucket family with
    values ``1 .. n-1``; cost = ``(n-1) - distinct``.  Works for ``n <= 62``
    (int64 masks, no sentinel needed: the full rectangle is valid).
    """

    MAX_N = 62

    def __init__(self, problem: AllIntervalProblem, k: int) -> None:
        super().__init__(problem, k)
        n = self.n
        if n > self.MAX_N:
            raise ValueError(f"bitmask kernel supports n <= {self.MAX_N}")
        # indicator: E[pos, d] = [d+1 == pos] - [d == pos] for diff slot d
        d_ix = np.arange(n - 1)
        E = np.zeros((n, n - 1), dtype=np.int16)
        for pos in range(n):
            E[pos] = (d_ix + 1 == pos).astype(np.int16) - (d_ix == pos).astype(
                np.int16
            )
        self._E = E
        self._ar = np.arange(k)
        self._lane_col = self._ar[:, None]

    def begin_round(self, configs: np.ndarray) -> None:
        k, n = self.k, self.n
        self._V = configs
        sd = configs[:, 1:] - configs[:, :-1]                 # (k, n-1) signed
        self._sd = sd.astype(np.int16)
        ad = np.abs(sd)
        self._ad = ad
        keys = self._lane_col * n + ad
        self._counts = np.bincount(keys.ravel(), minlength=k * n).reshape(k, n)

    def errors(self) -> np.ndarray:
        k, n = self.k, self.n
        dup = (self._counts[self._lane_col, self._ad] > 1).astype(np.float64)
        errors = np.zeros((k, n), dtype=np.float64)
        errors[:, :-1] += dup
        errors[:, 1:] += dup
        return errors

    def deltas(self, i_sel: np.ndarray) -> np.ndarray:
        ar = self._ar
        vi = self._V[ar, i_sel]
        dv = (self._V - vi[:, None]).astype(np.int16)          # (k, n)
        Ei = self._E[i_sel]                                    # (k, n-1)
        D = Ei[:, None, :] - self._E[None, :, :]               # (k, n, n-1)
        new = self._sd[:, None, :] + D * dv[:, :, None]
        np.abs(new, out=new)
        mask = np.left_shift(np.int64(1), new.astype(np.int64))
        distinct = np.bitwise_count(np.bitwise_or.reduce(mask, axis=-1))
        distinct = distinct.astype(np.int32)                   # (k, n)
        old_mask = np.left_shift(np.int64(1), self._ad.astype(np.int64))
        old_distinct = np.bitwise_count(
            np.bitwise_or.reduce(old_mask, axis=-1)
        ).astype(np.int32)                                     # (k,)
        deltas = (old_distinct[:, None] - distinct).astype(np.float64)
        deltas[ar, i_sel] = 0.0
        return deltas

    def lane_costs(self, configs: np.ndarray) -> np.ndarray:
        k, n = len(configs), self.n
        ad = np.abs(configs[:, 1:] - configs[:, :-1])
        keys = np.arange(k)[:, None] * n + ad
        counts = np.bincount(keys.ravel(), minlength=k * n).reshape(k, n)
        return np.maximum(counts - 1, 0).sum(axis=1).astype(np.float64)


# ----------------------------------------------------------------------
# generic fallback
# ----------------------------------------------------------------------
class ScalarLaneFallback(VectorProblem):
    """Correct-for-everything adapter looping the scalar protocol per lane.

    No speedup — it exists so ``executor="vector"`` accepts any problem and
    so oversized instances of the batched families degrade gracefully
    instead of failing.
    """

    batched = False

    def begin_round(self, configs: np.ndarray) -> None:
        problem = self.problem
        self._states = [problem.init_state(configs[lane]) for lane in range(self.k)]

    def errors(self) -> np.ndarray:
        problem = self.problem
        return np.stack(
            [problem.variable_errors(state) for state in self._states]
        ).astype(np.float64)

    def deltas(self, i_sel: np.ndarray) -> np.ndarray:
        problem = self.problem
        out = np.empty((self.k, self.n), dtype=np.float64)
        for lane, state in enumerate(self._states):
            out[lane] = problem.swap_deltas(state, int(i_sel[lane]))
        return out


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
_ADAPTERS: dict[Type[Problem], Callable[[Problem, int], VectorProblem]] = {}


def register_vector_adapter(
    problem_type: Type[Problem],
) -> Callable[[Callable[[Problem, int], VectorProblem]], Callable]:
    """Class decorator registering a batched adapter for a problem type."""

    def deco(factory: Callable[[Problem, int], VectorProblem]) -> Callable:
        _ADAPTERS[problem_type] = factory
        return factory

    return deco


register_vector_adapter(MagicSquareProblem)(VectorMagicSquare)
register_vector_adapter(CostasProblem)(VectorCostas)
register_vector_adapter(AllIntervalProblem)(VectorAllInterval)


def has_batched_kernels(problem: Problem) -> bool:
    """True when ``as_vector_problem`` returns a real batched adapter."""
    factory = _ADAPTERS.get(type(problem))
    if factory is None:
        return False
    try:
        factory(problem, 1)
    except ValueError:
        return False
    return True


def as_vector_problem(problem: Problem, k: int) -> VectorProblem:
    """Best available adapter: a registered batched kernel set when the
    instance fits its fast path, otherwise the scalar-lane fallback."""
    factory = _ADAPTERS.get(type(problem))
    if factory is not None:
        try:
            return factory(problem, k)
        except ValueError:
            pass  # instance outside the fast path (e.g. too large for masks)
    return ScalarLaneFallback(problem, k)
