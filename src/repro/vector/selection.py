"""Batched random-tie selection, stream-compatible with the scalar helpers.

The scalar engine draws selection randomness through
:mod:`repro.core.selection`: one ``rng.integers(0, n_candidates)`` call per
selection *iff* the extreme value is tied, none otherwise.  The batched
helpers below reproduce that call pattern exactly per lane — the max/min and
tie detection are vectorized across lanes, and only tied lanes touch their
generator — so lane ``l`` of a vector walk consumes its RNG stream in the
same order as the scalar walk with the same seed.  That property is what the
bit-identical trajectory tests pin down.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["masked_argmax_lanes", "argmin_lanes"]


def _resolve_ties(
    tie_matrix: np.ndarray,
    counts: np.ndarray,
    first: np.ndarray,
    lanes: np.ndarray,
    rngs: Sequence[np.random.Generator],
) -> np.ndarray:
    """Pick per-lane winners from boolean candidate rows.

    ``first`` must already hold the lowest candidate index per lane (the
    no-draw answer).  Lanes with more than one candidate draw
    ``rng.integers(0, count)`` — the same single call the scalar helpers
    make — and take the c-th candidate in ascending index order.
    """
    tied = np.flatnonzero(counts > 1)
    if tied.size == 0:
        return first
    out = first.copy()
    # one nonzero pass over just the tied rows instead of a per-row
    # flatnonzero: candidates come out grouped by row in ascending column
    # order, walked via the per-row counts
    cols = np.nonzero(tie_matrix[tied])[1]
    cnts = counts[tied].tolist()
    lanes_t = lanes[tied].tolist()
    off = 0
    for idx, row in enumerate(tied.tolist()):
        c = cnts[idx]
        pick = int(rngs[lanes_t[idx]].integers(0, c))
        if pick:  # pick 0 is already `first`
            out[row] = cols[off + pick]
        off += c
    return out


def masked_argmax_lanes(
    values: np.ndarray,
    mask: np.ndarray,
    lanes: np.ndarray,
    rngs: Sequence[np.random.Generator],
    scratch: bool = False,
) -> np.ndarray:
    """Per-lane ``masked_argmax_random_tie`` over the rows ``lanes``.

    ``values``/``mask`` are the full ``(k, n)`` matrices; only the selected
    rows are evaluated (and only their generators consumed).  Every selected
    row must have at least one admissible candidate — with ``scratch=True``
    the caller vouches for that (the fill value masquerades as the max on an
    empty row) and permits clobbering masked-out entries of ``values`` in
    place instead of allocating a shielded copy.
    """
    if lanes.size == values.shape[0]:
        sub_vals, sub_mask = values, mask  # all lanes live: skip the copy
    else:
        sub_vals, sub_mask = values[lanes], mask[lanes]
        scratch = True  # the fancy-index copy above is already private
    if sub_vals.dtype.kind != "f" and scratch:
        # integer errors are non-negative (count-based costs), so zeroing
        # the masked-out entries shields them — a SIMD multiply, much
        # cheaper than a branchy masked fill.  A zero max can collide with
        # legitimately zero candidates, hence the explicit re-mask of ties.
        np.multiply(sub_vals, sub_mask, out=sub_vals)
        best = sub_vals.max(axis=1)
        ties = (sub_vals == best[:, None]) & sub_mask
    else:
        if sub_vals.dtype.kind == "f":
            fill = -np.inf
        else:
            fill = np.iinfo(sub_vals.dtype).min
        if scratch:
            np.copyto(sub_vals, fill, where=~sub_mask)
            shielded = sub_vals
        else:
            shielded = np.where(sub_mask, sub_vals, fill)
        best = shielded.max(axis=1)
        if not scratch and not (best > fill).all():
            raise ValueError("mask admits no candidate for some lane")
        # any real candidate beats the fill, so equality-with-max alone
        # finds exactly the admissible ties
        ties = shielded == best[:, None]
    counts = ties.sum(axis=1)
    first = ties.argmax(axis=1)
    return _resolve_ties(ties, counts, first, lanes, rngs)


def argmin_lanes(
    values: np.ndarray,
    lanes: np.ndarray,
    rngs: Sequence[np.random.Generator],
) -> np.ndarray:
    """Per-lane ``argmin_random_tie`` over the rows ``lanes``."""
    sub = values if lanes.size == values.shape[0] else values[lanes]
    best = sub.min(axis=1)
    ties = sub == best[:, None]
    counts = ties.sum(axis=1)
    first = ties.argmax(axis=1)
    return _resolve_ties(ties, counts, first, lanes, rngs)
