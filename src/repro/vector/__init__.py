"""NumPy-batched vector-walk engine: ``k`` lock-step walks per process.

See :mod:`repro.vector.engine` for the engine and equivalence contract,
:mod:`repro.vector.problems` for the batched per-problem kernels, and
DESIGN.md ("Vector-walk engine") for the lane layout and masked
bookkeeping scheme.
"""

from repro.vector.engine import VectorRunOutcome, VectorWalkEngine, solve_vector
from repro.vector.problems import (
    VectorProblem,
    as_vector_problem,
    has_batched_kernels,
    register_vector_adapter,
)

__all__ = [
    "VectorRunOutcome",
    "VectorWalkEngine",
    "solve_vector",
    "VectorProblem",
    "as_vector_problem",
    "has_batched_kernels",
    "register_vector_adapter",
]
