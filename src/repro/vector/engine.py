"""The vector-walk engine: ``k`` independent walks, lock-step in one process.

:class:`VectorWalkEngine` advances ``k`` Adaptive Search walks ("lanes")
simultaneously.  Each round every live lane executes exactly one iteration
of the scalar loop in :class:`repro.core.session.AdaptiveSearchSession` —
worst-variable selection, best-swap evaluation, tabu/plateau/local-minimum
bookkeeping, partial resets and restarts — but the per-iteration O(n) work
is batched across lanes through a :class:`~repro.vector.problems.VectorProblem`
kernel set, amortizing NumPy's per-call overhead over the whole lane block.

Equivalence contract
--------------------
Lane ``l`` seeded with ``seeds[l]`` produces the *bit-identical* trajectory
(configurations, costs, marks, counters, RNG stream) of a scalar
``AdaptiveSearch`` walk with the same seed and configuration:

- all batched quantities (errors, deltas, costs) are exact integers in
  float64, computed by kernels verified equal to the scalar protocol;
- RNG draws happen per lane, on that lane's own generator, at exactly the
  scalar call sites (tie-breaks, local-minimum acceptance, reset swaps,
  restart shuffles) — lanes are independent streams, so batching never
  reorders draws *within* a lane;
- control flow is replicated per lane via boolean masks in the same order
  as the scalar loop: solved check, restart check, budget check, iterate.

The property test in ``tests/vector/test_equivalence.py`` pins this down
across problem families.

First-finisher semantics
------------------------
With ``first_wins=True`` (the multi-walk executor's mode) the batch stops
as soon as any lane solves; still-running lanes report ``CANCELLED`` with
their current iteration counts, mirroring the process executor's cancel
event.  With ``first_wins=False`` every lane runs to its own termination
(solved lanes freeze while stragglers continue), mirroring the inline
executor and ``collect_samples``.

Time limits are honoured at round granularity (every lane shares the
engine's clock); reproducible runs should bound ``max_iterations`` instead,
exactly as with the scalar engine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.config import AdaptiveSearchConfig
from repro.core.result import SolveResult, SolveStats
from repro.core.termination import TerminationReason
from repro.errors import SolverError
from repro.parallel.seeding import walk_seeds
from repro.problems.base import Problem
from repro.util.rng import SeedLike
from repro.util.timing import Stopwatch
from repro.vector.problems import VectorProblem, as_vector_problem
from repro.vector.selection import argmin_lanes, masked_argmax_lanes

__all__ = ["VectorWalkEngine", "VectorRunOutcome", "solve_vector"]

_STAT_FIELDS = (
    "swaps",
    "local_minima",
    "plateau_moves",
    "accepted_local_min_moves",
    "frozen_variables",
    "resets",
    "restarts",
)


@dataclass
class VectorRunOutcome:
    """What a vector run produced: one :class:`SolveResult` per lane."""

    walks: list[SolveResult]
    elapsed: float

    @property
    def solved(self) -> bool:
        return any(w.solved for w in self.walks)

    @property
    def winner_lane(self) -> Optional[int]:
        """Lane of the first solver (earliest finish; ties -> lowest lane)."""
        solved = [
            (w.stats.wall_time, lane)
            for lane, w in enumerate(self.walks)
            if w.solved
        ]
        return min(solved)[1] if solved else None


class VectorWalkEngine:
    """Lock-step batch of ``k`` Adaptive Search walks (see module docstring).

    Parameters
    ----------
    problem:
        the instance every lane solves.
    k:
        number of lanes.
    config:
        base solver configuration; per-problem defaults merge exactly as in
        the scalar engine unless ``use_problem_defaults=False``.
    seeds:
        explicit per-lane seed sequences (one per lane).  Pass the list from
        :func:`repro.parallel.seeding.walk_seeds` so lane ``i`` equals walk
        ``i`` of every other executor; when omitted, ``seed`` is expanded
        through ``walk_seeds(k, seed)`` — the *same* derivation path — so
        mixing scalar and vector executors in one campaign stays
        reproducible.
    first_wins:
        stop the whole batch at the first solving lane (multi-walk mode).
    round_callback:
        called as ``round_callback(engine)`` after every round; returning
        ``False`` cancels all live lanes (cooperative cancellation for pool
        and hybrid workers).
    """

    solver_name = "vector_adaptive_search"

    def __init__(
        self,
        problem: Problem,
        k: int,
        config: AdaptiveSearchConfig | None = None,
        *,
        seeds: Optional[Sequence[np.random.SeedSequence]] = None,
        seed: SeedLike = None,
        use_problem_defaults: bool = True,
        first_wins: bool = False,
        round_callback: Optional[Callable[["VectorWalkEngine"], Optional[bool]]] = None,
        vector_problem: Optional[VectorProblem] = None,
    ) -> None:
        if k < 1:
            raise SolverError(f"lane count must be >= 1, got {k}")
        if seeds is not None and len(seeds) != k:
            raise SolverError(
                f"got {len(seeds)} seeds for {k} lanes; pass one per lane"
            )
        self.problem = problem
        self.k = int(k)
        self.n = problem.size
        base = config or AdaptiveSearchConfig()
        if use_problem_defaults:
            base = base.merged_with(problem.default_solver_parameters())
        self.config = base
        self.first_wins = first_wins
        self.round_callback = round_callback
        if seeds is None:
            seeds = walk_seeds(k, seed)
        self.seeds = list(seeds)
        self.rngs = [np.random.default_rng(s) for s in self.seeds]
        self.vp = vector_problem or as_vector_problem(problem, k)

        n = self.n
        self.configs = np.empty((k, n), dtype=np.int64)
        for lane in range(k):
            self.configs[lane] = problem.random_configuration(self.rngs[lane])
        self.cost = self.vp.lane_costs(self.configs)
        self.best_cost = self.cost.copy()
        self.best_configs = self.configs.copy()
        # narrow marks halve (or quarter) the per-round tabu-mask traffic:
        # a mark never exceeds the global iteration budget plus the longest
        # freeze tenure, so int16 is exact whenever that bound fits;
        # iteration counts beyond 2**31 are out of scope for any real run
        freeze_max = max(base.freeze_swap, base.freeze_loc_min, 0)
        mark_bound = (
            base.max_iterations + freeze_max
            if math.isfinite(base.max_iterations)
            else math.inf
        )
        self._mdt = (
            np.int16 if mark_bound < np.iinfo(np.int16).max else np.int32
        )
        self.marks = np.zeros((k, n), dtype=self._mdt)
        self._it_m = np.zeros(k, dtype=self._mdt)
        self._eligible = np.empty((k, n), dtype=bool)
        self.iterations = np.zeros(k, dtype=np.int64)
        self._restart_iterations = np.zeros(k, dtype=np.int64)
        self._restart_index = np.zeros(k, dtype=np.int64)
        self.stats = {name: np.zeros(k, dtype=np.int64) for name in _STAT_FIELDS}
        self.active = np.ones(k, dtype=bool)
        self._reasons: list[Optional[TerminationReason]] = [None] * k
        self._finish_time = np.zeros(k, dtype=np.float64)
        self._stopwatch = Stopwatch()
        self.rounds = 0
        self._n_solved = 0
        self._sentinel = self.vp.delta_sentinel
        self._i_sel = np.zeros(k, dtype=np.int64)
        self._all_lanes = np.arange(k)
        self._better = np.empty(k, dtype=bool)

    # ------------------------------------------------------------------
    @property
    def solved_lanes(self) -> list[int]:
        return [
            lane
            for lane, reason in enumerate(self._reasons)
            if reason is TerminationReason.SOLVED
        ]

    def _finish(self, lane: int, reason: TerminationReason) -> None:
        self.active[lane] = False
        self._reasons[lane] = reason
        self._finish_time[lane] = self._stopwatch.elapsed
        if reason is TerminationReason.SOLVED:
            self._n_solved += 1

    def _cancel_live(self) -> None:
        for lane in np.flatnonzero(self.active):
            self._finish(int(lane), TerminationReason.CANCELLED)

    # ------------------------------------------------------------------
    def run(self) -> VectorRunOutcome:
        """Run every lane to termination; see class docstring for modes."""
        sw = self._stopwatch
        callback = self.round_callback
        first_wins = self.first_wins
        time_limit = self.config.time_limit
        timed = math.isfinite(time_limit)
        with sw:
            while True:
                self._pre_phase()
                if first_wins and self._n_solved:
                    self._cancel_live()
                if not self.active.any():
                    break
                self._round()
                self.rounds += 1
                if callback is not None:
                    if callback(self) is False:
                        self._cancel_live()
                        break
                if timed and sw.elapsed >= time_limit:
                    for lane in np.flatnonzero(self.active):
                        self._finish(int(lane), TerminationReason.TIME_LIMIT)
                    break
        return self._package()

    # ------------------------------------------------------------------
    def _pre_phase(self) -> None:
        """Per-lane solved / restart / iteration-budget checks, in the
        scalar loop's order and precedence."""
        cfg = self.config
        active = self.active
        solved = active & (self.cost <= cfg.target_cost)
        if solved.any():
            for lane in np.flatnonzero(solved):
                self._finish(int(lane), TerminationReason.SOLVED)
        if math.isfinite(cfg.restart_limit):
            due = active & (self._restart_iterations >= cfg.restart_limit)
            if due.any():
                for lane in np.flatnonzero(due):
                    self._restart_lane(int(lane))
        if math.isfinite(cfg.max_iterations):
            over = active & (self.iterations >= cfg.max_iterations)
            if over.any():
                for lane in np.flatnonzero(over):
                    self._finish(int(lane), TerminationReason.MAX_ITERATIONS)

    def _restart_lane(self, lane: int) -> None:
        cfg = self.config
        if self._restart_index[lane] >= cfg.max_restarts:
            self._finish(lane, TerminationReason.RESTARTS_EXHAUSTED)
            return
        self._restart_index[lane] += 1
        self.stats["restarts"][lane] += 1
        start = self.problem.random_configuration(self.rngs[lane])
        self.configs[lane] = start
        self.cost[lane] = self.problem.cost(start)
        self.vp.notify_rows([lane], self.configs)
        self.marks[lane, :] = 0
        self._restart_iterations[lane] = 0
        self._track_best_lane(lane)
        if self.cost[lane] <= cfg.target_cost:
            self._finish(lane, TerminationReason.SOLVED)

    def _track_best_lane(self, lane: int) -> None:
        if self.cost[lane] < self.best_cost[lane]:
            self.best_cost[lane] = self.cost[lane]
            self.best_configs[lane] = self.configs[lane]

    def _partial_reset(self, lane: int) -> None:
        """Exact replica of the scalar partial reset (same RNG calls)."""
        rng = self.rngs[lane]
        n = self.n
        row = self.configs[lane]
        n_swaps = max(1, int(np.ceil(self.config.reset_fraction * n / 2.0)))
        for _ in range(n_swaps):
            a, b = rng.integers(0, n, size=2)
            row[a], row[b] = row[b], row[a]
        self.stats["resets"][lane] += 1
        self.marks[lane, :] = 0
        self.cost[lane] = self.problem.cost(row)
        self.vp.notify_rows([lane], self.configs)

    # ------------------------------------------------------------------
    def _round(self) -> None:
        """One lock-step iteration across all live lanes."""
        cfg = self.config
        active = self.active
        rngs = self.rngs
        marks = self.marks
        it = self.iterations
        all_live = bool(active.all())
        if all_live:
            it += 1
            self._restart_iterations += 1
        else:
            it[active] += 1
            self._restart_iterations[active] += 1

        vp = self.vp
        vp.begin_round(self.configs)
        errors = vp.errors()
        it_m = self._it_m
        np.copyto(it_m, it, casting="unsafe")
        eligible = np.less(marks, it_m[:, None], out=self._eligible)
        has_eligible = eligible.any(axis=1)
        if all_live and has_eligible.all():
            work = self._all_lanes
        else:
            for lane in np.flatnonzero(active & ~has_eligible):
                # the scalar loop's `continue`: reset, no best-tracking
                self._partial_reset(int(lane))
            work = np.flatnonzero(active & has_eligible)
            if work.size == 0:
                return

        i_rows = masked_argmax_lanes(errors, eligible, work, rngs, scratch=True)
        i_sel = self._i_sel
        i_sel[work] = i_rows
        deltas = vp.deltas(i_sel)
        deltas[work, i_rows] = self._sentinel
        j_rows = argmin_lanes(deltas, work, rngs)
        delta_rows = deltas[work, j_rows]

        if cfg.plateau_is_local_min:
            improving = delta_rows < 0
        else:
            improving = delta_rows <= 0

        # improving lanes: vectorized bookkeeping
        imp_lanes = work[improving]
        imp_i = i_rows[improving]
        imp_j = j_rows[improving]
        imp_delta = delta_rows[improving]
        self.stats["swaps"][imp_lanes] += 1
        plateau = imp_lanes[imp_delta == 0]
        self.stats["plateau_moves"][plateau] += 1
        if cfg.freeze_swap > 0:
            until = it[imp_lanes] + cfg.freeze_swap
            marks[imp_lanes, imp_i] = until
            marks[imp_lanes, imp_j] = until

        # local-minimum lanes: the marks scatter, stats, and frozen counts
        # batch across lanes; only the acceptance draw itself runs per lane
        # (RNG order matters within a lane; lanes are independent streams).
        # The frozen count per rejected lane is computable up front because
        # every write between the scalar freeze and the scalar count is
        # row-local to the lane being processed.
        acc_lanes: list[int] = []
        acc_i: list[int] = []
        acc_j: list[int] = []
        acc_delta: list[float] = []
        stats = self.stats
        lm_rows = np.flatnonzero(~improving)
        if lm_rows.size:
            lm_lanes = work[lm_rows]
            lm_i = i_rows[lm_rows]
            lm_j = j_rows[lm_rows]
            lm_d = delta_rows[lm_rows]
            lm_it = it[lm_lanes]
            stats["local_minima"][lm_lanes] += 1
            stats["frozen_variables"][lm_lanes] += 1
            marks[lm_lanes, lm_i] = lm_it + cfg.freeze_loc_min
            frozen_cnt = (
                marks[lm_lanes] > lm_it.astype(self._mdt)[:, None]
            ).sum(axis=1)
            finite = np.isfinite(lm_d)
            prob = cfg.prob_select_loc_min
            reset_limit = cfg.reset_limit
            freeze_swap = cfg.freeze_swap
            for row in range(lm_rows.size):
                lane = int(lm_lanes[row])
                if finite[row] and rngs[lane].random() < prob:
                    if freeze_swap > 0:
                        marks[lane, int(lm_j[row])] = int(lm_it[row]) + freeze_swap
                    acc_lanes.append(lane)
                    acc_i.append(int(lm_i[row]))
                    acc_j.append(int(lm_j[row]))
                    acc_delta.append(float(lm_d[row]))
                elif frozen_cnt[row] > reset_limit:
                    self._partial_reset(lane)
            if acc_lanes:
                acc_arr = np.asarray(acc_lanes, dtype=np.int64)
                stats["swaps"][acc_arr] += 1
                stats["accepted_local_min_moves"][acc_arr] += 1
                acc_d_arr = np.asarray(acc_delta, dtype=np.float64)
                stats["plateau_moves"][acc_arr[acc_d_arr == 0]] += 1

        # apply all executed swaps (improving + accepted local-min moves)
        if acc_lanes:
            lanes_arr = np.concatenate(
                [imp_lanes, np.asarray(acc_lanes, dtype=np.int64)]
            )
            ii = np.concatenate([imp_i, np.asarray(acc_i, dtype=np.int64)])
            jj = np.concatenate([imp_j, np.asarray(acc_j, dtype=np.int64)])
            dd = np.concatenate(
                [imp_delta.astype(np.float64), np.asarray(acc_delta, dtype=np.float64)]
            )
        else:
            lanes_arr, ii, jj, dd = imp_lanes, imp_i, imp_j, imp_delta
        if lanes_arr.size:
            configs = self.configs
            vals_i = configs[lanes_arr, ii].copy()
            configs[lanes_arr, ii] = configs[lanes_arr, jj]
            configs[lanes_arr, jj] = vals_i
            self.cost[lanes_arr] += dd
            vp.notify_swaps(lanes_arr, ii, jj, configs)

        # track best for every lane that iterated (including rejected
        # local-minimum lanes whose reset fell through, as in the scalar loop)
        better = self._better
        if work.size == self.k:
            np.less(self.cost, self.best_cost, out=better)
        else:
            better[:] = False
            better[work] = True
            better &= self.cost < self.best_cost
        rows = np.flatnonzero(better)
        if rows.size:
            self.best_cost[rows] = self.cost[rows]
            self.best_configs[rows] = self.configs[rows]

    # ------------------------------------------------------------------
    def _package(self) -> VectorRunOutcome:
        walks: list[SolveResult] = []
        for lane in range(self.k):
            reason = self._reasons[lane] or TerminationReason.CANCELLED
            stats = SolveStats(
                iterations=int(self.iterations[lane]),
                swaps=int(self.stats["swaps"][lane]),
                local_minima=int(self.stats["local_minima"][lane]),
                plateau_moves=int(self.stats["plateau_moves"][lane]),
                accepted_local_min_moves=int(
                    self.stats["accepted_local_min_moves"][lane]
                ),
                frozen_variables=int(self.stats["frozen_variables"][lane]),
                resets=int(self.stats["resets"][lane]),
                restarts=int(self.stats["restarts"][lane]),
                wall_time=float(self._finish_time[lane]),
            )
            walks.append(
                SolveResult(
                    solved=reason is TerminationReason.SOLVED,
                    config=self.best_configs[lane].copy(),
                    cost=float(self.best_cost[lane]),
                    reason=reason,
                    stats=stats,
                    problem_name=self.problem.name,
                    solver_name=self.solver_name,
                )
            )
        return VectorRunOutcome(walks=walks, elapsed=self._stopwatch.elapsed)


def solve_vector(
    problem: Problem,
    k: int,
    seed: SeedLike = None,
    *,
    config: AdaptiveSearchConfig | None = None,
    seeds: Optional[Sequence[np.random.SeedSequence]] = None,
    first_wins: bool = False,
    round_callback: Optional[Callable[[VectorWalkEngine], Optional[bool]]] = None,
) -> VectorRunOutcome:
    """One-shot convenience wrapper around :class:`VectorWalkEngine`."""
    engine = VectorWalkEngine(
        problem,
        k,
        config,
        seeds=seeds,
        seed=seed,
        first_wins=first_wins,
        round_callback=round_callback,
    )
    return engine.run()
