"""Coordinator write-ahead job journal.

Append-only JSONL, one record per line, three record kinds:

``submit``
    a job was accepted: job id, client key, trace id, deadline, and the
    full submit payload (problem + config + seeds) as base64-wrapped
    pickle — everything needed to re-create the job from nothing;
``generation``
    the job's assignment generation was bumped (a re-dispatch happened);
``finish``
    the job reached a terminal status.

Durability policy (the "fsync-batched" contract): every append is
*flushed* to the OS immediately — a coordinator that is ``kill -9``-ed
loses nothing that was appended — but ``fsync`` is only forced on
``submit`` records and every ``fsync_every``-th append otherwise, so the
high-frequency records (generations, finishes) never put a disk sync on
the dispatch path.  Only a whole-machine power loss can eat the tail, and
the client-side idempotent resubmission (``client_key``) covers exactly
that window.

Rotation: under sustained gateway traffic the journal is append-only
garbage after a few thousand jobs — every finished job leaves its submit
payload behind forever.  With ``max_bytes`` set, a ``finish`` append that
leaves the file over the limit triggers a compaction: the journal is
replayed in-process, only the *unfinished* jobs are rewritten (one
``submit`` record each, plus a ``generation`` record when above 0) to a
temporary file which is fsync'd and atomically ``os.replace``-d over the
old journal.  Crash recovery is preserved at every instant: before the
replace the old journal is intact; after it the new journal holds exactly
the jobs a recovery would have re-created anyway.

Recovery invariants (asserted by ``tests/chaos``):

1. every journaled-but-unfinished job is re-created and re-dispatched in
   full after a restart — walk outcomes are deliberately *not* journaled,
   so recovery re-runs all of a job's walks from their seeds (walks are
   deterministic given the seed, so the result is equivalent);
2. a recovered job's generation starts strictly above any journaled
   generation, so reports from pre-crash assignments stay stale;
3. a torn final line (crash mid-append) is ignored, never fatal;
4. ``finish`` is appended before the client is answered, so a job can be
   recovered *and* already answered at most once — the coordinator's
   ``client_key`` result cache dedupes that race on resubmit.
"""

from __future__ import annotations

import base64
import json
import os
from pathlib import Path
from typing import Any, Optional

from repro.errors import NetError

__all__ = [
    "JobJournal",
    "replay_journal",
    "decode_payload",
    "submit_record",
    "generation_record",
    "finish_record",
    "checkpoint_record",
]


# ----------------------------------------------------------------------
# record builders
#
# The journal file and the protocol v7 replication stream carry the exact
# same records; these helpers are the single source of truth for their
# shape, used by :class:`JobJournal` when appending locally and by the
# coordinator when teeing each append to attached hot standbys.
# ----------------------------------------------------------------------
def submit_record(
    job_id: int,
    *,
    client_key: str,
    trace_id: str,
    n_walkers: int,
    deadline: float | None,
    payload: bytes,
    priority: int = 0,
    coop: dict | None = None,
) -> dict[str, Any]:
    """The journal record of one accepted job."""
    record: dict[str, Any] = {
        "kind": "submit",
        "job_id": job_id,
        "client_key": client_key,
        "trace_id": trace_id,
        "n_walkers": n_walkers,
        "deadline": deadline,
        "priority": priority,
        "payload": base64.b64encode(payload).decode("ascii"),
    }
    if coop is not None:
        # protocol v6: a recovered cooperative job must come back as a
        # cooperative job, so the wire dict is journaled verbatim
        record["coop"] = coop
    return record


def generation_record(job_id: int, generation: int) -> dict[str, Any]:
    return {"kind": "generation", "job_id": job_id, "generation": generation}


def finish_record(job_id: int, status: str) -> dict[str, Any]:
    return {"kind": "finish", "job_id": job_id, "status": status}


def checkpoint_record(max_job_id: int) -> dict[str, Any]:
    """Job-id high-water mark (written by compaction and snapshots)."""
    return {"kind": "checkpoint", "job_id": max_job_id}


class JobJournal:
    """Append-only JSONL write-ahead log of coordinator job state."""

    def __init__(
        self,
        path: str | Path,
        *,
        fsync_every: int = 8,
        max_bytes: int | None = None,
    ) -> None:
        if fsync_every < 1:
            raise NetError(f"fsync_every must be >= 1, got {fsync_every}")
        if max_bytes is not None and max_bytes < 1:
            raise NetError(f"max_bytes must be >= 1, got {max_bytes}")
        self.path = Path(path)
        self.fsync_every = fsync_every
        self.max_bytes = max_bytes
        self.compactions = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file: Optional[Any] = open(self.path, "a", encoding="utf-8")
        self._since_fsync = 0

    # ------------------------------------------------------------------
    def _append(self, record: dict[str, Any], *, durable: bool) -> None:
        if self._file is None:
            return  # journal closed/aborted: recovery owns the truth now
        self._file.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._file.flush()
        self._since_fsync += 1
        if durable or self._since_fsync >= self.fsync_every:
            os.fsync(self._file.fileno())
            self._since_fsync = 0

    def append_record(self, record: dict[str, Any]) -> None:
        """Append one pre-built record (the v7 replication-tail path).

        A hot standby writes exactly what the leader streamed; ``submit``
        records keep their durable-fsync contract so a promoted standby's
        journal is as crash-safe as the leader's was.
        """
        self._append(record, durable=record.get("kind") == "submit")

    def log_submit(
        self,
        job_id: int,
        *,
        client_key: str,
        trace_id: str,
        n_walkers: int,
        deadline: float | None,
        payload: bytes,
        priority: int = 0,
        coop: dict | None = None,
    ) -> None:
        """Journal an accepted job (durable: fsync before dispatch)."""
        self._append(
            submit_record(
                job_id,
                client_key=client_key,
                trace_id=trace_id,
                n_walkers=n_walkers,
                deadline=deadline,
                payload=payload,
                priority=priority,
                coop=coop,
            ),
            durable=True,
        )

    def log_generation(self, job_id: int, generation: int) -> None:
        self._append(generation_record(job_id, generation), durable=False)

    def log_finish(self, job_id: int, status: str) -> None:
        self._append(finish_record(job_id, status), durable=False)
        # a finish is the checkpoint that turns earlier records into
        # garbage, so it is the natural moment to check the size trigger
        if (
            self.max_bytes is not None
            and self._file is not None
            and self._file.tell() > self.max_bytes
        ):
            self.compact()

    def compact(self) -> None:
        """Rewrite the journal keeping only unfinished jobs (atomic).

        The live fd is flushed and fsync'd first so the replay sees every
        appended record, the replacement file is fsync'd before the
        ``os.replace``, and appending resumes on the new file — at no
        point would a crash lose a recoverable job.
        """
        if self._file is None:
            return
        self._file.flush()
        os.fsync(self._file.fileno())
        entries, max_job_id = replay_journal(self.path)
        tmp_path = self.path.with_name(self.path.name + ".compact")
        with open(tmp_path, "w", encoding="utf-8") as tmp:
            # preserve the job-id high-water mark even when every journaled
            # job finished, so a recovered coordinator never reuses an id
            # that a cached result or a stale report may still reference
            tmp.write(
                json.dumps(checkpoint_record(max_job_id), separators=(",", ":"))
                + "\n"
            )
            for job_id in sorted(entries):
                entry = entries[job_id]
                generation = entry.get("generation", 0)
                record = {
                    key: value
                    for key, value in entry.items()
                    if key != "generation"
                }
                tmp.write(json.dumps(record, separators=(",", ":")) + "\n")
                if generation:
                    tmp.write(
                        json.dumps(
                            {
                                "kind": "generation",
                                "job_id": job_id,
                                "generation": generation,
                            },
                            separators=(",", ":"),
                        )
                        + "\n"
                    )
            tmp.flush()
            os.fsync(tmp.fileno())
        self._file.close()
        os.replace(tmp_path, self.path)
        self._file = open(self.path, "a", encoding="utf-8")
        self._since_fsync = 0
        self.compactions += 1

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Graceful close: final fsync, then release the fd (idempotent)."""
        if self._file is None:
            return
        self._file.flush()
        os.fsync(self._file.fileno())
        self._file.close()
        self._file = None

    def abort(self) -> None:
        """Crash-style close: no final fsync (the chaos ``kill -9``)."""
        if self._file is None:
            return
        file, self._file = self._file, None
        try:
            file.close()
        except OSError:  # pragma: no cover - fd already gone
            pass

    def __enter__(self) -> "JobJournal":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def replay_journal(path: str | Path) -> tuple[dict[int, dict[str, Any]], int]:
    """Fold a journal back into its unfinished jobs.

    Returns ``(jobs, max_job_id)`` where ``jobs`` maps job id to the
    folded record: the ``submit`` fields (payload still base64) plus the
    highest journaled ``generation``.  Finished jobs are dropped; a torn
    trailing line (crash mid-append) ends the replay silently; a missing
    file replays to nothing.
    """
    path = Path(path)
    jobs: dict[int, dict[str, Any]] = {}
    max_job_id = -1
    if not path.exists():
        return jobs, max_job_id
    with open(path, "r", encoding="utf-8") as file:
        for line in file:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                break  # torn tail: everything after it is gone anyway
            if not isinstance(record, dict):
                continue
            job_id = record.get("job_id")
            if not isinstance(job_id, int):
                continue
            max_job_id = max(max_job_id, job_id)
            kind = record.get("kind")
            if kind == "submit":
                entry = dict(record)
                entry["generation"] = 0
                jobs[job_id] = entry
            elif kind == "generation" and job_id in jobs:
                jobs[job_id]["generation"] = max(
                    jobs[job_id]["generation"], int(record.get("generation", 0))
                )
            elif kind == "finish":
                jobs.pop(job_id, None)
    return jobs, max_job_id


def decode_payload(entry: dict[str, Any]) -> bytes:
    """The pickled submit payload of one replayed ``submit`` entry."""
    try:
        return base64.b64decode(entry["payload"])
    except (KeyError, ValueError) as err:
        raise NetError(f"corrupt journal payload: {err}") from None
