"""Framed wire protocol of the distributed backend.

Every message on a coordinator/agent/client connection is one
length-prefixed frame::

    uint32 body_len | uint8 kind | uint32 crc32 | body

with two body kinds,

``JSON`` (kind 0)
    UTF-8 JSON object holding ``{"type": ..., **fields}`` — all control
    traffic (handshakes, heartbeats, cancels, stats) is JSON so a frame can
    be inspected with nothing but a hex dump and ``json.loads``;
``BLOB`` (kind 1)
    ``uint32 header_len | JSON header | raw bytes`` — control header plus
    an opaque binary payload (pickled problem instances, seed sequences,
    solution configurations) that would be wasteful or impossible as JSON.

Both directions speak the same frames; :class:`Message` is the symmetric
in-memory form.  The module offers the codec twice: asyncio stream helpers
(:func:`read_message` / :func:`write_message`) for the coordinator and node
agents, and blocking socket helpers (:func:`recv_message` /
:func:`send_message`) for the synchronous client.

Security note: BLOB payloads are unpickled by the receiver, which is only
acceptable between mutually trusted processes — the coordinator and its
agents are assumed to live inside one trust domain (a private cluster
network), exactly like the paper's MPI ranks.

Handshake
---------
The first frame on any connection must be ``hello`` carrying ``role``
(``"node"``, ``"client"``, or — since v7 — ``"replica"``) and
``protocol``; the coordinator answers ``welcome`` (echoing its own
version plus the ``negotiated`` one) or
``reject`` + close.  Since v6 the coordinator accepts any peer version in
``[MIN_PROTOCOL_VERSION, PROTOCOL_VERSION]`` and remembers the negotiated
version per connection: a v5 agent keeps running independent multi-walk
slices unchanged, and jobs that *need* v6 frames (cooperative search) are
refused with a clear error naming the stale node instead of failing
mid-flight.  Peers older than the window are still rejected outright.

Version history
---------------
- **1** — initial frame set (submit/assign/walk_result/cancel/heartbeat/
  stats).
- **2** — telemetry: ``submit``/``assign`` frames may carry a
  ``trace_id``; ``cancel`` frames carry ``sent_at`` (the coordinator's
  monotonic send stamp); nodes answer with a new ``cancel_ack`` frame
  echoing ``sent_at`` verbatim, so the coordinator measures true
  cancel-propagation round trips on its *own* clock (no cross-host
  skew); heartbeats may carry ``load_delta`` (changed keys only) instead
  of a full ``load`` snapshot.
- **3** — integrity + resilience: the frame header grows a ``crc32`` of
  the body (:func:`zlib.crc32`); both decode paths verify it and reject
  corrupt frames with a :class:`NetError` instead of feeding garbage to
  ``json.loads``/``pickle.loads``.  ``hello`` may carry ``reconnect``
  (client asks the coordinator to keep its jobs alive across a
  disconnect); ``submit`` may carry ``client_key`` (idempotent
  resubmission token) and ``deadline`` (seconds of cluster-side budget);
  heartbeats may carry ``progress`` (per-walk iteration counts feeding
  the coordinator's straggler detector).
- **4** — dispatch dedup: ``assign`` payloads always carry a
  ``problem_digest`` (content hash, see
  :func:`repro.parallel.shm.problem_digest`) and include the pickled
  ``problem`` itself only the *first* time a given digest goes to a given
  connection; the node caches problems by digest and later assigns of the
  same job/problem are a few hundred bytes instead of re-shipping the
  tables per dispatch.
- **5** — scheduling: ``submit`` frames may carry a ``priority`` (int,
  higher dispatches sooner; absent/0 keeps plain FIFO), which the
  coordinator uses to order its pending-dispatch queue and forwards in
  ``assign`` frames so each node's local scheduler orders its own
  dispatch queue the same way.  The gateway maps tenant priority classes
  onto this field.
- **6** — cooperative search: ``submit`` frames may carry a ``coop``
  object (the :class:`~repro.coop.config.CoopConfig` wire dict), which
  rides into ``assign`` frames together with an ``island`` id; island
  agents send ``elite_report`` frames (island's best cost + pickled
  configuration per migration round) and receive ``elite_push`` frames
  (the coordinator's topology-routed migrant batch for that round); a
  finishing island sends one ``island_stats`` frame folding its adoption
  and migration-loss counters into the job result.  Handshakes negotiate
  down: the coordinator accepts v5 peers (see *Handshake* above) but
  refuses coop jobs while any live node speaks < 6.
- **7** — high availability: ``hello`` may carry role ``"replica"`` (a
  hot-standby coordinator; requires protocol >= 7 on both sides).  The
  leader answers ``welcome``, then one ``replica_snapshot`` frame (the
  journal-style records of every live job, so a late-attaching standby
  starts from the leader's current truth) and streams one
  ``replica_record`` frame per subsequent journal append (submit /
  generation / finish, carrying priority and coop metadata verbatim) —
  the write-ahead journal, tailed over the wire, framed and CRC'd like
  everything else.  The leader also broadcasts periodic ``lease`` frames
  from its heartbeat watchdog — to standbys *and* to v7 node agents
  (whose connections can outlive a dead leader without ever seeing an
  EOF, e.g. when forked workers still hold the socket's fd; lease
  silence is their re-homing trigger).  A standby whose lease goes
  silent past its
  ``lease_timeout`` (or whose connection drops) promotes itself: it
  replays its mirrored journal through the ordinary recovery path, bumps
  every generation, and re-dispatches in-flight walks under the existing
  exactly-one-winner ``client_key`` dedup.  Node/client handshakes still
  negotiate down to v5 exactly as before.
"""

from __future__ import annotations

import asyncio
import json
import pickle
import socket
import struct
import time
import zlib
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.chaos import hooks as _chaos
from repro.errors import NetError

__all__ = [
    "PROTOCOL_VERSION",
    "MIN_PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "Message",
    "encode_message",
    "decode_frame_body",
    "read_message",
    "write_message",
    "recv_message",
    "send_message",
    "pickle_blob",
    "unpickle_blob",
]

PROTOCOL_VERSION = 7

#: oldest peer version the coordinator still accepts (negotiate-down
#: window): v5 nodes run independent multi-walk slices fine; only the v6
#: cooperative frames are gated on the negotiated version per connection
MIN_PROTOCOL_VERSION = 5

#: hard frame-size ceiling: a problem pickle is kilobytes, so anything in
#: the hundreds of megabytes is a corrupt length prefix, not a real frame
MAX_FRAME_BYTES = 64 * 1024 * 1024

_HEADER = struct.Struct("!IBI")  # body length, kind, crc32(body)
_LEN = struct.Struct("!I")

_KIND_JSON = 0
_KIND_BLOB = 1


@dataclass(frozen=True)
class Message:
    """One decoded frame: a type tag, JSON-safe fields, optional blob."""

    type: str
    fields: dict[str, Any] = field(default_factory=dict)
    blob: Optional[bytes] = None

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.fields.get(key, default)


def pickle_blob(obj: Any) -> bytes:
    """Serialize an arbitrary object for a BLOB frame."""
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


def unpickle_blob(blob: Optional[bytes]) -> Any:
    if blob is None:
        raise NetError("message carries no binary payload")
    return pickle.loads(blob)


# ----------------------------------------------------------------------
# codec
# ----------------------------------------------------------------------
def encode_message(message: Message) -> bytes:
    """Encode one message into a complete wire frame."""
    header = dict(message.fields)
    header["type"] = message.type
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    if message.blob is None:
        body = header_bytes
        kind = _KIND_JSON
    else:
        body = _LEN.pack(len(header_bytes)) + header_bytes + message.blob
        kind = _KIND_BLOB
    if len(body) > MAX_FRAME_BYTES:
        raise NetError(
            f"refusing to send a {len(body)}-byte frame "
            f"(limit {MAX_FRAME_BYTES})"
        )
    return _HEADER.pack(len(body), kind, zlib.crc32(body)) + body


def _verify_crc(body: bytes, expected: int) -> None:
    """Protocol v3: reject a frame whose body fails its CRC32."""
    actual = zlib.crc32(body)
    if actual != expected:
        raise NetError(
            f"frame CRC mismatch (got {actual:#010x}, header says "
            f"{expected:#010x}); closing connection"
        )


def decode_frame_body(kind: int, body: bytes) -> Message:
    """Decode a frame body (everything after the header)."""
    if kind == _KIND_JSON:
        header_bytes, blob = body, None
    elif kind == _KIND_BLOB:
        if len(body) < _LEN.size:
            raise NetError("truncated BLOB frame")
        (header_len,) = _LEN.unpack_from(body)
        if _LEN.size + header_len > len(body):
            raise NetError("BLOB frame header overruns the frame")
        header_bytes = body[_LEN.size : _LEN.size + header_len]
        blob = body[_LEN.size + header_len :]
    else:
        raise NetError(f"unknown frame kind {kind}")
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as err:
        raise NetError(f"malformed frame header: {err}") from None
    if not isinstance(header, dict) or "type" not in header:
        raise NetError(f"frame header is not a typed object: {header!r}")
    message_type = header.pop("type")
    return Message(type=message_type, fields=header, blob=blob)


def _check_length(body_len: int) -> None:
    if body_len > MAX_FRAME_BYTES:
        raise NetError(
            f"incoming frame claims {body_len} bytes "
            f"(limit {MAX_FRAME_BYTES}); closing connection"
        )


def _faulted_frames(
    plan: Any, message: Message, frame: bytes
) -> tuple[list[bytes], float]:
    """Apply an installed fault plan to one outgoing frame.

    Returns the frames to actually put on the wire (empty = dropped,
    doubled = duplicated) and a pre-send delay in seconds.
    """
    fault = plan.frame_fault(message.type)
    if fault is None:
        return [frame], 0.0
    if fault.action == "drop":
        return [], 0.0
    if fault.action == "delay":
        return [frame], fault.delay
    if fault.action == "corrupt":
        return [plan.corrupt_frame(frame, _HEADER.size)], 0.0
    return [frame, frame], 0.0  # duplicate


# ----------------------------------------------------------------------
# asyncio streams (coordinator, node agents)
# ----------------------------------------------------------------------
async def read_message(reader: asyncio.StreamReader) -> Optional[Message]:
    """Read one message; ``None`` on a clean EOF at a frame boundary."""
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as err:
        if not err.partial:
            return None
        raise NetError("connection closed mid-frame") from None
    body_len, kind, crc = _HEADER.unpack(header)
    _check_length(body_len)
    try:
        body = await reader.readexactly(body_len)
    except asyncio.IncompleteReadError:
        raise NetError("connection closed mid-frame") from None
    _verify_crc(body, crc)
    return decode_frame_body(kind, body)


async def write_message(
    writer: asyncio.StreamWriter, message: Message
) -> None:
    """Write one message and drain the transport."""
    frame = encode_message(message)
    plan = _chaos.active()
    if plan is not None:
        frames, delay = _faulted_frames(plan, message, frame)
        if delay:
            await asyncio.sleep(delay)
        if not frames:
            return
        for faulted in frames:
            writer.write(faulted)
        await writer.drain()
        return
    writer.write(frame)
    await writer.drain()


# ----------------------------------------------------------------------
# blocking sockets (synchronous client)
# ----------------------------------------------------------------------
def _recv_exactly(sock: socket.socket, n: int) -> Optional[bytes]:
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if remaining == n:
                return None  # clean EOF at a frame boundary
            raise NetError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket) -> Optional[Message]:
    """Blocking read of one message; ``None`` on clean EOF."""
    header = _recv_exactly(sock, _HEADER.size)
    if header is None:
        return None
    body_len, kind, crc = _HEADER.unpack(header)
    _check_length(body_len)
    body = _recv_exactly(sock, body_len) if body_len else b""
    if body is None:
        raise NetError("connection closed mid-frame")
    _verify_crc(body, crc)
    return decode_frame_body(kind, body)


def send_message(sock: socket.socket, message: Message) -> None:
    """Blocking write of one complete frame."""
    frame = encode_message(message)
    plan = _chaos.active()
    if plan is not None:
        frames, delay = _faulted_frames(plan, message, frame)
        if delay:
            time.sleep(delay)
        for faulted in frames:
            sock.sendall(faulted)
        return
    sock.sendall(frame)
