"""In-process cluster harness.

:class:`LocalCluster` boots a coordinator plus ``n_nodes`` node agents on
one private asyncio event loop running in a background thread — a whole
"cluster" on localhost inside a single test, demo, or benchmark process
(the worker pools are still real OS processes, so walks genuinely run in
parallel).  The harness is also the failure-injection rig:
``kill_agent(i)`` aborts an agent's TCP connection without a goodbye and
tears its pool down, which is indistinguishable from a crashed host as far
as the coordinator can observe — the re-dispatch path is exercised with no
mocks.
"""

from __future__ import annotations

import asyncio
import threading
from pathlib import Path
from typing import Any, Optional

from repro.chaos import hooks as _chaos_hooks
from repro.errors import NetError
from repro.net.agent import NodeAgent
from repro.net.client import ClusterClient
from repro.net.coordinator import Coordinator
from repro.net.replica import StandbyCoordinator
from repro.telemetry.recorder import Recorder
from repro.telemetry.sinks import JsonlSink

__all__ = ["LocalCluster"]


class LocalCluster:
    """Coordinator + N in-process node agents on a background event loop.

    Parameters
    ----------
    n_nodes:
        node agents to start.
    workers_per_node:
        warm pool size of each agent.
    heartbeat_interval / heartbeat_timeout:
        failure-detector tuning; the aggressive defaults keep
        kill-one-node tests fast while staying far above localhost RTTs.
    max_redispatch / mp_context / poll_every:
        forwarded to the coordinator / agents.
    trace_dir:
        when set, every cluster component records telemetry to its own
        JSONL file under this directory (``coordinator.jsonl``,
        ``node-0.jsonl``..., ``client-0.jsonl``...) — the layout that
        ``repro trace <dir>`` merges back into one timeline.
    milestone_every:
        iteration-milestone sampling period for traced walks (0 = walk
        lifecycle events only).
    chaos:
        a :class:`~repro.chaos.plan.FaultPlan` installed process-wide for
        the cluster's lifetime (frame faults) and handed to the
        coordinator (crash points) and every agent (node + walk faults).
    journal:
        coordinator write-ahead journal path — enables
        :meth:`kill_coordinator` / :meth:`restart_coordinator` recovery.
    hedge_factor / max_hedges:
        straggler-hedging knobs forwarded to the coordinator.
    predictor / hedge_quantile:
        predictive-autoscaling knobs forwarded to the coordinator (see
        :class:`~repro.net.coordinator.Coordinator`); the predictor also
        survives :meth:`restart_coordinator`, modelling a warm model
        store across a coordinator crash.
    standby / lease_timeout:
        with ``standby=True`` a hot-standby coordinator (protocol v7) is
        attached before any agent joins; every agent and every
        :meth:`client` automatically receives the ordered
        ``[leader, standby]`` address list with ``reconnect=True``, so
        :meth:`kill_coordinator` followed by :meth:`promote_standby` (or
        just the standby's own lease watchdog) exercises the full
        failover path with nothing mocked.
    """

    def __init__(
        self,
        n_nodes: int = 2,
        workers_per_node: int = 1,
        *,
        heartbeat_interval: float = 0.2,
        heartbeat_timeout: float = 2.0,
        max_redispatch: int = 2,
        poll_every: int = 16,
        mp_context: str | None = None,
        trace_dir: str | Path | None = None,
        milestone_every: int = 0,
        chaos: Any = None,
        journal: str | Path | None = None,
        journal_max_bytes: int | None = None,
        hedge_factor: float | None = None,
        max_hedges: int = 2,
        min_hedge_delay: float = 0.25,
        predictor: Any = None,
        hedge_quantile: float | None = None,
        standby: bool = False,
        lease_timeout: float = 2.0,
    ) -> None:
        if n_nodes < 0:
            # 0 is allowed: submit-before-any-node tests add agents later
            raise NetError(f"n_nodes must be >= 0, got {n_nodes}")
        self.n_nodes = n_nodes
        self.workers_per_node = workers_per_node
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.max_redispatch = max_redispatch
        self.poll_every = poll_every
        self.mp_context = mp_context
        self.trace_dir = Path(trace_dir) if trace_dir is not None else None
        self.milestone_every = milestone_every
        self.chaos = chaos
        self.journal = Path(journal) if journal is not None else None
        self.journal_max_bytes = journal_max_bytes
        self.hedge_factor = hedge_factor
        self.max_hedges = max_hedges
        self.min_hedge_delay = min_hedge_delay
        self.predictor = predictor
        self.hedge_quantile = hedge_quantile
        self.with_standby = standby
        self.lease_timeout = lease_timeout

        self.coordinator: Coordinator | None = None
        self.standby: StandbyCoordinator | None = None
        self.agents: list[NodeAgent] = []
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._clients: list[ClusterClient] = []
        self._recorders: list[Recorder] = []
        self._started = False

    def _recorder(self, proc: str) -> Recorder | None:
        """A per-component recorder writing ``<trace_dir>/<proc>.jsonl``."""
        if self.trace_dir is None:
            return None
        recorder = Recorder(
            sinks=[JsonlSink(self.trace_dir / f"{proc}.jsonl")],
            proc=proc,
            milestone_every=self.milestone_every,
        )
        self._recorders.append(recorder)
        return recorder

    # ------------------------------------------------------------------
    def start(self, timeout: float = 60.0) -> "LocalCluster":
        """Boot the loop thread, the coordinator, and every agent."""
        if self._started:
            return self
        self._started = True
        if self.chaos is not None:
            # process-wide: the protocol send paths consult the installed
            # plan for frame faults (drop/delay/corrupt/duplicate)
            _chaos_hooks.install(self.chaos)
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="repro-net-loop", daemon=True
        )
        self._thread.start()
        self.coordinator = self._make_coordinator(port=0)
        self._run(self.coordinator.start(), timeout)
        if self.with_standby:
            # before any agent joins, so every agent gets both addresses
            self.add_standby(timeout=timeout)
        for _ in range(self.n_nodes):
            self.add_agent(timeout=timeout)
        return self

    def _make_coordinator(self, port: int) -> Coordinator:
        return Coordinator(
            port=port,
            heartbeat_timeout=self.heartbeat_timeout,
            check_interval=min(0.1, self.heartbeat_timeout / 4),
            max_redispatch=self.max_redispatch,
            journal_path=self.journal,
            journal_max_bytes=self.journal_max_bytes,
            hedge_factor=self.hedge_factor,
            max_hedges=self.max_hedges,
            min_hedge_delay=self.min_hedge_delay,
            predictor=self.predictor,
            hedge_quantile=self.hedge_quantile,
            chaos=self.chaos,
            recorder=self._recorder("coordinator"),
        )

    def add_standby(self, timeout: float = 60.0) -> StandbyCoordinator:
        """Attach a hot standby mirroring the running coordinator.

        The standby inherits the cluster's coordinator policy (heartbeat,
        redispatch, hedging, predictor) so the promoted coordinator
        behaves exactly like the one it replaces.  Its mirrored journal
        lives next to the leader's (or in a private tempdir when the
        cluster runs journal-less)."""
        assert self.coordinator is not None, "cluster is not started"
        standby_journal = None
        if self.journal is not None:
            standby_journal = self.journal.parent / (
                self.journal.stem + "-standby" + self.journal.suffix
            )
        self.standby = StandbyCoordinator(
            self.address,
            journal_path=standby_journal,
            lease_timeout=self.lease_timeout,
            recorder=self._recorder("standby"),
            coordinator_kwargs=dict(
                heartbeat_timeout=self.heartbeat_timeout,
                check_interval=min(0.1, self.heartbeat_timeout / 4),
                max_redispatch=self.max_redispatch,
                journal_max_bytes=self.journal_max_bytes,
                hedge_factor=self.hedge_factor,
                max_hedges=self.max_hedges,
                min_hedge_delay=self.min_hedge_delay,
                predictor=self.predictor,
                hedge_quantile=self.hedge_quantile,
                chaos=self.chaos,
            ),
        )
        self._run(self.standby.start(), timeout)
        return self.standby

    def promote_standby(self, timeout: float = 60.0) -> Coordinator:
        """Wait for the standby to take over and re-point the cluster.

        The standby promotes *itself* (lease silence or connection loss
        after :meth:`kill_coordinator`); this just blocks until the
        promoted coordinator is serving and makes it the cluster's
        coordinator so ``address`` / assertions track the new leader."""
        assert self.standby is not None, "cluster has no standby"
        self._run(self.standby.wait_promoted(timeout), timeout + 5.0)
        assert self.standby.coordinator is not None
        self.coordinator = self.standby.coordinator
        return self.coordinator

    def _endpoints(self) -> list[tuple[str, int]]:
        """Ordered coordinator address list: leader first, then standby."""
        addresses = [self.address]
        if self.standby is not None:
            addresses.append(self.standby.address)
        return addresses

    def stop(self, timeout: float = 60.0) -> None:
        """Tear everything down (idempotent); joins the loop thread."""
        if self._loop is None:
            return
        for client in self._clients:
            client.close()
        self._clients.clear()
        for agent in self.agents:
            try:
                self._run(agent.stop(), timeout)
            except NetError:  # pragma: no cover - already dead
                pass
        self.agents.clear()
        if self.standby is not None:
            # stops the promoted coordinator too, if the takeover happened
            self._run(self.standby.stop(), timeout)
        if self.coordinator is not None and (
            self.standby is None
            or self.coordinator is not self.standby.coordinator
        ):
            self._run(self.coordinator.stop(), timeout)
        self.coordinator = None
        self.standby = None
        for recorder in self._recorders:
            recorder.close()
        self._recorders.clear()
        if self.chaos is not None and _chaos_hooks.active() is self.chaos:
            _chaos_hooks.uninstall()
        self._loop.call_soon_threadsafe(self._loop.stop)
        assert self._thread is not None
        self._thread.join(timeout=10.0)
        self._loop.close()
        self._loop = None
        self._thread = None

    def __enter__(self) -> "LocalCluster":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        assert self.coordinator is not None, "cluster is not started"
        return self.coordinator.address

    def client(self, **kwargs: Any) -> ClusterClient:
        """A connected client whose lifetime the cluster manages.

        Keyword arguments (e.g. ``reconnect=True``) are forwarded to
        :class:`ClusterClient`."""
        recorder = self._recorder(f"client-{len(self._clients)}")
        if self.standby is not None:
            kwargs.setdefault("reconnect", True)
        client = ClusterClient(
            self._endpoints(), recorder=recorder, **kwargs
        ).connect()
        self._clients.append(client)
        return client

    def add_agent(
        self, name: Optional[str] = None, timeout: float = 60.0
    ) -> NodeAgent:
        """Boot one more node agent and join it to the running cluster
        (elastic growth — also how submit-before-any-node tests resolve)."""
        agent_name = name or f"node-{len(self.agents)}"
        agent = NodeAgent(
            self._endpoints(),
            n_workers=self.workers_per_node,
            reconnect=self.standby is not None,
            lease_timeout=(
                self.lease_timeout if self.standby is not None else None
            ),
            name=agent_name,
            heartbeat_interval=self.heartbeat_interval,
            poll_every=self.poll_every,
            mp_context=self.mp_context,
            chaos=self.chaos,
            recorder=self._recorder(agent_name),
        )
        self._run(agent.start(), timeout)
        self.agents.append(agent)
        return agent

    def kill_agent(self, index: int, timeout: float = 60.0) -> None:
        """Simulate the death of node ``index`` (abrupt, no goodbye)."""
        self._run(self.agents[index].kill(), timeout)

    def kill_coordinator(self, timeout: float = 60.0) -> None:
        """``kill -9`` the coordinator in-process: connections reset, the
        journal fd dropped without a final fsync, all in-memory job state
        gone.  Agents and clients observe a dead endpoint."""
        assert self.coordinator is not None, "cluster is not started"
        self._run(self.coordinator.crash(), timeout)

    def restart_coordinator(
        self, *, rejoin_agents: bool = True, timeout: float = 60.0
    ) -> Coordinator:
        """Boot a fresh coordinator on the *same* port from the journal.

        The old agents hold dead connections (their teardown raced the
        crash); by default they are stopped and replaced with fresh agents
        of the same names so recovered jobs have somewhere to run.
        """
        assert self.coordinator is not None, "cluster is not started"
        port = self.coordinator.port
        names = [agent.name for agent in self.agents]
        if rejoin_agents:
            for agent in self.agents:
                try:
                    self._run(agent.stop(), timeout)
                except NetError:  # pragma: no cover - already dead
                    pass
            self.agents.clear()
        self.coordinator = self._make_coordinator(port=port)
        self._run(self.coordinator.start(), timeout)
        if rejoin_agents:
            for name in names:
                self.add_agent(name=name, timeout=timeout)
        return self.coordinator

    def live_node_names(self) -> list[str]:
        assert self.coordinator is not None
        return self.coordinator.node_names

    # ------------------------------------------------------------------
    def _run(self, coro, timeout: float):
        assert self._loop is not None, "cluster is not started"
        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        try:
            return future.result(timeout=timeout)
        except TimeoutError:
            future.cancel()
            raise NetError(
                f"cluster operation timed out after {timeout}s"
            ) from None
