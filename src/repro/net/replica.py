"""Hot-standby coordinator: journal-streaming replication + takeover.

:class:`StandbyCoordinator` closes the gap between the PR 5 write-ahead
journal (recovery after a *manual* restart) and true high availability:

- **replication stream** — the standby connects to the leader with the
  protocol v7 ``hello role=replica`` handshake and tails the job journal
  over the wire: one ``replica_snapshot`` frame reconstructing every live
  job, then one ``replica_record`` frame per journal append (submit /
  generation / finish, with priority and coop metadata verbatim).  Every
  record is appended to the standby's *own* journal file — the mirror is
  durable, not just warm memory — and folded into an in-memory mirror of
  pending/dispatched jobs;
- **leader lease** — the leader renews a lease from its heartbeat
  watchdog tick; the standby promotes itself when the lease goes silent
  past ``lease_timeout`` (wedged leader) or the replication connection
  drops (dead leader) — both reduce to "the leader stopped renewing";
- **deterministic takeover** — promotion simply constructs a fresh
  :class:`~repro.net.coordinator.Coordinator` over the mirrored journal
  on the standby's pre-reserved port: the battle-tested journal recovery
  re-creates every unfinished job under a strictly bumped generation
  (stale pre-crash reports stay stale), re-registers ``client_key``
  dedup, and re-dispatches as soon as re-homed agents join.  Exactly-one
  winner is preserved by the same machinery that already guards
  re-dispatch and hedging;
- **re-homing** — clients and node agents take an ordered coordinator
  address list (leader first, standby second) and fail over with the
  existing jittered reconnect/backoff machinery, so nothing above this
  layer needs new logic to survive the switch.

Split-brain note: a wedged-but-alive leader plus a promoted standby can
coexist briefly.  This is bounded and harmless by construction — clients
and agents prefer addresses in order (they only reach the standby once
the leader stops answering), promotion bumps every job generation so any
report the old leader's assignments still produce is dropped as stale,
and the ``client_key`` cache dedupes double answers.  We document the
window instead of adding a consensus protocol the paper's control plane
does not need.
"""

from __future__ import annotations

import asyncio
import socket
import tempfile
import time
from pathlib import Path
from typing import Any, Optional

from repro.errors import NetError
from repro.net.coordinator import Coordinator
from repro.net.journal import JobJournal
from repro.net.protocol import (
    PROTOCOL_VERSION,
    Message,
    read_message,
    write_message,
)
from repro.telemetry.events import FailoverBegin, FailoverComplete
from repro.telemetry.recorder import Recorder, get_recorder

__all__ = ["StandbyCoordinator"]


class StandbyCoordinator:
    """A warm spare tailing the leader's journal, ready to take over.

    Parameters
    ----------
    leader:
        the leader coordinator's ``(host, port)`` (or ``"host:port"``).
    host / port:
        where the *promoted* coordinator will serve.  ``port=0`` reserves
        a free port during :meth:`start` — before promotion — so clients
        and agents can be handed the ordered address list up front.
    journal_path:
        where the mirrored journal lives; ``None`` keeps it in a private
        temporary directory that dies with this object.
    lease_timeout:
        seconds of lease silence before the standby declares the leader
        dead and promotes itself.  Connection loss promotes immediately.
    poll_interval:
        how often the lease watchdog checks.
    connect_timeout:
        dial + handshake budget against the leader.
    coordinator_kwargs:
        keyword arguments forwarded to the promoted
        :class:`~repro.net.coordinator.Coordinator` (heartbeat/hedging
        knobs, ``predictor``, ``journal_max_bytes``, ...), so the standby
        inherits the leader's policy, not the defaults.
    recorder:
        telemetry recorder for the ``FailoverBegin`` / ``FailoverComplete``
        events (and, forwarded, for the promoted coordinator).
    """

    def __init__(
        self,
        leader: Any,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        journal_path: Any = None,
        lease_timeout: float = 2.0,
        poll_interval: float = 0.05,
        connect_timeout: float = 10.0,
        coordinator_kwargs: dict[str, Any] | None = None,
        recorder: Recorder | None = None,
    ) -> None:
        from repro.net.client import parse_address

        if lease_timeout <= 0:
            raise NetError(f"lease_timeout must be > 0, got {lease_timeout}")
        self.leader = parse_address(leader)
        self.host = host
        self.port = port
        self.lease_timeout = lease_timeout
        self.poll_interval = poll_interval
        self.connect_timeout = connect_timeout
        self.coordinator_kwargs = dict(coordinator_kwargs or {})
        self.recorder = recorder if recorder is not None else get_recorder()
        self._tmpdir: Optional[tempfile.TemporaryDirectory] = None
        if journal_path is None:
            self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-standby-")
            journal_path = Path(self._tmpdir.name) / "journal.jsonl"
        self.journal_path = Path(journal_path)
        self._journal: Optional[JobJournal] = None
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._tasks: list[asyncio.Task] = []
        self._last_lease = 0.0
        self._stopped = False
        self._promoting = False
        #: set once the promoted coordinator is serving
        self.promoted = asyncio.Event()
        #: the promoted :class:`Coordinator` (None while standing by)
        self.coordinator: Optional[Coordinator] = None
        self.promote_reason = ""
        #: detection-to-serving seconds of the takeover (0.0 until then)
        self.failover_elapsed = 0.0
        self.records_mirrored = 0
        #: job_id -> folded submit record of every not-yet-finished job
        self._mirror: dict[int, dict[str, Any]] = {}

    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """Where the promoted coordinator serves (valid after start)."""
        return (self.host, self.port)

    @property
    def jobs_mirrored(self) -> int:
        """Live (unfinished) jobs currently in the warm mirror."""
        return len(self._mirror)

    def _reserve_port(self) -> None:
        """Pin the serving port before promotion.

        Clients and agents need the standby's address *while the leader
        is still alive*, so ``port=0`` is resolved here by binding a
        throwaway socket and releasing it.  The port could in principle
        be stolen between release and promotion — a documented, tiny race
        accepted over shipping address updates through a side channel.
        """
        if self.port:
            return
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            probe.bind((self.host, 0))
            self.port = probe.getsockname()[1]
        finally:
            probe.close()

    async def start(self) -> tuple[str, int]:
        """Attach to the leader and start mirroring; returns the address
        the *promoted* coordinator will serve on."""
        self._reserve_port()
        # retry refused dials until the budget expires: a standby is
        # routinely booted alongside its leader, which may still be
        # importing/binding when we first knock
        deadline = time.monotonic() + self.connect_timeout
        while True:
            try:
                reader, writer = await asyncio.wait_for(
                    asyncio.open_connection(*self.leader),
                    max(0.1, deadline - time.monotonic()),
                )
                break
            except (OSError, asyncio.TimeoutError) as err:
                if time.monotonic() >= deadline:
                    raise NetError(
                        f"standby cannot reach leader "
                        f"{self.leader[0]}:{self.leader[1]}: {err}"
                    ) from None
                await asyncio.sleep(0.2)
        await write_message(
            writer,
            Message(
                "hello", {"role": "replica", "protocol": PROTOCOL_VERSION}
            ),
        )
        try:
            welcome = await asyncio.wait_for(
                read_message(reader), self.connect_timeout
            )
        except asyncio.TimeoutError:
            writer.close()
            raise NetError("leader never answered the replica hello") from None
        if welcome is None or welcome.type != "welcome":
            error = welcome.get("error") if welcome is not None else "EOF"
            writer.close()
            raise NetError(f"leader refused the replica handshake: {error}")
        self._reader, self._writer = reader, writer
        self._journal = JobJournal(self.journal_path)
        self._last_lease = time.monotonic()
        self._tasks = [
            asyncio.ensure_future(self._tail_loop()),
            asyncio.ensure_future(self._watch_lease()),
        ]
        return self.address

    # ------------------------------------------------------------------
    # replication tail
    # ------------------------------------------------------------------
    async def _tail_loop(self) -> None:
        assert self._reader is not None
        try:
            while True:
                message = await read_message(self._reader)
                if message is None:
                    break
                # any frame is proof of leader liveness
                self._last_lease = time.monotonic()
                if message.type == "replica_snapshot":
                    for record in message.get("records") or []:
                        self._ingest(record)
                elif message.type == "replica_record":
                    record = message.get("record")
                    if record is not None:
                        self._ingest(record)
        except (NetError, ConnectionError, OSError):
            pass
        # EOF / reset / graceful leader stop all mean the same thing to a
        # standby: nobody is renewing the lease anymore
        if not self._stopped:
            await self.promote(reason="connection-lost")

    def _ingest(self, record: dict[str, Any]) -> None:
        """Durably journal one streamed record and fold the warm mirror."""
        if not isinstance(record, dict):
            return
        if self._journal is not None:
            self._journal.append_record(record)
        self.records_mirrored += 1
        kind = record.get("kind")
        job_id = record.get("job_id")
        if not isinstance(job_id, int):
            return
        if kind == "submit":
            self._mirror[job_id] = dict(record)
        elif kind == "generation" and job_id in self._mirror:
            self._mirror[job_id]["generation"] = record.get("generation", 0)
        elif kind == "finish":
            self._mirror.pop(job_id, None)

    async def _watch_lease(self) -> None:
        while True:
            await asyncio.sleep(self.poll_interval)
            if self._stopped or self._promoting:
                return
            if time.monotonic() - self._last_lease > self.lease_timeout:
                await self.promote(reason="lease-timeout")
                return

    # ------------------------------------------------------------------
    # takeover
    # ------------------------------------------------------------------
    async def promote(self, reason: str = "manual") -> None:
        """Take over: replay the mirrored journal, serve on our port.

        Idempotent; called by the tail loop (connection lost), the lease
        watchdog (silence), or tests (manual).  The promoted coordinator
        runs the ordinary journal recovery, which bumps every generation
        above anything the dead leader ever assigned and queues every
        unfinished job for dispatch the moment re-homed agents join.
        """
        if self._promoting or self._stopped:
            return
        self._promoting = True
        detected = time.monotonic()
        self.promote_reason = reason
        leader_addr = f"{self.leader[0]}:{self.leader[1]}"
        standby_addr = f"{self.host}:{self.port}"
        if self.recorder.enabled:
            self.recorder.emit(
                FailoverBegin(
                    leader=leader_addr, standby=standby_addr, reason=reason
                )
            )
        # stop mirroring: cancel the *other* loop task (promote is called
        # from inside one of them), drop the leader connection, release
        # the journal fd so the promoted coordinator owns the file
        current = asyncio.current_task()
        for task in self._tasks:
            if task is not current:
                task.cancel()
        self._tasks = []
        if self._writer is not None:
            transport = self._writer.transport
            if transport is not None:
                transport.abort()
            self._writer = None
        if self._journal is not None:
            self._journal.close()
            self._journal = None
        kwargs = dict(self.coordinator_kwargs)
        kwargs.setdefault("recorder", self.recorder)
        self.coordinator = Coordinator(
            self.host,
            self.port,
            journal_path=self.journal_path,
            **kwargs,
        )
        await self.coordinator.start()
        self.failover_elapsed = time.monotonic() - detected
        if self.recorder.enabled:
            self.recorder.emit(
                FailoverComplete(
                    standby=standby_addr,
                    jobs_recovered=self.coordinator.counters[
                        "recovered_jobs"
                    ],
                    elapsed=self.failover_elapsed,
                )
            )
        self.promoted.set()

    async def wait_promoted(self, timeout: float | None = None) -> None:
        await asyncio.wait_for(self.promoted.wait(), timeout)

    # ------------------------------------------------------------------
    async def stop(self) -> None:
        """Tear down the standby (and the promoted coordinator, if any)."""
        self._stopped = True
        current = asyncio.current_task()
        for task in self._tasks:
            if task is not current:
                task.cancel()
        self._tasks = []
        if self._writer is not None:
            transport = self._writer.transport
            if transport is not None:
                transport.abort()
            self._writer = None
        if self._journal is not None:
            self._journal.close()
            self._journal = None
        if self.coordinator is not None:
            await self.coordinator.stop()
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None
