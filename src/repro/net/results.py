"""Result types and walk-payload codecs of the distributed backend.

The cluster reuses the service-layer vocabulary on purpose:
:class:`~repro.parallel.results.WalkOutcome` is what one walk reports no
matter which runtime executed it, and :class:`~repro.service.jobs.JobStatus`
describes a finished job identically on one host and on many.  This module
adds the wire codecs (``walk_result`` frames) and :class:`NetJobResult`,
the cluster-level aggregate with per-walk node attribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.termination import TerminationReason
from repro.net.protocol import Message, pickle_blob, unpickle_blob
from repro.parallel.results import ParallelResult, WalkOutcome
from repro.service.jobs import JobStatus

__all__ = [
    "NetJobResult",
    "outcome_to_message",
    "outcome_from_message",
    "job_result_to_message",
    "job_result_from_message",
]


@dataclass
class NetJobResult:
    """Everything the coordinator knows about one finished cluster job.

    ``nodes`` maps walk id -> node name for every walk that reported, so a
    result is auditable: which machine won, and how work spread across the
    cluster.  ``redispatches`` counts how many times slices of this job had
    to be moved off a dead node.  ``wall_time`` is coordinator-side
    submission -> completion (network latency included — it is what a
    cluster client experiences).

    ``degraded`` marks graceful degradation: the job could not run to its
    normal conclusion (deadline expired, cluster partially lost) but the
    coordinator still aggregated every walk outcome it had instead of
    raising — :attr:`best_config` / :attr:`best_cost` expose the
    best-so-far configuration in that case.

    ``coop`` is ``None`` for independent jobs; for cooperative (island
    model) jobs it carries the migration ledger — topology, island count,
    elite reports seen, migrations relayed and *lost* (dropped links,
    dead islands), and the islands' adoption counters — so a result always
    discloses how much cooperation actually happened.
    """

    job_id: int
    status: JobStatus
    n_walkers: int
    walks: list[WalkOutcome] = field(default_factory=list)
    winner: Optional[WalkOutcome] = None
    winner_node: Optional[str] = None
    nodes: dict[int, str] = field(default_factory=dict)
    error: Optional[str] = None
    redispatches: int = 0
    wall_time: float = 0.0
    degraded: bool = False
    coop: Optional[dict] = None

    @property
    def solved(self) -> bool:
        return self.status is JobStatus.SOLVED

    @property
    def config(self) -> Optional[np.ndarray]:
        return self.winner.config if self.winner is not None else None

    @property
    def best_walk(self) -> Optional[WalkOutcome]:
        """The winner, else the lowest-cost reported walk with a config."""
        if self.winner is not None:
            return self.winner
        candidates = [w for w in self.walks if w.config is not None]
        if not candidates:
            return None
        return min(candidates, key=lambda w: w.cost)

    @property
    def best_config(self) -> Optional[np.ndarray]:
        """Best-so-far configuration (meaningful even when degraded)."""
        best = self.best_walk
        return best.config if best is not None else None

    @property
    def best_cost(self) -> Optional[float]:
        best = self.best_walk
        return best.cost if best is not None else None

    def to_parallel_result(self, executor: str = "net") -> ParallelResult:
        """View this cluster job as a :class:`ParallelResult`.

        ``wall_time`` keeps multi-walk semantics (the winner's in-walk
        solving time); ``elapsed_time`` is the cluster round-trip.
        """
        if self.winner is not None:
            wall_time = self.winner.wall_time
        elif self.walks:
            wall_time = max(w.wall_time for w in self.walks)
        else:
            wall_time = self.wall_time
        return ParallelResult(
            solved=self.solved,
            n_walkers=self.n_walkers,
            winner=self.winner,
            walks=list(self.walks),
            wall_time=wall_time,
            elapsed_time=self.wall_time,
            executor=executor,
        )

    def summary(self) -> str:
        if self.solved:
            assert self.winner is not None
            status = (
                f"SOLVED by walk {self.winner.walk_id} "
                f"on node {self.winner_node}"
            )
        else:
            status = self.status.value.upper()
        extra = (
            f", {self.redispatches} re-dispatch(es)" if self.redispatches else ""
        )
        if self.degraded:
            best = self.best_cost
            extra += (
                f", DEGRADED (best-so-far cost "
                f"{best if best is not None else '?'})"
            )
        if self.coop is not None:
            extra += (
                f", coop {self.coop.get('topology')} x"
                f"{self.coop.get('islands', 0)} islands "
                f"({self.coop.get('migrations_relayed', 0)} migrations, "
                f"{self.coop.get('migrations_lost', 0)} lost)"
            )
        return (
            f"cluster job {self.job_id} x{self.n_walkers}: {status}, "
            f"round-trip {self.wall_time * 1e3:.1f}ms{extra}"
        )


# ----------------------------------------------------------------------
# walk_result frames (node agent -> coordinator)
# ----------------------------------------------------------------------
def outcome_to_message(
    job_id: int, generation: int, outcome: WalkOutcome
) -> Message:
    """Encode one finished walk; the configuration rides in the blob."""
    return Message(
        type="walk_result",
        fields={
            "job_id": job_id,
            "generation": generation,
            "walk_id": outcome.walk_id,
            "solved": outcome.solved,
            "cost": float(outcome.cost),
            "iterations": int(outcome.iterations),
            "wall_time": float(outcome.wall_time),
            "reason": outcome.reason.name,
        },
        blob=(
            pickle_blob(np.asarray(outcome.config, dtype=np.int64))
            if outcome.config is not None
            else None
        ),
    )


def outcome_from_message(message: Message) -> WalkOutcome:
    return WalkOutcome(
        walk_id=message["walk_id"],
        solved=message["solved"],
        cost=message["cost"],
        iterations=message["iterations"],
        wall_time=message["wall_time"],
        reason=TerminationReason[message["reason"]],
        config=(
            unpickle_blob(message.blob) if message.blob is not None else None
        ),
    )


# ----------------------------------------------------------------------
# job_result frames (coordinator -> client)
# ----------------------------------------------------------------------
def job_result_to_message(result: NetJobResult, request_id: int) -> Message:
    """Encode a finished job; walk outcomes travel as one pickled blob."""
    return Message(
        type="job_result",
        fields={
            "request_id": request_id,
            "job_id": result.job_id,
            "status": result.status.value,
            "n_walkers": result.n_walkers,
            "winner_walk_id": (
                result.winner.walk_id if result.winner is not None else None
            ),
            "winner_node": result.winner_node,
            "error": result.error,
            "redispatches": result.redispatches,
            "wall_time": result.wall_time,
            "degraded": result.degraded,
            "coop": result.coop,
        },
        blob=pickle_blob({"walks": result.walks, "nodes": result.nodes}),
    )


def job_result_from_message(message: Message) -> NetJobResult:
    payload = unpickle_blob(message.blob)
    walks: list[WalkOutcome] = payload["walks"]
    winner_walk_id = message["winner_walk_id"]
    winner = None
    if winner_walk_id is not None:
        winner = next(w for w in walks if w.walk_id == winner_walk_id)
    return NetJobResult(
        job_id=message["job_id"],
        status=JobStatus(message["status"]),
        n_walkers=message["n_walkers"],
        walks=walks,
        winner=winner,
        winner_node=message["winner_node"],
        nodes=payload["nodes"],
        error=message["error"],
        redispatches=message["redispatches"],
        wall_time=message["wall_time"],
        degraded=bool(message.get("degraded", False)),
        coop=message.get("coop"),
    )
