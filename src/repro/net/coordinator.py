"""The cluster coordinator.

One asyncio TCP server owning all cluster-wide policy:

- **node registry** — agents connect in (``hello role=node``), carry a
  worker capacity, and prove liveness with periodic heartbeat frames; a
  node is declared dead on connection loss *or* heartbeat silence beyond
  ``heartbeat_timeout`` (the slow path catches hung-but-connected hosts);
- **job registry** — clients submit multi-walk jobs (problem + explicit
  per-walk seed list); walk indices are partitioned round-robin across the
  live nodes with :func:`repro.parallel.seeding.partition_walks`, so a
  cluster run is walk-for-walk the same set of trajectories as a
  single-host run with the same job seed;
- **first-finisher-wins across nodes** — the first solved walk report wins
  the job; the coordinator broadcasts ``cancel`` to every node holding a
  slice (the cluster-scope version of the PR 2 in-pool generation tokens)
  and answers the client immediately while losing walks drain remotely;
- **re-dispatch** — a dead node's unfinished walk indices are re-assigned
  to the survivors under a bumped job generation, at most
  ``max_redispatch`` times per job, after which the job fails loudly;
- **crash recovery** — with a ``journal_path``, every accepted job is
  written ahead to a JSONL journal (see :mod:`repro.net.journal`); a
  restarted coordinator replays the journal, re-creates every unfinished
  job under a strictly larger generation (stale pre-crash reports stay
  dropped) and re-dispatches it once nodes rejoin;
- **idempotent resubmission** — submits may carry a client-supplied
  ``client_key``; resubmitting the same key re-attaches the (reconnected)
  client to the still-running job, or replays the cached result if the
  job finished while the client was away — never a duplicate run;
- **straggler hedging** — per-walk progress ships in node heartbeats;
  once most of a job's walks are done, a walk that is both old and slow
  relative to the finished median is *hedged*: a second copy of the same
  seed and generation goes to another node, first copy wins, the loser is
  dropped as stale (off by default, ``hedge_factor=None``);
- **graceful degradation** — deadline expiry or unrecoverable cluster
  loss finishes the job with ``degraded=True`` and every outcome
  aggregated so far (best-so-far configuration) instead of raising;
- **aggregation & stats** — walk outcomes are folded into one
  :class:`~repro.net.results.NetJobResult`; a ``stats`` request returns
  coordinator counters plus every node's last heartbeat load (the
  per-node :meth:`MetricsSnapshot.to_json` snapshot).

The coordinator executes no walks itself — like the paper's OpenMPI
launcher it is pure control plane, which is why a single asyncio task per
connection is plenty even at large node counts.
"""

from __future__ import annotations

import asyncio
import hashlib
import itertools
import math
import time
from collections import OrderedDict, deque
from typing import Any, Optional

from repro.coop import CoopConfig, migration_routes
from repro.errors import CoopError, NetError
from repro.net.journal import (
    JobJournal,
    checkpoint_record,
    decode_payload,
    finish_record,
    generation_record,
    replay_journal,
    submit_record,
)
from repro.net.protocol import (
    MIN_PROTOCOL_VERSION,
    PROTOCOL_VERSION,
    Message,
    pickle_blob,
    read_message,
    unpickle_blob,
    write_message,
)
from repro.net.results import (
    NetJobResult,
    job_result_to_message,
    outcome_from_message,
)
from repro.parallel.seeding import partition_walks
from repro.service.jobs import JobStatus
from repro.telemetry.events import (
    AssignEvent,
    CancelAck,
    CancelBroadcast,
    EliteReport,
    FirstSolve,
    HedgeDispatch,
    JobDispatch,
    JobFinish,
    JobSubmit,
    Migration,
)
from repro.telemetry.recorder import Recorder, get_recorder

__all__ = ["Coordinator"]

#: cancel round trips retained for the stats frame (ring buffer)
_MAX_CANCEL_SAMPLES = 1024

#: finished results cached for client_key replay (bounded LRU)
_MAX_FINISHED_CACHE = 256

#: per-connection write-queue depth before the slow-consumer policy kicks
#: in: droppable frames are discarded, job frames backpressure the sender
_MAX_SEND_QUEUE = 256

#: frame types a slow consumer may lose without breaking correctness —
#: telemetry and liveness hints, re-sent periodically anyway.  Job frames
#: (assign/cancel/job_result/replica_record/...) are NEVER dropped: a full
#: queue backpressures the coordinator task instead, which bounds leader
#: memory while preserving delivery.
_DROPPABLE_FRAMES = frozenset({"stats", "lease"})


class _Conn:
    """One connection with a bounded, serialized write queue.

    Many coordinator tasks may send concurrently; all writes funnel
    through one drain task per connection, so a stalled peer socket can
    hold at most ``max_queue`` frames of leader memory.  When the queue
    is full, frames in :data:`_DROPPABLE_FRAMES` are dropped and counted
    (``on_drop`` feeds the metrics registry); everything else waits.
    Write errors surface in the drain task, which aborts the connection —
    the per-connection reader task then runs the usual loss path.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        max_queue: int = _MAX_SEND_QUEUE,
        on_drop: Any = None,
    ) -> None:
        self.reader = reader
        self.writer = writer
        self._send_lock = asyncio.Lock()
        self.closed = False
        #: a resilient client (hello ``reconnect=True``) keeps its jobs
        #: running on disconnect instead of having them cancelled
        self.resilient = False
        self.dropped_frames = 0
        self._on_drop = on_drop
        self._queue: asyncio.Queue[Message] = asyncio.Queue(maxsize=max_queue)
        self._writer_task: asyncio.Task | None = None

    async def send(self, message: Message) -> None:
        if self.closed:
            return
        if self._writer_task is None:
            self._writer_task = asyncio.ensure_future(self._drain_loop())
        if self._queue.full() and message.type in _DROPPABLE_FRAMES:
            self.dropped_frames += 1
            if self._on_drop is not None:
                self._on_drop(message.type)
            return
        await self._queue.put(message)

    async def _drain_loop(self) -> None:
        while True:
            message = await self._queue.get()
            try:
                async with self._send_lock:
                    await write_message(self.writer, message)
            except (NetError, ConnectionError, OSError):
                self.abort()
                return
            finally:
                # also runs on cancellation mid-write, so drain() waiters
                # are always released
                self._queue.task_done()

    async def drain(self) -> None:
        """Wait until every queued frame hit the transport (or the
        connection died — abort releases waiters either way)."""
        try:
            await asyncio.wait_for(self._queue.join(), timeout=5.0)
        except asyncio.TimeoutError:  # pragma: no cover - defensive
            pass

    def abort(self) -> None:
        if not self.closed:
            self.closed = True
            if self._writer_task is not None:
                self._writer_task.cancel()
            # release any drain() waiters: the unsent tail is gone anyway
            while True:
                try:
                    self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                self._queue.task_done()
            transport = self.writer.transport
            if transport is not None:
                transport.abort()


class _Node:
    """Registry entry for one connected node agent."""

    def __init__(
        self,
        node_id: int,
        name: str,
        capacity: int,
        conn: _Conn,
        protocol: int = PROTOCOL_VERSION,
    ) -> None:
        self.node_id = node_id
        self.name = name
        self.capacity = capacity
        self.conn = conn
        #: negotiated protocol version (v6 handshake accepts a window);
        #: cooperative jobs are only dispatched to >= 6 nodes
        self.protocol = protocol
        self.last_heartbeat = time.monotonic()
        self.load: dict[str, Any] = {}
        #: job_id -> walk ids currently assigned to this node
        self.assigned: dict[int, set[int]] = {}
        #: protocol v4: problem digests this connection has already
        #: received — later assigns ship a digest reference instead of the
        #: pickled problem (reset naturally on reconnect: new _Node)
        self.known_problems: set[str] = set()
        self.lost = False


class _CoopState:
    """Coordinator-side bookkeeping for one cooperative (island) job.

    The coordinator's role in a migration round is a *barrier relay*:
    every active island sends one ``elite_report`` per round and then
    waits; once every active island has an unconsumed report the
    coordinator routes them through the job's topology and answers every
    reporting island with exactly one ``elite_push`` (possibly carrying
    no migrants) — a uniform protocol with deterministic content.  The
    barrier counts *reports per island*, not matching round numbers, so
    an island re-created by a re-dispatch (whose local round counter
    restarts at 1) still participates instead of wedging the relay.
    Islands that die or finish shrink the expected set, and an island
    whose push is lost times out locally and continues (degradation,
    never deadlock).
    """

    def __init__(self, config: CoopConfig) -> None:
        self.config = config
        #: island id -> {"node": node_id, "walks": set, "generation": int}
        self.islands: dict[int, dict[str, Any]] = {}
        self.done: set[int] = set()  # sent island_stats (finished cleanly)
        self.lost: set[int] = set()  # hosting node died
        self.next_island = 0
        #: island id -> (island-local round index, cost, raw pickled
        #: config bytes) — at most one unconsumed report per island
        self.pending: dict[int, tuple[int, float, bytes]] = {}
        self.best_cost = math.inf
        self.stats = {
            "elite_reports": 0,
            "rounds_relayed": 0,
            "rounds_dropped": 0,
            "migrations_relayed": 0,
            "pushes_failed": 0,
            "island_reports": 0,
            "island_adoptions": 0,
            "island_migrations_in": 0,
            "island_migrations_lost": 0,
        }

    def active_islands(self) -> set[int]:
        """Islands still expected to report (live node, not finished)."""
        return {
            island
            for island in self.islands
            if island not in self.done and island not in self.lost
        }


class _NetJob:
    """Registry entry for one in-flight cluster job."""

    def __init__(
        self,
        job_id: int,
        request_id: int,
        client: Optional[_Conn],
        problem: Any,
        config: Any,
        seeds: list[Any],
        submitted_at: float,
        trace_id: str = "",
        client_key: str = "",
        priority: int = 0,
        coop: Optional[dict] = None,
    ) -> None:
        self.job_id = job_id
        self.trace_id = trace_id
        self.request_id = request_id
        #: ``None`` while the owning client is disconnected (resilient
        #: client away, or job recovered from the journal)
        self.client = client
        self.client_key = client_key
        #: protocol v5: orders the pending-dispatch queue (higher first)
        #: and travels in assign frames so node-local schedulers agree
        self.priority = priority
        self.problem = problem
        self.config = config
        self.seeds = seeds
        self.submitted_at = submitted_at
        self.deadline_at: Optional[float] = None
        self.generation = 0
        self.outstanding: set[int] = set(range(len(seeds)))
        self.outcomes: dict[int, Any] = {}
        self.nodes: dict[int, str] = {}
        self.winner: Any = None
        self.winner_node: Optional[str] = None
        self.redispatches = 0
        self.error: Optional[str] = None
        self.degraded = False
        #: straggler bookkeeping: last dispatch time and heartbeat progress
        #: per outstanding walk, wall times of finished walks, hedge caps
        self.dispatched_at: dict[int, float] = {}
        self.progress: dict[int, dict[str, Any]] = {}
        self.completed_walls: list[float] = []
        self.hedged: dict[int, int] = {}
        self.hedge_count = 0
        self._problem_digest: Optional[str] = None
        #: protocol v6: the validated coop wire dict (None = independent
        #: multi-walk) and the live island/migration bookkeeping
        self.coop = coop
        self.coop_state = (
            _CoopState(CoopConfig.from_wire(coop)) if coop is not None else None
        )

    @property
    def problem_digest(self) -> str:
        """Content digest of this job's problem (computed once)."""
        if self._problem_digest is None:
            from repro.parallel.shm import problem_digest

            self._problem_digest = problem_digest(self.problem)
        return self._problem_digest


class Coordinator:
    """Asyncio TCP coordinator for distributed multi-walk solving.

    Parameters
    ----------
    host / port:
        bind address; ``port=0`` picks a free port (read it back from
        :attr:`address` after :meth:`start` — how every test wires up).
    heartbeat_timeout:
        seconds of heartbeat silence after which a connected node is
        declared dead (connection loss is detected immediately regardless).
    check_interval:
        watchdog period for heartbeat scanning.
    max_redispatch:
        how many times one job's slices may be moved off dead nodes before
        the job fails.
    journal_path:
        when set, a :class:`~repro.net.journal.JobJournal` write-ahead log
        is kept there and replayed on :meth:`start` — unfinished jobs of a
        crashed predecessor are re-created and re-dispatched.
    journal_max_bytes:
        size trigger for journal rotation: once a ``finish`` append leaves
        the file over this many bytes it is compacted down to the
        unfinished jobs (``None`` = never rotate).
    hedge_factor:
        straggler hedging threshold: once at least half of a job's walks
        completed, an outstanding walk older than
        ``hedge_factor x median(finished wall times)`` (and slower than
        half the median iteration rate, when progress is known) gets a
        second copy on another node.  ``None`` disables hedging.
    max_hedges / min_hedge_delay:
        per-job cap on hedged copies, and the floor below which no walk is
        considered a straggler regardless of the median.
    predictor / hedge_quantile:
        a live :class:`~repro.autoscale.Predictor` upgrades hedging from
        the fixed multiplier to a *quantile trigger*: every solved walk's
        wall time streams into the predictor's runtime models, and an
        outstanding walk is hedged as soon as it outlives the fitted
        ``hedge_quantile`` (default p95) for its problem family — no need
        to wait for half of *this* job to finish, because the threshold
        comes from history.  Families the predictor has no model for yet
        fall back to the ``hedge_factor`` rule (when enabled) and their
        walks warm the model for next time.
    chaos:
        optional :class:`~repro.chaos.plan.FaultPlan` consulted at the
        ``submit`` / ``dispatch`` / ``walk_result`` / ``finish`` lifecycle
        points; a firing plan crashes the coordinator there (the
        in-process ``kill -9``).
    recorder:
        telemetry recorder for dispatch/cancel events; defaults to the
        process recorder (disabled unless configured).  Cancel round-trip
        stats are collected regardless — they feed the ``stats`` frame.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        heartbeat_timeout: float = 5.0,
        check_interval: float = 0.25,
        max_redispatch: int = 2,
        journal_path: Any = None,
        journal_max_bytes: int | None = None,
        hedge_factor: float | None = None,
        max_hedges: int = 2,
        min_hedge_delay: float = 0.25,
        predictor: Any = None,
        hedge_quantile: float | None = None,
        chaos: Any = None,
        recorder: Recorder | None = None,
    ) -> None:
        if heartbeat_timeout <= 0:
            raise NetError(
                f"heartbeat_timeout must be > 0, got {heartbeat_timeout}"
            )
        if max_redispatch < 0:
            raise NetError(
                f"max_redispatch must be >= 0, got {max_redispatch}"
            )
        if hedge_factor is not None and hedge_factor <= 0:
            raise NetError(f"hedge_factor must be > 0, got {hedge_factor}")
        if max_hedges < 0:
            raise NetError(f"max_hedges must be >= 0, got {max_hedges}")
        if hedge_quantile is not None and not 0.0 < hedge_quantile < 1.0:
            raise NetError(
                f"hedge_quantile must be in (0, 1), got {hedge_quantile}"
            )
        if hedge_quantile is not None and predictor is None:
            raise NetError("hedge_quantile requires a predictor")
        self.host = host
        self.port = port
        self.heartbeat_timeout = heartbeat_timeout
        self.check_interval = check_interval
        self.max_redispatch = max_redispatch
        self.journal_path = journal_path
        self.journal_max_bytes = journal_max_bytes
        self.hedge_factor = hedge_factor
        self.max_hedges = max_hedges
        self.min_hedge_delay = min_hedge_delay
        self.predictor = predictor
        self.hedge_quantile = hedge_quantile
        self.chaos = chaos
        if chaos is not None:
            chaos.arm()

        self._server: asyncio.AbstractServer | None = None
        self._watchdog: asyncio.Task | None = None
        self._journal: JobJournal | None = None
        self.crashed = False
        self._node_ids = itertools.count()
        self._job_ids = itertools.count()
        self._nodes: dict[int, _Node] = {}
        self._jobs: dict[int, _NetJob] = {}
        self._dispatch_offset = 0  # rotates the first node across dispatches
        self._pending: list[int] = []  # job ids waiting for a first node
        self._clients: set[_Conn] = set()
        #: protocol v7: attached hot standbys tailing the journal stream
        self._replicas: set[_Conn] = set()
        #: highest job id ever issued (snapshot checkpoint high-water mark)
        self._max_job_id = -1
        #: client_key -> job_id of the still-running job with that key
        self._client_keys: dict[str, int] = {}
        #: client_key -> finished NetJobResult, for idempotent resubmission
        self._finished_by_key: OrderedDict[str, NetJobResult] = OrderedDict()
        self.recorder = recorder if recorder is not None else get_recorder()
        #: recent cancel round trips, coordinator-clock seconds (see the
        #: protocol v2 notes: sent_at is echoed back, so this is true RTT)
        self.cancel_latencies: deque[float] = deque(maxlen=_MAX_CANCEL_SAMPLES)
        self.counters = {
            "jobs_submitted": 0,
            "jobs_completed": 0,
            "jobs_solved": 0,
            "jobs_failed": 0,
            "jobs_cancelled": 0,
            "walks_dispatched": 0,
            "walk_results": 0,
            "stale_results": 0,
            "redispatches": 0,
            "nodes_joined": 0,
            "nodes_lost": 0,
            "cancels_sent": 0,
            "cancel_acks": 0,
            "hedges": 0,
            "hedges_quantile": 0,
            "recovered_jobs": 0,
            "reattached_clients": 0,
            "assigns_sent": 0,
            "assign_bytes": 0,
            "problems_shipped": 0,
            "repeat_assigns": 0,
            "repeat_assign_bytes": 0,
            "coop_jobs": 0,
            "coop_refused": 0,
            "elite_reports": 0,
            "migrations_relayed": 0,
            "migrations_lost": 0,
            "islands_lost": 0,
            "frames_dropped": 0,
            "replicas_joined": 0,
            "replica_records_streamed": 0,
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind and start serving; returns the actual (host, port)."""
        if self.journal_path is not None:
            self._recover_from_journal()
            self._journal = JobJournal(
                self.journal_path, max_bytes=self.journal_max_bytes
            )
            for job in self._jobs.values():
                # re-journal the recovered generation so a second crash
                # still starts above every assignment ever made
                self._journal.log_generation(job.job_id, job.generation)
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._watchdog = asyncio.ensure_future(self._watch_heartbeats())
        return self.address

    def _recover_from_journal(self) -> None:
        """Replay the journal into fresh, undispatched job entries."""
        entries, max_job_id = replay_journal(self.journal_path)
        if max_job_id >= 0:
            self._job_ids = itertools.count(max_job_id + 1)
            self._max_job_id = max_job_id
        now = time.monotonic()
        for job_id in sorted(entries):
            entry = entries[job_id]
            try:
                payload = unpickle_blob(decode_payload(entry))
                seeds = list(payload["seeds"])
            except Exception:
                continue  # corrupt entry: skip it, recover the rest
            if not seeds:
                continue
            coop = entry.get("coop")
            if coop is not None:
                try:
                    CoopConfig.from_wire(coop)
                except CoopError:
                    # a corrupt coop dict must not lose the job: recover
                    # it as plain independent multi-walk instead
                    coop = None
            job = _NetJob(
                job_id=job_id,
                request_id=0,
                client=None,
                problem=payload["problem"],
                config=payload.get("config"),
                seeds=seeds,
                submitted_at=now,
                trace_id=entry.get("trace_id") or "",
                client_key=entry.get("client_key") or "",
                priority=int(entry.get("priority", 0) or 0),
                coop=coop,
            )
            # strictly above every journaled assignment: pre-crash reports
            # from surviving nodes stay stale (recovery invariant 2)
            job.generation = int(entry.get("generation", 0)) + 1
            deadline = entry.get("deadline")
            if deadline is not None:
                job.deadline_at = now + float(deadline)
            self._jobs[job_id] = job
            self._pending.append(job_id)
            if job.client_key:
                self._client_keys[job.client_key] = job_id
            self.counters["recovered_jobs"] += 1

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    @property
    def node_names(self) -> list[str]:
        return sorted(n.name for n in self._nodes.values() if not n.lost)

    async def stop(self) -> None:
        """Close the server and every connection (idempotent)."""
        if self._watchdog is not None:
            self._watchdog.cancel()
            self._watchdog = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._journal is not None:
            self._journal.close()
            self._journal = None
        for node in list(self._nodes.values()):
            node.conn.abort()
        for client in list(self._clients):
            client.abort()
        for replica in list(self._replicas):
            replica.abort()
        self._nodes.clear()
        self._clients.clear()
        self._replicas.clear()

    async def crash(self) -> None:
        """Die abruptly: no cancels, no client answers, no journal fsync.

        The in-process stand-in for ``kill -9`` — every connection is
        reset, the journal fd is dropped without a final sync, and all
        in-memory job state evaporates.  Recovery must come exclusively
        from the journal (which is exactly what the chaos tests assert).
        """
        self.crashed = True
        if self._journal is not None:
            self._journal.abort()
            self._journal = None
        if self._watchdog is not None:
            self._watchdog.cancel()
            self._watchdog = None
        if self._server is not None:
            self._server.close()
            self._server = None
        for node in list(self._nodes.values()):
            node.conn.abort()
        for client in list(self._clients):
            client.abort()
        for replica in list(self._replicas):
            replica.abort()
        self._nodes.clear()
        self._clients.clear()
        self._replicas.clear()
        self._jobs.clear()
        self._pending.clear()
        self._client_keys.clear()

    async def _maybe_crash(self, point: str) -> bool:
        """Crash here if the chaos plan says so; True when we did."""
        if self.chaos is None or self.crashed:
            return self.crashed
        if not self.chaos.coordinator_crash(point):
            return False
        await self.crash()
        return True

    async def serve_forever(self) -> None:
        """Block until cancelled (the ``repro coordinator`` CLI loop)."""
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Conn(reader, writer, on_drop=self._on_frame_dropped)
        try:
            hello = await read_message(reader)
        except NetError:
            conn.abort()
            return
        if hello is None or hello.type != "hello":
            conn.abort()
            return
        peer_version = hello.get("protocol")
        if (
            not isinstance(peer_version, int)
            or isinstance(peer_version, bool)
            or not MIN_PROTOCOL_VERSION <= peer_version <= PROTOCOL_VERSION
        ):
            await conn.send(
                Message(
                    "reject",
                    {
                        "protocol": PROTOCOL_VERSION,
                        "min_protocol": MIN_PROTOCOL_VERSION,
                        "error": (
                            f"protocol version mismatch: coordinator speaks "
                            f"{MIN_PROTOCOL_VERSION}..{PROTOCOL_VERSION}, "
                            f"peer sent {peer_version!r}"
                        ),
                    },
                )
            )
            # graceful FIN, not abort(): an RST may discard the buffered
            # reject frame before the peer reads it
            await conn.drain()
            conn.closed = True
            writer.close()
            return
        role = hello.get("role")
        if role == "node":
            await self._run_node(conn, hello, peer_version)
        elif role == "client":
            await self._run_client(conn, hello, peer_version)
        elif role == "replica":
            await self._run_replica(conn, hello, peer_version)
        else:
            conn.abort()

    def _on_frame_dropped(self, frame_type: str) -> None:
        """Slow-consumer policy fired: account one discarded frame."""
        self.counters["frames_dropped"] += 1
        self.recorder.registry.counter("net.dropped_frames").inc()

    async def _run_node(
        self, conn: _Conn, hello: Message, protocol: int
    ) -> None:
        node_id = next(self._node_ids)
        node = _Node(
            node_id=node_id,
            name=hello.get("name") or f"node-{node_id}",
            capacity=int(hello.get("capacity", 1)),
            conn=conn,
            protocol=protocol,
        )
        self._nodes[node_id] = node
        self.counters["nodes_joined"] += 1
        await conn.send(
            Message(
                "welcome",
                {
                    "protocol": PROTOCOL_VERSION,
                    "negotiated": protocol,
                    "node_id": node_id,
                },
            )
        )
        await self._flush_pending()
        try:
            while True:
                message = await read_message(conn.reader)
                if message is None:
                    break
                if message.type == "heartbeat":
                    node.last_heartbeat = time.monotonic()
                    if message.get("load") is not None:
                        node.load = message["load"]
                    elif message.get("load_delta") is not None:
                        # protocol v2 delta scheme: only changed keys travel
                        node.load.update(message["load_delta"])
                    progress = message.get("progress")
                    if progress:
                        self._ingest_progress(node, progress)
                elif message.type == "walk_result":
                    node.last_heartbeat = time.monotonic()
                    await self._on_walk_result(node, message)
                elif message.type == "elite_report":
                    node.last_heartbeat = time.monotonic()
                    await self._on_elite_report(node, message)
                elif message.type == "island_stats":
                    node.last_heartbeat = time.monotonic()
                    await self._on_island_stats(node, message)
                elif message.type == "cancel_ack":
                    node.last_heartbeat = time.monotonic()
                    self._on_cancel_ack(node, message)
        except (NetError, ConnectionError, OSError):
            pass
        finally:
            await self._node_lost(node, "connection lost")

    def _ingest_progress(self, node: _Node, progress: Any) -> None:
        """Fold heartbeat progress entries into their jobs (v3 frames)."""
        now = time.monotonic()
        for entry in progress:
            if not isinstance(entry, dict):
                continue
            job = self._jobs.get(entry.get("job_id"))
            if job is None:
                continue
            walk_id = entry.get("walk_id")
            if walk_id in job.outstanding:
                job.progress[walk_id] = {
                    "iterations": int(entry.get("iterations", 0)),
                    "elapsed": float(entry.get("elapsed", 0.0)),
                    "node": node.name,
                    "at": now,
                }

    async def _run_client(
        self, conn: _Conn, hello: Message, protocol: int
    ) -> None:
        conn.resilient = bool(hello.get("reconnect", False))
        self._clients.add(conn)
        await conn.send(
            Message(
                "welcome",
                {"protocol": PROTOCOL_VERSION, "negotiated": protocol},
            )
        )
        try:
            while True:
                message = await read_message(conn.reader)
                if message is None:
                    break
                if message.type == "submit":
                    await self._on_submit(conn, message)
                elif message.type == "stats":
                    await conn.send(self._stats_message(message.get("request_id")))
        except (NetError, ConnectionError, OSError):
            pass
        finally:
            self._clients.discard(conn)
            conn.abort()
            await self._abandon_client_jobs(conn)

    # ------------------------------------------------------------------
    # replication (protocol v7 hot standby)
    # ------------------------------------------------------------------
    async def _run_replica(
        self, conn: _Conn, hello: Message, protocol: int
    ) -> None:
        """Serve one hot standby: snapshot, then tail the journal stream.

        The standby is a read-only peer — after the snapshot it only ever
        receives ``replica_record`` and ``lease`` frames; anything it
        sends (nothing, today) is ignored until EOF.
        """
        if protocol < 7:
            await conn.send(
                Message(
                    "reject",
                    {
                        "protocol": PROTOCOL_VERSION,
                        "min_protocol": 7,
                        "error": (
                            f"replica role needs protocol >= 7, "
                            f"peer negotiated {protocol}"
                        ),
                    },
                )
            )
            await conn.drain()
            conn.closed = True
            conn.writer.close()
            return
        await conn.send(
            Message(
                "welcome",
                {"protocol": PROTOCOL_VERSION, "negotiated": protocol},
            )
        )
        # register + snapshot with no await in between: a concurrent
        # submit can only queue its tee record *behind* the snapshot frame
        # (per-connection FIFO), so the standby never misses a record nor
        # sees one that predates its snapshot
        self._replicas.add(conn)
        self.counters["replicas_joined"] += 1
        snapshot = Message(
            "replica_snapshot", {"records": self._snapshot_records()}
        )
        await conn.send(snapshot)
        try:
            while True:
                message = await read_message(conn.reader)
                if message is None:
                    break
        except (NetError, ConnectionError, OSError):
            pass
        finally:
            self._replicas.discard(conn)
            conn.abort()

    def _snapshot_records(self) -> list[dict[str, Any]]:
        """Journal-style records reconstructing every live job.

        The same shape :func:`repro.net.journal.replay_journal` folds —
        a checkpoint with the job-id high-water mark (a promoted standby
        must never reuse an id a cached result may still reference), then
        one ``submit`` per live job plus its ``generation`` when above 0.
        Deadlines are re-based to the *remaining* budget so a standby
        promoted later does not grant dead jobs a second life.
        """
        now = time.monotonic()
        records: list[dict[str, Any]] = [checkpoint_record(self._max_job_id)]
        for job_id in sorted(self._jobs):
            job = self._jobs[job_id]
            deadline = None
            if job.deadline_at is not None:
                deadline = max(0.0, job.deadline_at - now)
            records.append(
                submit_record(
                    job_id,
                    client_key=job.client_key,
                    trace_id=job.trace_id,
                    n_walkers=len(job.seeds),
                    deadline=deadline,
                    payload=pickle_blob(
                        {
                            "problem": job.problem,
                            "config": job.config,
                            "seeds": job.seeds,
                        }
                    ),
                    priority=job.priority,
                    coop=job.coop,
                )
            )
            if job.generation:
                records.append(generation_record(job_id, job.generation))
        return records

    async def _replicate(self, record: dict[str, Any]) -> None:
        """Tee one journal record to every attached hot standby.

        ``replica_record`` frames are job frames — never dropped by the
        slow-consumer policy; a wedged standby backpressures the leader's
        own task instead of ballooning its memory.  Streams regardless of
        whether the leader keeps a journal file of its own.
        """
        if not self._replicas:
            return
        message = Message("replica_record", {"record": record})
        for replica in list(self._replicas):
            if replica.closed:
                self._replicas.discard(replica)
                continue
            await replica.send(message)
            self.counters["replica_records_streamed"] += 1

    # ------------------------------------------------------------------
    # submission and dispatch
    # ------------------------------------------------------------------
    async def _on_submit(self, client: _Conn, message: Message) -> None:
        if await self._maybe_crash("submit"):
            return
        payload = unpickle_blob(message.blob)
        seeds = list(payload["seeds"])
        if not seeds:
            await client.send(
                Message(
                    "error",
                    {
                        "request_id": message.get("request_id"),
                        "error": "submit carries no walk seeds",
                    },
                )
            )
            return
        client_key = message.get("client_key") or ""
        request_id = message.get("request_id", 0)
        if client_key:
            # idempotent resubmission: the same key either replays the
            # finished result or re-attaches to the still-running job —
            # it never starts a second copy of the work
            cached = self._finished_by_key.get(client_key)
            if cached is not None:
                await client.send(
                    Message(
                        "job_accepted",
                        {"request_id": request_id, "job_id": cached.job_id},
                    )
                )
                await client.send(job_result_to_message(cached, request_id))
                return
            active_id = self._client_keys.get(client_key)
            if active_id is not None and active_id in self._jobs:
                job = self._jobs[active_id]
                job.client = client
                job.request_id = request_id
                self.counters["reattached_clients"] += 1
                await client.send(
                    Message(
                        "job_accepted",
                        {"request_id": request_id, "job_id": active_id},
                    )
                )
                return
        coop = message.get("coop")
        if coop is not None:
            # protocol v6: validate the coop wire dict and refuse the job
            # outright while any live node negotiated an older protocol —
            # a cooperative job degraded to "no migration on half the
            # cluster" would be silently wrong, so fail loudly instead
            try:
                coop_config = CoopConfig.from_wire(coop)
            except CoopError as err:
                await client.send(
                    Message(
                        "error",
                        {
                            "request_id": request_id,
                            "error": f"invalid coop config: {err}",
                        },
                    )
                )
                return
            if coop_config.seed is None:
                await client.send(
                    Message(
                        "error",
                        {
                            "request_id": request_id,
                            "error": (
                                "cooperative submit carries no coop seed "
                                "(the client derives it from the job seed)"
                            ),
                        },
                    )
                )
                return
            stale = sorted(
                node.name
                for node in self._live_nodes()
                if node.protocol < 6
            )
            if stale:
                self.counters["coop_refused"] += 1
                await client.send(
                    Message(
                        "error",
                        {
                            "request_id": request_id,
                            "error": (
                                "cooperative jobs need protocol >= 6 on "
                                "every node; these nodes negotiated an "
                                "older version: " + ", ".join(stale)
                            ),
                        },
                    )
                )
                return
            coop = coop_config.to_wire()
            self.counters["coop_jobs"] += 1
        job_id = next(self._job_ids)
        self._max_job_id = max(self._max_job_id, job_id)
        job = _NetJob(
            job_id=job_id,
            request_id=request_id,
            client=client,
            problem=payload["problem"],
            config=payload.get("config"),
            seeds=seeds,
            submitted_at=time.monotonic(),
            trace_id=message.get("trace_id") or "",
            client_key=client_key,
            priority=int(message.get("priority", 0) or 0),
            coop=coop,
        )
        deadline = message.get("deadline")
        if deadline is not None:
            job.deadline_at = job.submitted_at + float(deadline)
        self._jobs[job_id] = job
        if client_key:
            self._client_keys[client_key] = job_id
        if self._journal is not None:
            # write-ahead: the job is durable before the client hears
            # "accepted" and before any node sees a slice of it
            self._journal.log_submit(
                job_id,
                client_key=client_key,
                trace_id=job.trace_id,
                n_walkers=len(seeds),
                deadline=deadline,
                payload=message.blob or b"",
                priority=job.priority,
                coop=coop,
            )
        await self._replicate(
            submit_record(
                job_id,
                client_key=client_key,
                trace_id=job.trace_id,
                n_walkers=len(seeds),
                deadline=deadline,
                payload=message.blob or b"",
                priority=job.priority,
                coop=coop,
            )
        )
        self.counters["jobs_submitted"] += 1
        if self.recorder.enabled:
            self.recorder.emit(
                JobSubmit(
                    trace_id=job.trace_id,
                    job_id=job_id,
                    n_walkers=len(seeds),
                    problem=getattr(
                        job.problem, "name", type(job.problem).__name__
                    ),
                )
            )
        await client.send(
            Message(
                "job_accepted",
                {"request_id": job.request_id, "job_id": job_id},
            )
        )
        live = self._live_nodes()
        if not live:
            self._pending.append(job_id)
            return
        await self._dispatch(job, sorted(job.outstanding), live)

    def _live_nodes(self) -> list[_Node]:
        return [
            n for n in self._nodes.values() if not n.lost and not n.conn.closed
        ]

    async def _flush_pending(self) -> None:
        """Dispatch jobs that were waiting for a first node to join."""
        if not self._pending:
            return
        live = self._live_nodes()
        if not live:
            return
        pending, self._pending = self._pending, []
        # protocol v5: drain the backlog highest-priority first; equal
        # priorities keep their submission order (job ids are monotonic),
        # so an all-default backlog stays plain FIFO
        pending.sort(
            key=lambda job_id: (
                -(self._jobs[job_id].priority if job_id in self._jobs else 0),
                job_id,
            )
        )
        for job_id in pending:
            job = self._jobs.get(job_id)
            if job is not None:
                await self._dispatch(job, sorted(job.outstanding), live)

    async def _dispatch(
        self, job: _NetJob, walk_ids: list[int], nodes: list[_Node]
    ) -> None:
        """Partition ``walk_ids`` round-robin over ``nodes`` and ship slices.

        The starting node rotates across dispatch calls so a stream of
        jobs smaller than the cluster (e.g. the single-walk jobs of
        ``collect_samples(cluster=...)``) spreads over every node instead
        of piling onto the first one.  Rotation moves only *where* a walk
        runs; its seed — and hence trajectory — travels with the walk id.
        """
        if await self._maybe_crash("dispatch"):
            return
        if job.coop_state is not None:
            # cooperative jobs only run on nodes that speak the v6 island
            # frames; the submit-time gate already refused mixed clusters,
            # but nodes may have joined (or downgraded peers reconnected)
            # since, so the dispatch path re-filters defensively
            nodes = [n for n in nodes if n.protocol >= 6]
            if not nodes:
                job.error = (
                    f"cooperative job {job.job_id} needs protocol >= 6 "
                    f"nodes and none of the live nodes qualify"
                )
                job.degraded = bool(job.outcomes)
                await self._finish(job, JobStatus.FAILED)
                return
        start = self._dispatch_offset % len(nodes)
        self._dispatch_offset += 1
        nodes = nodes[start:] + nodes[:start]
        slices = partition_walks(len(walk_ids), len(nodes))
        now = time.monotonic()
        for node, index_slice in zip(nodes, slices):
            slice_ids = [walk_ids[i] for i in index_slice]
            if not slice_ids:
                continue
            island_id: Optional[int] = None
            if job.coop_state is not None:
                # one island per node-slice; ids are never reused, so a
                # replacement island after a re-dispatch is a *new*
                # identity and stale elite reports stay unambiguous
                state = job.coop_state
                island_id = state.next_island
                state.next_island += 1
                state.islands[island_id] = {
                    "node": node.node_id,
                    "walks": set(slice_ids),
                    "generation": job.generation,
                }
            node.assigned.setdefault(job.job_id, set()).update(slice_ids)
            for walk_id in slice_ids:
                job.dispatched_at[walk_id] = now
            self.counters["walks_dispatched"] += len(slice_ids)
            if self.recorder.enabled:
                self.recorder.emit(
                    AssignEvent(
                        trace_id=job.trace_id,
                        job_id=job.job_id,
                        node=node.name,
                        walk_ids=tuple(slice_ids),
                        generation=job.generation,
                    )
                )
                for walk_id in slice_ids:
                    self.recorder.emit(
                        JobDispatch(
                            trace_id=job.trace_id,
                            job_id=job.job_id,
                            walk_id=walk_id,
                            node=node.name,
                        )
                    )
            fields: dict[str, Any] = {
                "job_id": job.job_id,
                "generation": job.generation,
                "walk_ids": slice_ids,
                "trace_id": job.trace_id,
                "priority": job.priority,
            }
            if island_id is not None:
                fields["coop"] = job.coop
                fields["island"] = island_id
            try:
                await node.conn.send(
                    Message(
                        "assign",
                        fields,
                        blob=self._assign_blob(job, node, slice_ids),
                    )
                )
            except (ConnectionError, OSError):
                # the node died mid-assign; the reader task notices the
                # same broken pipe and re-dispatch happens there
                node.conn.abort()

    def _assign_blob(
        self, job: _NetJob, node: _Node, slice_ids: list[int]
    ) -> bytes:
        """Build one assign payload, shipping the problem at most once.

        Protocol v4: the payload always names the problem by content
        digest; the pickled problem itself rides along only the first time
        this connection sees that digest (re-dispatches, hedges and later
        jobs over the same problem are then near-empty frames).  The known
        set lives on the connection, so a reconnected node transparently
        receives the problem again.
        """
        digest = job.problem_digest
        payload: dict[str, Any] = {
            "problem_digest": digest,
            "config": job.config,
            "seeds": {walk_id: job.seeds[walk_id] for walk_id in slice_ids},
        }
        first_ship = digest not in node.known_problems
        if first_ship:
            payload["problem"] = job.problem
            node.known_problems.add(digest)
            self.counters["problems_shipped"] += 1
        blob = pickle_blob(payload)
        self.counters["assigns_sent"] += 1
        self.counters["assign_bytes"] += len(blob)
        if not first_ship:
            self.counters["repeat_assigns"] += 1
            self.counters["repeat_assign_bytes"] += len(blob)
        return blob

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    async def _on_walk_result(self, node: _Node, message: Message) -> None:
        if await self._maybe_crash("walk_result"):
            return
        self.counters["walk_results"] += 1
        job = self._jobs.get(message["job_id"])
        walk_id = message["walk_id"]
        if job is None or walk_id not in job.outstanding:
            # late loser after a cancel, a zombie assignment generation, or
            # the losing copy of a hedged walk: the outstanding-membership
            # check means stale reports are simply dropped here, never
            # double-counted
            self.counters["stale_results"] += 1
            return
        # a hedged walk may be assigned on several nodes; clear them all
        for holder in self._nodes.values():
            holder.assigned.get(job.job_id, set()).discard(walk_id)
        job.outstanding.discard(walk_id)
        job.progress.pop(walk_id, None)
        job.nodes[walk_id] = node.name
        if message.get("error") is not None:
            # the walk failed remotely even after the node's local retries
            job.error = message["error"]
            if not job.outstanding and job.winner is None:
                await self._finish(job, JobStatus.FAILED)
            return
        outcome = outcome_from_message(message)
        job.outcomes[walk_id] = outcome
        job.completed_walls.append(outcome.wall_time)
        if self.predictor is not None and outcome.solved:
            # every solved walk teaches the runtime models; unsolved walks
            # are censored observations (cancelled losers, iteration caps)
            # and would bias the fit, so they stay out
            self._observe_walk(job, outcome.wall_time)
        if outcome.solved and job.winner is None:
            job.winner = outcome
            job.winner_node = node.name
            if self.recorder.enabled:
                self.recorder.emit(
                    FirstSolve(
                        trace_id=job.trace_id,
                        job_id=job.job_id,
                        walk_id=walk_id,
                        node=node.name,
                        wall_time=outcome.wall_time,
                    )
                )
            await self._broadcast_cancel(job)
            await self._finish(job, JobStatus.SOLVED)
        elif not job.outstanding:
            await self._finish(
                job, JobStatus.FAILED if job.error else JobStatus.UNSOLVED
            )

    def _observe_walk(self, job: _NetJob, wall_time: float) -> None:
        """Feed one solved walk's wall time into the predictor's models."""
        family = getattr(job.problem, "family", None)
        if not family:
            return
        size = getattr(job.problem, "size", None)
        try:
            self.predictor.observe(
                family,
                wall_time,
                size=int(size) if size is not None else None,
            )
        except (TypeError, ValueError):
            pass  # a malformed problem shape must never kill the reader

    # ------------------------------------------------------------------
    # cooperative search: elite migration relay (protocol v6)
    # ------------------------------------------------------------------
    async def _on_elite_report(self, node: _Node, message: Message) -> None:
        """Buffer one island's elite for the barrier relay."""
        self.counters["elite_reports"] += 1
        job = self._jobs.get(message.get("job_id"))
        if job is None or job.coop_state is None:
            self.counters["stale_results"] += 1
            return
        state = job.coop_state
        island = message.get("island")
        if (
            island not in state.islands
            or island in state.done
            or island in state.lost
            or message.blob is None
        ):
            # an island id from a pre-redispatch assignment (ids are never
            # reused) or a malformed frame: drop, never mis-route
            self.counters["stale_results"] += 1
            return
        round_index = int(message.get("round_index", 0))
        cost = float(message["cost"])
        state.stats["elite_reports"] += 1
        if cost < state.best_cost:
            state.best_cost = cost
        # at most one unconsumed report per island: a newer report simply
        # replaces one that never completed a barrier (its island timed
        # out locally and moved on)
        state.pending[island] = (round_index, cost, message.blob)
        if self.recorder.enabled:
            self.recorder.emit(
                EliteReport(
                    trace_id=job.trace_id,
                    job_id=job.job_id,
                    island=island,
                    round_index=round_index,
                    cost=cost,
                    node=node.name,
                )
            )
        await self._relay_rounds(job)

    async def _relay_rounds(self, job: _NetJob) -> None:
        """Relay every migration round whose barrier is now complete.

        Called whenever the barrier inputs change: a report arrived, an
        island finished (``island_stats``), or a hosting node died — the
        last two *shrink* the expected set, which can complete a round
        that was waiting on the shrunk-away island.
        """
        state = job.coop_state
        if state is None:
            return
        # reports from islands that died or finished while buffered can
        # never be pushed back — drop them and account the loss
        for island in list(state.pending):
            if island in state.done or island in state.lost:
                del state.pending[island]
                state.stats["rounds_dropped"] += 1
                self.counters["migrations_lost"] += 1
        active = state.active_islands()
        if not active or not active <= set(state.pending):
            return
        reports = {island: state.pending.pop(island) for island in active}
        await self._relay_round(job, reports)

    async def _relay_round(
        self, job: _NetJob, reports: dict[int, tuple[int, float, bytes]]
    ) -> None:
        """Route one complete round's elites and push the migrant batches.

        Everything here is a pure function of the (sorted) reports and the
        relay counter, so two runs with the same seed and topology produce
        bit-identical migration logs — the determinism the trace-diff test
        asserts.  The coordinator never unpickles a configuration: the raw
        report blobs are forwarded verbatim inside the push blob.
        """
        state = job.coop_state
        assert state is not None
        relay_index = state.stats["rounds_relayed"] + 1
        participants = sorted(reports)
        best_island = min(participants, key=lambda i: (reports[i][1], i))
        try:
            routes = migration_routes(
                state.config.topology,
                participants,
                round_index=relay_index,
                group_size=state.config.group_size,
                best_island=best_island,
            )
        except CoopError:  # pragma: no cover - defensive: topologies are
            state.stats["rounds_dropped"] += 1  # validated at submit
            return
        state.stats["rounds_relayed"] += 1
        for target in participants:
            sources = routes.get(target, [])
            entry = state.islands.get(target)
            node = self._nodes.get(entry["node"]) if entry else None
            if node is None or node.lost or node.conn.closed:
                state.stats["pushes_failed"] += 1
                self.counters["migrations_lost"] += len(sources)
                continue
            push = Message(
                "elite_push",
                {
                    "job_id": job.job_id,
                    "island": target,
                    # echo the *target's own* reported round index so the
                    # island's inbox matches it against its current round
                    "round_index": reports[target][0],
                    "migrants": [
                        {"from": source, "cost": reports[source][1]}
                        for source in sources
                    ],
                },
                blob=(
                    pickle_blob([reports[source][2] for source in sources])
                    if sources
                    else None
                ),
            )
            try:
                await node.conn.send(push)
            except (ConnectionError, OSError):
                node.conn.abort()
                state.stats["pushes_failed"] += 1
                self.counters["migrations_lost"] += len(sources)
                continue
            state.stats["migrations_relayed"] += len(sources)
            self.counters["migrations_relayed"] += len(sources)
            if self.recorder.enabled:
                for source in sources:
                    self.recorder.emit(
                        Migration(
                            trace_id=job.trace_id,
                            job_id=job.job_id,
                            round_index=relay_index,
                            from_island=source,
                            to_island=target,
                            cost=reports[source][1],
                            digest=hashlib.sha256(
                                reports[source][2]
                            ).hexdigest()[:12],
                        )
                    )

    async def _on_island_stats(self, node: _Node, message: Message) -> None:
        """An island finished: fold its counters, shrink the barrier."""
        job = self._jobs.get(message.get("job_id"))
        if job is None or job.coop_state is None:
            return
        state = job.coop_state
        island = message.get("island")
        if (
            island not in state.islands
            or island in state.done
            or island in state.lost
        ):
            return
        state.done.add(island)
        state.stats["island_reports"] += 1
        state.stats["island_adoptions"] += int(message.get("adoptions", 0))
        state.stats["island_migrations_in"] += int(
            message.get("migrations_in", 0)
        )
        lost = int(message.get("migrations_lost", 0))
        state.stats["island_migrations_lost"] += lost
        self.counters["migrations_lost"] += lost
        # the expected set shrank: a round waiting on this island may now
        # be complete
        await self._relay_rounds(job)

    async def _broadcast_cancel(self, job: _NetJob) -> None:
        """Tell every node holding a slice of ``job`` to stop its walks.

        The frame carries the coordinator's monotonic ``sent_at``; nodes
        echo it in their ``cancel_ack``, so :meth:`_on_cancel_ack` measures
        the propagation round trip on one clock, free of host skew.
        """
        cancelled_nodes: list[str] = []
        for node in self._live_nodes():
            if node.assigned.pop(job.job_id, None):
                cancel = Message(
                    "cancel",
                    {
                        "job_id": job.job_id,
                        "generation": job.generation,
                        "sent_at": time.monotonic(),
                        "trace_id": job.trace_id,
                    },
                )
                try:
                    await node.conn.send(cancel)
                except (ConnectionError, OSError):
                    node.conn.abort()
                    continue
                cancelled_nodes.append(node.name)
                self.counters["cancels_sent"] += 1
        if cancelled_nodes and self.recorder.enabled:
            self.recorder.emit(
                CancelBroadcast(
                    trace_id=job.trace_id,
                    job_id=job.job_id,
                    nodes=tuple(cancelled_nodes),
                )
            )

    def _on_cancel_ack(self, node: _Node, message: Message) -> None:
        """A node confirmed a cancel; ``sent_at`` round-tripped verbatim."""
        self.counters["cancel_acks"] += 1
        sent_at = message.get("sent_at")
        latency = (
            max(0.0, time.monotonic() - sent_at)
            if isinstance(sent_at, (int, float))
            else 0.0
        )
        self.cancel_latencies.append(latency)
        recorder = self.recorder
        if recorder.enabled:
            recorder.registry.histogram("net.cancel_latency").observe(latency)
            job_id = message.get("job_id", -1)
            job = self._jobs.get(job_id)
            recorder.emit(
                CancelAck(
                    # the job is usually already finished when acks arrive;
                    # recover the trace id from the frame in that case
                    trace_id=(
                        job.trace_id
                        if job is not None
                        else message.get("trace_id") or ""
                    ),
                    job_id=job_id,
                    node=node.name,
                    latency=latency,
                )
            )

    async def _finish(self, job: _NetJob, status: JobStatus) -> None:
        if await self._maybe_crash("finish"):
            return
        if self._jobs.pop(job.job_id, None) is None:
            return  # already finished through another path
        # idempotent: stops the losing copies of hedged walks (and any
        # slice the solved-path broadcast already handled is a no-op)
        await self._broadcast_cancel(job)
        if self._journal is not None:
            # journal the terminal state *before* the client hears it
            # (recovery invariant 4)
            self._journal.log_finish(job.job_id, status.value)
        await self._replicate(finish_record(job.job_id, status.value))
        if job.client_key:
            self._client_keys.pop(job.client_key, None)
        self.counters["jobs_completed"] += 1
        if status is JobStatus.SOLVED:
            self.counters["jobs_solved"] += 1
        elif status is JobStatus.FAILED:
            self.counters["jobs_failed"] += 1
        elif status is JobStatus.CANCELLED:
            self.counters["jobs_cancelled"] += 1
        wall_time = time.monotonic() - job.submitted_at
        if self.recorder.enabled:
            self.recorder.emit(
                JobFinish(
                    trace_id=job.trace_id,
                    job_id=job.job_id,
                    status=status.value,
                    latency=wall_time,
                )
            )
            self.recorder.emit_span(
                "coordinator.job",
                start=time.time() - wall_time,
                duration=wall_time,
                trace_id=job.trace_id,
                job_id=job.job_id,
                status=status.value,
            )
        coop_summary: Optional[dict] = None
        if job.coop_state is not None:
            state = job.coop_state
            stats = state.stats
            coop_summary = {
                "topology": state.config.topology,
                "islands": state.next_island,
                "islands_lost": len(state.lost),
                "elite_reports": stats["elite_reports"],
                "rounds_relayed": stats["rounds_relayed"],
                "rounds_dropped": stats["rounds_dropped"],
                "migrations_relayed": stats["migrations_relayed"],
                # everything cooperation promised but never delivered:
                # island-side push timeouts plus relay-side losses
                "migrations_lost": (
                    stats["island_migrations_lost"]
                    + stats["rounds_dropped"]
                    + stats["pushes_failed"]
                ),
                "adoptions": stats["island_adoptions"],
                "migrations_in": stats["island_migrations_in"],
                "best_cost": (
                    state.best_cost if math.isfinite(state.best_cost) else None
                ),
            }
        result = NetJobResult(
            job_id=job.job_id,
            status=status,
            n_walkers=len(job.seeds),
            walks=[job.outcomes[k] for k in sorted(job.outcomes)],
            winner=job.winner,
            winner_node=job.winner_node,
            nodes=dict(job.nodes),
            error=job.error,
            redispatches=job.redispatches,
            wall_time=wall_time,
            degraded=job.degraded,
            coop=coop_summary,
        )
        if job.client_key:
            # keep the result around so a resubmission of the same key
            # (reconnected client, post-recovery replay) gets this exact
            # answer instead of a second run
            self._finished_by_key[job.client_key] = result
            while len(self._finished_by_key) > _MAX_FINISHED_CACHE:
                self._finished_by_key.popitem(last=False)
        if job.client is not None and not job.client.closed:
            try:
                await job.client.send(
                    job_result_to_message(result, job.request_id)
                )
            except (ConnectionError, OSError):
                job.client.abort()

    async def _abandon_client_jobs(self, client: _Conn) -> None:
        """A disconnected client's jobs are cancelled cluster-wide —
        unless the client declared itself resilient (hello
        ``reconnect=True``), in which case its jobs keep running detached
        and the client re-attaches by resubmitting its ``client_key``."""
        for job in [j for j in self._jobs.values() if j.client is client]:
            if client.resilient:
                job.client = None
                continue
            await self._broadcast_cancel(job)
            await self._finish(job, JobStatus.CANCELLED)

    # ------------------------------------------------------------------
    # node failure
    # ------------------------------------------------------------------
    async def _watch_heartbeats(self) -> None:
        while True:
            await asyncio.sleep(self.check_interval)
            now = time.monotonic()
            for node in list(self._nodes.values()):
                if node.lost:
                    continue
                if now - node.last_heartbeat > self.heartbeat_timeout:
                    node.conn.abort()
                    await self._node_lost(node, "heartbeat timeout")
            await self._broadcast_lease(now)
            await self._check_deadlines(now)
            if self.hedge_factor is not None or self.hedge_quantile is not None:
                await self._check_stragglers(now)

    async def _broadcast_lease(self, now: float) -> None:
        """Renew the leader lease on every attached standby (v7).

        Rides the heartbeat watchdog tick, so a leader whose event loop
        wedges stops renewing exactly like one whose process died — both
        trip the standby's ``lease_timeout``.  Lease frames are droppable
        under the slow-consumer policy: a standby too stalled to drain
        them *should* be treated as gone.

        v7 node agents get the same frames: their connections can outlive
        a dead leader (forked workers keep the socket's fd open, so no FIN
        is ever delivered), and lease silence is what triggers re-homing.
        """
        lease = Message(
            "lease",
            {
                "sent_at": now,
                "jobs_active": len(self._jobs),
                "jobs_pending": len(self._pending),
            },
        )
        for replica in list(self._replicas):
            if not replica.closed:
                await replica.send(lease)
        for node in list(self._nodes.values()):
            if node.protocol >= 7 and not node.lost and not node.conn.closed:
                await node.conn.send(lease)

    async def _check_deadlines(self, now: float) -> None:
        """Expire overdue jobs with best-so-far results (degradation)."""
        for job in list(self._jobs.values()):
            if job.deadline_at is None or now < job.deadline_at:
                continue
            job.degraded = bool(job.outcomes)
            job.error = job.error or (
                f"deadline expired with {len(job.outstanding)} of "
                f"{len(job.seeds)} walks unfinished"
            )
            await self._finish(job, JobStatus.TIMED_OUT)

    # ------------------------------------------------------------------
    # straggler hedging
    # ------------------------------------------------------------------
    def _quantile_threshold(self, job: _NetJob) -> Optional[float]:
        """Predictor-backed straggler threshold for ``job``'s family.

        The fitted ``hedge_quantile`` runtime (e.g. p95) of the problem
        family, learned from *previous* walks cluster-wide — available
        from the first walk of a job, unlike the median rule which needs
        half of this job to finish first.  ``None`` when no model exists.
        """
        if self.predictor is None or self.hedge_quantile is None:
            return None
        family = getattr(job.problem, "family", None)
        if not family:
            return None
        size = getattr(job.problem, "size", None)
        try:
            delay = self.predictor.hedge_delay(
                family,
                size=int(size) if size is not None else None,
                quantile=self.hedge_quantile,
            )
        except (TypeError, ValueError):
            return None
        if delay is None:
            return None
        return max(float(delay), self.min_hedge_delay)

    def _median_threshold(self, job: _NetJob) -> Optional[float]:
        """The fixed-multiplier fallback: ``hedge_factor x median`` of this
        job's finished walls, armed only once half the job completed."""
        if self.hedge_factor is None:
            return None
        total = len(job.seeds)
        completed = total - len(job.outstanding)
        if not job.completed_walls or completed * 2 < total:
            return None  # too early to call anything a straggler
        walls = sorted(job.completed_walls)
        median_wall = walls[len(walls) // 2]
        return max(self.hedge_factor * median_wall, self.min_hedge_delay)

    async def _check_stragglers(self, now: float) -> None:
        """Hedge outstanding straggler walks (see ctor).

        Trigger ladder per job: the predictor's quantile threshold when a
        runtime model exists, else the median-multiplier rule.  The
        quantile path needs no within-job completions and no progress
        heuristics — history already says what "too long" means; the
        median path keeps its old-and-slow double check.
        """
        for job in list(self._jobs.values()):
            if job.coop_state is not None:
                # a hedged duplicate island would double-report into the
                # migration barrier; cooperative jobs are never hedged
                continue
            quantile_threshold = self._quantile_threshold(job)
            median_threshold = (
                self._median_threshold(job)
                if quantile_threshold is None
                else None
            )
            if quantile_threshold is None and median_threshold is None:
                continue
            for walk_id in sorted(job.outstanding):
                if job.hedge_count >= self.max_hedges:
                    break
                if job.hedged.get(walk_id, 0) >= 1:
                    continue  # one hedged copy per walk is the cap
                started = job.dispatched_at.get(walk_id)
                if started is None:
                    continue
                elapsed = now - started
                if quantile_threshold is not None:
                    if elapsed > quantile_threshold:
                        await self._hedge(
                            job,
                            walk_id,
                            elapsed,
                            trigger="quantile",
                            threshold=quantile_threshold,
                        )
                elif elapsed > median_threshold and self._is_slow(
                    job, walk_id
                ):
                    await self._hedge(
                        job,
                        walk_id,
                        elapsed,
                        trigger="median_factor",
                        threshold=median_threshold,
                    )

    def _is_slow(self, job: _NetJob, walk_id: int) -> bool:
        """Slow = no progress report, or under half the median iteration
        rate of this job's finished walks."""
        entry = job.progress.get(walk_id)
        if entry is None:
            return True
        rates = [
            o.iterations / max(o.wall_time, 1e-9)
            for o in job.outcomes.values()
        ]
        if not rates:
            return True
        rates.sort()
        median_rate = rates[len(rates) // 2]
        elapsed = max(float(entry.get("elapsed", 0.0)), 1e-9)
        rate = float(entry.get("iterations", 0)) / elapsed
        return rate < 0.5 * median_rate

    async def _hedge(
        self,
        job: _NetJob,
        walk_id: int,
        elapsed: float,
        *,
        trigger: str = "",
        threshold: float = 0.0,
    ) -> None:
        """Dispatch a duplicate of ``walk_id`` to another node.

        Same seed, same generation: whichever copy reports first wins the
        walk (outstanding-membership drops the loser as stale), so hedging
        never changes *what* is computed, only how long the tail waits.
        ``trigger``/``threshold`` record *why* it fired for `repro trace`.
        """
        slow_node = None
        for node in self._live_nodes():
            if walk_id in node.assigned.get(job.job_id, set()):
                slow_node = node
                break
        candidates = [n for n in self._live_nodes() if n is not slow_node]
        if not candidates:
            return
        target = min(
            candidates,
            key=lambda n: sum(len(v) for v in n.assigned.values()),
        )
        job.hedged[walk_id] = job.hedged.get(walk_id, 0) + 1
        job.hedge_count += 1
        job.dispatched_at[walk_id] = time.monotonic()
        target.assigned.setdefault(job.job_id, set()).add(walk_id)
        self.counters["hedges"] += 1
        if trigger == "quantile":
            self.counters["hedges_quantile"] += 1
        self.counters["walks_dispatched"] += 1
        if self.recorder.enabled:
            self.recorder.emit(
                HedgeDispatch(
                    trace_id=job.trace_id,
                    job_id=job.job_id,
                    walk_id=walk_id,
                    node=target.name,
                    from_node=slow_node.name if slow_node is not None else "",
                    elapsed=elapsed,
                    trigger=trigger,
                    threshold=threshold,
                )
            )
        try:
            await target.conn.send(
                Message(
                    "assign",
                    {
                        "job_id": job.job_id,
                        "generation": job.generation,
                        "walk_ids": [walk_id],
                        "trace_id": job.trace_id,
                        "priority": job.priority,
                    },
                    blob=self._assign_blob(job, target, [walk_id]),
                )
            )
        except (ConnectionError, OSError):
            target.conn.abort()

    async def _node_lost(self, node: _Node, reason: str) -> None:
        if node.lost:
            return
        node.lost = True
        node.conn.abort()
        self._nodes.pop(node.node_id, None)
        self.counters["nodes_lost"] += 1
        orphaned = node.assigned
        node.assigned = {}
        for job_id, walk_ids in orphaned.items():
            job = self._jobs.get(job_id)
            if job is None:
                continue
            if job.coop_state is not None:
                # islands hosted on the dead node are gone; their walks
                # come back below as *new* islands (fresh ids), and any
                # round that was waiting on them may now be complete
                state = job.coop_state
                for island, entry in state.islands.items():
                    if (
                        entry["node"] == node.node_id
                        and island not in state.done
                        and island not in state.lost
                    ):
                        state.lost.add(island)
                        self.counters["islands_lost"] += 1
                await self._relay_rounds(job)
            unfinished = sorted(walk_ids & job.outstanding)
            if unfinished:
                await self._redispatch(job, unfinished, node, reason)

    async def _redispatch(
        self, job: _NetJob, walk_ids: list[int], dead: _Node, reason: str
    ) -> None:
        """Move a dead node's unfinished slice to the survivors (capped)."""
        if job.redispatches >= self.max_redispatch:
            job.error = (
                f"node {dead.name} died ({reason}) and job {job.job_id} "
                f"exhausted its {self.max_redispatch} re-dispatch budget"
            )
            job.degraded = bool(job.outcomes)
            await self._broadcast_cancel(job)
            await self._finish(job, JobStatus.FAILED)
            return
        live = self._live_nodes()
        if not live:
            job.error = (
                f"node {dead.name} died ({reason}) with walks "
                f"{walk_ids} in flight and no surviving nodes"
            )
            job.degraded = bool(job.outcomes)
            await self._finish(job, JobStatus.FAILED)
            return
        job.redispatches += 1
        # bump the job generation: any report the "dead" node still manages
        # to emit for the old assignment is dropped as stale on arrival
        job.generation += 1
        self.counters["redispatches"] += 1
        if self._journal is not None:
            self._journal.log_generation(job.job_id, job.generation)
        await self._replicate(generation_record(job.job_id, job.generation))
        await self._dispatch(job, walk_ids, live)

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------
    def _stats_message(self, request_id: Any = None) -> Message:
        now = time.monotonic()
        samples = list(self.cancel_latencies)
        cancel_latency = {
            "count": len(samples),
            "mean": sum(samples) / len(samples) if samples else 0.0,
            "min": min(samples) if samples else 0.0,
            "max": max(samples) if samples else 0.0,
        }
        return Message(
            "stats",
            {
                "request_id": request_id,
                "coordinator": {
                    **self.counters,
                    "jobs_active": len(self._jobs),
                    "jobs_pending": len(self._pending),
                    "nodes_connected": len(self._live_nodes()),
                    "replicas_connected": sum(
                        1 for r in self._replicas if not r.closed
                    ),
                    "cancel_latency": cancel_latency,
                },
                "nodes": [
                    {
                        "name": node.name,
                        "capacity": node.capacity,
                        "heartbeat_age": now - node.last_heartbeat,
                        "assigned_walks": sum(
                            len(v) for v in node.assigned.values()
                        ),
                        "load": node.load,
                    }
                    for node in self._live_nodes()
                ],
            },
        )
