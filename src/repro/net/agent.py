"""The node agent: one cluster member's execution engine.

A :class:`NodeAgent` dials out to the coordinator, introduces itself with a
versioned handshake, and then turns ``assign`` frames into real work on its
local warm :class:`~repro.service.SolverService` (the PR 2 persistent
worker pool — workers are spawned once per agent, problems are shipped to
each worker once per job, and walks start warm).  Each assigned walk
becomes one single-walk local job carrying its exact
:class:`~numpy.random.SeedSequence`, so a walk executes the identical
trajectory it would have executed on any other node or on a single host.

Back-traffic is two streams multiplexed on the one connection:

- ``walk_result`` frames as individual walks finish (streamed, not
  batched — the coordinator's first-finisher-wins decision needs the
  earliest solve as soon as it exists), and
- periodic ``heartbeat`` frames carrying the local service's
  :meth:`~repro.service.metrics.MetricsSnapshot.to_json` load snapshot,
  which double as the liveness signal for the coordinator's failure
  detector.

Cancellation: a ``cancel(job_id, generation)`` frame cancels every local
walk of that job with assignment generation ``<= generation`` (the
job-generation token at cluster scope); results of walks that were
cancelled locally are *not* reported — and should one slip out anyway the
coordinator discards it as stale.  Crash handling is layered: a walk that
crashes locally is retried by the local service's
:class:`~repro.service.jobs.RetryPolicy`; only when that budget is spent
does the agent report the walk as failed, and only the *node* dying moves
work to another machine (the coordinator's re-dispatch).
"""

from __future__ import annotations

import asyncio
import queue
import random
import threading
import time
from typing import Any, Optional

import numpy as np

from repro.coop import CoopConfig, IslandRunner, MigrantBatch
from repro.core.config import AdaptiveSearchConfig
from repro.errors import NetError
from repro.net.protocol import (
    PROTOCOL_VERSION,
    Message,
    pickle_blob,
    read_message,
    unpickle_blob,
    write_message,
)
from repro.net.results import outcome_to_message
from repro.service.jobs import Job, JobStatus
from repro.service.scheduler import SolverService
from repro.telemetry.events import TraceContext
from repro.telemetry.recorder import Recorder

__all__ = ["NodeAgent"]


class _Slice:
    """One assignment of walk ids for one (job, generation)."""

    def __init__(self, job_id: int, generation: int) -> None:
        self.job_id = job_id
        self.generation = generation
        self.handles: dict[int, Any] = {}  # walk_id -> local JobHandle
        self.reported: set[int] = set()
        self.cancelled = False


class _Island:
    """One hosted island (protocol v6 cooperative assignment).

    Unlike independent walks — which become single-walk jobs on the warm
    worker pool — an island is one dedicated thread driving resumable
    sessions in synchronized rounds: the round barrier needs all of the
    island's walkers advancing together, which the pool's independent
    completion model cannot express.
    """

    def __init__(
        self, job_id: int, island: int, generation: int, walk_ids: list[int]
    ) -> None:
        self.job_id = job_id
        self.island = island
        self.generation = generation
        self.walk_ids = walk_ids
        self.inbox: "queue.Queue[MigrantBatch]" = queue.Queue()
        self.cancel = threading.Event()
        self.thread: threading.Thread | None = None
        self.outcome: Any = None
        self.error: str | None = None
        self.reported = False


class NodeAgent:
    """Connects a warm worker pool to a coordinator.

    Parameters
    ----------
    host / port:
        coordinator address to dial.  ``host`` may instead be an ordered
        address list (``"a:1,b:2"`` or a sequence of addresses, with
        ``port`` omitted): the first entry is the preferred (leader)
        coordinator, later entries are hot standbys tried in order.
    reconnect:
        re-home instead of dying when the coordinator connection drops:
        local work is discarded (the promoted coordinator re-dispatches
        every unfinished walk under a bumped generation anyway), the
        ordered address list is redialed with decorrelated-jitter
        backoff, and the agent rejoins as a fresh node.  Off by default —
        a plain agent still tears down on disconnect.
    reconnect_backoff / reconnect_max_delay / max_reconnect_attempts:
        the redial schedule (same shape as
        :class:`~repro.net.client.ClusterClient`).
    lease_timeout:
        seconds of total inbound silence after which the coordinator is
        presumed dead and re-homing begins (requires ``reconnect=True``
        and a v7 coordinator, which renews the lease every watchdog
        tick).  This catches the leader deaths a FIN never reports:
        when worker processes forked after connect still hold the
        socket's fd, closing it in the dead leader delivers no EOF at
        all.  ``None`` (default) disables the watchdog.
    n_workers:
        size of the local warm pool (reported as capacity in the
        handshake; ignored when ``service`` is supplied).
    name:
        node name shown in coordinator stats and result attribution.
    heartbeat_interval:
        seconds between heartbeat frames (keep well under the
        coordinator's ``heartbeat_timeout``).
    poll_every / mp_context:
        forwarded to the owned local service.
    service:
        an existing started :class:`SolverService` to borrow instead of
        owning one (tests share a pool across in-process agents).
    chaos:
        optional :class:`~repro.chaos.plan.FaultPlan`; node faults
        (``kill`` / ``partition`` / ``stall``) matching this agent's name
        are enacted from the heartbeat loop, and the plan is forwarded to
        the owned local service for walk-fault injection.
    recorder:
        telemetry recorder handed to the *owned* local service, so traced
        assignments produce dispatch/walk events in this node's trace file
        (ignored when ``service`` is supplied — the borrowed service keeps
        its own recorder).
    """

    def __init__(
        self,
        host: Any,
        port: int | None = None,
        *,
        n_workers: int = 2,
        name: Optional[str] = None,
        heartbeat_interval: float = 1.0,
        reconnect: bool = False,
        reconnect_backoff: float = 0.05,
        reconnect_max_delay: float = 2.0,
        max_reconnect_attempts: int = 20,
        lease_timeout: float | None = None,
        poll_every: int = 32,
        mp_context: str | None = None,
        pump_interval: float = 0.01,
        service: SolverService | None = None,
        chaos: Any = None,
        recorder: Recorder | None = None,
    ) -> None:
        from repro.net.client import parse_addresses

        if heartbeat_interval <= 0:
            raise NetError(
                f"heartbeat_interval must be > 0, got {heartbeat_interval}"
            )
        if port is not None:
            self.addresses = [(str(host), int(port))]
        else:
            self.addresses = parse_addresses(host)
        self._addr_index = 0
        self.host, self.port = self.addresses[0]
        self.reconnect = reconnect
        self.reconnect_backoff = reconnect_backoff
        self.reconnect_max_delay = reconnect_max_delay
        self.max_reconnect_attempts = max_reconnect_attempts
        if lease_timeout is not None and lease_timeout <= 0:
            raise NetError(
                f"lease_timeout must be > 0, got {lease_timeout}"
            )
        self.lease_timeout = lease_timeout
        # bounds the hello/welcome exchange per address during (re)dial;
        # kept short when a lease window is configured so a wedged
        # endpoint costs about one failover's worth of waiting, not more
        self.handshake_timeout = (
            5.0 if lease_timeout is None else max(1.0, lease_timeout)
        )
        self.reconnects = 0
        self.name = name or f"agent-{id(self) & 0xFFFF:04x}"
        self.heartbeat_interval = heartbeat_interval
        self.pump_interval = pump_interval
        self._service = service
        self._owns_service = service is None
        self.chaos = chaos
        if chaos is not None:
            chaos.arm()
        self.recorder = recorder
        self._service_kwargs = {
            "n_workers": n_workers,
            "poll_every": poll_every,
            "mp_context": mp_context,
            "recorder": recorder,
            "chaos": chaos,
        }
        self._last_load: dict[str, Any] | None = None
        self.n_workers = service.n_workers if service is not None else n_workers

        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._send_lock = asyncio.Lock()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._tasks: list[asyncio.Task] = []
        self._slices: dict[tuple[int, int], _Slice] = {}
        #: (job_id, island id) -> hosted island thread (protocol v6)
        self._islands: dict[tuple[int, int], _Island] = {}
        self._cancelled: dict[int, int] = {}  # job_id -> max cancelled gen
        #: protocol v4: problems received so far, by content digest — an
        #: assign naming a cached digest carries no problem payload at all
        self._problem_cache: dict[str, Any] = {}
        self._stopped = False
        self.closed = asyncio.Event()
        self.node_id: int | None = None
        self.negotiated: int | None = None
        self._last_rx = 0.0
        self._rehoming = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Connect, handshake, start the worker pool and the agent tasks."""
        self._loop = asyncio.get_running_loop()
        await self._connect()
        if self._service is None:
            self._service = await asyncio.to_thread(
                lambda: SolverService(**self._service_kwargs).start()
            )
        self._start_tasks()

    async def _connect(self) -> None:
        """Dial + handshake against the first reachable coordinator.

        Cycles the ordered address list starting from the last good
        entry, so one call is one full pass over every known coordinator.
        """
        errors: list[str] = []
        for offset in range(len(self.addresses)):
            index = (self._addr_index + offset) % len(self.addresses)
            host, port = self.addresses[index]
            try:
                reader, writer = await asyncio.open_connection(host, port)
            except OSError as err:
                errors.append(f"{host}:{port}: {err}")
                continue
            try:
                # a bounded handshake matters: a dead leader's listening
                # socket can stay half-alive (fds inherited by forked
                # workers), so connect succeeds but no welcome ever comes
                async def _handshake() -> Message | None:
                    await write_message(
                        writer,
                        Message(
                            "hello",
                            {
                                "role": "node",
                                "name": self.name,
                                "capacity": self.n_workers,
                                "protocol": PROTOCOL_VERSION,
                            },
                        ),
                    )
                    return await read_message(reader)

                welcome = await asyncio.wait_for(
                    _handshake(), self.handshake_timeout
                )
            except (
                NetError,
                ConnectionError,
                OSError,
                asyncio.TimeoutError,
            ) as err:
                if writer.transport is not None:
                    writer.transport.abort()
                errors.append(
                    f"{host}:{port}: {err or 'handshake timed out'}"
                )
                continue
            if welcome is None or welcome.type != "welcome":
                detail = welcome.get("error") if welcome is not None else "EOF"
                writer.close()
                errors.append(f"{host}:{port}: rejected: {detail}")
                continue
            self._addr_index = index
            self.host, self.port = host, port
            self._reader, self._writer = reader, writer
            self.node_id = welcome.get("node_id")
            self.negotiated = welcome.get("negotiated")
            self._last_rx = time.monotonic()
            return
        raise NetError(
            f"node {self.name} found no reachable coordinator: "
            + "; ".join(errors)
        )

    def _start_tasks(self) -> None:
        self._tasks = [
            asyncio.ensure_future(self._read_loop()),
            asyncio.ensure_future(self._heartbeat_loop()),
            asyncio.ensure_future(self._pump_loop()),
        ]
        if (
            self.reconnect
            and self.lease_timeout is not None
            and (self.negotiated or 0) >= 7
        ):
            self._tasks.append(
                asyncio.ensure_future(self._lease_watch_loop())
            )

    async def run(self) -> None:
        """Convenience for the CLI: start, then serve until disconnected."""
        await self.start()
        await self.closed.wait()

    async def stop(self) -> None:
        """Graceful teardown: close the connection, shut the pool down."""
        await self._teardown(abort=False)

    async def kill(self) -> None:
        """Abrupt death for failure-injection tests: the connection is
        aborted without a goodbye and in-flight walks are cancelled, so the
        coordinator sees exactly what a crashed host looks like."""
        await self._teardown(abort=True)

    async def _teardown(self, *, abort: bool) -> None:
        if self._stopped:
            return
        self._stopped = True
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._tasks = []
        if self._writer is not None:
            if abort and self._writer.transport is not None:
                self._writer.transport.abort()
            else:
                self._writer.close()
        for slice_state in self._slices.values():
            for handle in slice_state.handles.values():
                handle.cancel()
        self._slices.clear()
        for island_state in self._islands.values():
            island_state.cancel.set()
        for island_state in self._islands.values():
            if island_state.thread is not None:
                # the island loop polls its cancel event every <= 50ms, so
                # a short join is enough; a wedged thread is daemonic and
                # must not block teardown
                await asyncio.to_thread(island_state.thread.join, 1.0)
        self._islands.clear()
        if self._owns_service and self._service is not None:
            await asyncio.to_thread(
                self._service.shutdown, wait_jobs=False
            )
        self.closed.set()

    # ------------------------------------------------------------------
    # coordinator -> node
    # ------------------------------------------------------------------
    async def _read_loop(self) -> None:
        assert self._reader is not None
        try:
            while True:
                message = await read_message(self._reader)
                if message is None:
                    break
                self._last_rx = time.monotonic()
                if message.type == "assign":
                    self._on_assign(message)
                elif message.type == "cancel":
                    self._on_cancel(message)
                elif message.type == "elite_push":
                    self._on_elite_push(message)
                elif message.type == "shutdown":
                    break
        except (NetError, ConnectionError, OSError):
            pass
        except asyncio.CancelledError:
            raise
        finally:
            if not self._stopped:
                asyncio.ensure_future(self._handle_disconnect())

    async def _lease_watch_loop(self) -> None:
        """Presume the coordinator dead after ``lease_timeout`` of silence.

        A v7 coordinator renews its lease on every heartbeat-watchdog
        tick, so *any* inbound frame resets the clock.  This is the only
        reliable death signal when the socket's fd is also held by
        processes forked after connect (workers inherit it), because the
        dead leader's close then never produces an EOF on our side.
        """
        assert self.lease_timeout is not None
        interval = min(0.25, self.lease_timeout / 4)
        while True:
            await asyncio.sleep(interval)
            if self._stopped:
                return
            if time.monotonic() - self._last_rx > self.lease_timeout:
                asyncio.ensure_future(self._handle_disconnect())
                return

    async def _handle_disconnect(self) -> None:
        """The coordinator connection dropped: re-home or tear down.

        Re-homing (``reconnect=True``, protocol v7) drops all local work
        first — whichever coordinator we join next re-dispatches every
        unfinished walk under a bumped generation, so anything this agent
        kept running would only ever report stale; the exactly-one-winner
        dedup makes the discard safe.  Then the ordered address list is
        redialed with decorrelated-jitter backoff (desynchronizing a
        whole fleet orphaned by the same dead leader) and the agent
        rejoins as a fresh node with a full load snapshot.
        """
        if self._stopped or not self.reconnect:
            await self.stop()
            return
        if self._rehoming:
            # the lease watcher and the cancelled read loop's finally can
            # both land here for the same drop — only the first proceeds
            return
        self._rehoming = True
        try:
            current = asyncio.current_task()
            for task in self._tasks:
                if task is not current:
                    task.cancel()
            self._tasks = []
            if (
                self._writer is not None
                and self._writer.transport is not None
            ):
                self._writer.transport.abort()
            for slice_state in self._slices.values():
                for handle in slice_state.handles.values():
                    handle.cancel()
            self._slices.clear()
            for island_state in self._islands.values():
                island_state.cancel.set()
            self._islands.clear()
            self._cancelled.clear()
            # the new coordinator has no baseline: send a full load
            # snapshot on the first heartbeat after re-homing
            self._last_load = None
            delay = self.reconnect_backoff
            for _ in range(self.max_reconnect_attempts):
                if self._stopped:
                    return
                await asyncio.sleep(delay)
                delay = min(
                    self.reconnect_max_delay,
                    random.uniform(self.reconnect_backoff, delay * 3),
                )
                try:
                    await self._connect()
                except NetError:
                    continue
                self.reconnects += 1
                self._start_tasks()
                return
            await self.stop()
        finally:
            self._rehoming = False

    def _on_assign(self, message: Message) -> None:
        job_id = message["job_id"]
        generation = message["generation"]
        if self._cancelled.get(job_id, -1) >= generation:
            return  # assignment raced a cancel we already processed
        payload = unpickle_blob(message.blob)
        digest = payload.get("problem_digest")
        if "problem" in payload:
            problem = payload["problem"]
            if digest:
                self._problem_cache[digest] = problem
        else:
            try:
                problem = self._problem_cache[digest]
            except KeyError:  # pragma: no cover - protocol guard
                raise NetError(
                    f"assign references unknown problem digest {digest!r}"
                ) from None
        config = payload.get("config")
        seeds = payload["seeds"]
        trace_id = message.get("trace_id") or ""
        if message.get("coop") is not None:
            # protocol v6: a cooperative assignment is one island, not a
            # bag of independent walks
            self._start_island(message, problem, config, seeds, trace_id)
            return
        # protocol v5: the cluster-level priority orders this node's own
        # dispatch queue too, so a premium job overtakes queued batch work
        priority = int(message.get("priority", 0) or 0)
        slice_state = self._slices.setdefault(
            (job_id, generation), _Slice(job_id, generation)
        )
        assert self._service is not None
        for walk_id in message["walk_ids"]:
            if walk_id in slice_state.handles:
                continue  # duplicate assign (idempotent)
            # each walk is its own single-walk local job: completions
            # stream out individually and cancellation stays per-walk;
            # the trace context carries the *cluster* job/walk ids so the
            # local scheduler and pool workers stamp cluster-scope events
            slice_state.handles[walk_id] = self._service.submit_job(
                Job(
                    problem=problem,
                    n_walkers=1,
                    seeds=[seeds[walk_id]],
                    config=config,
                    priority=priority,
                    trace=(
                        TraceContext(trace_id, job_id, walk_id)
                        if trace_id
                        else None
                    ),
                )
            )

    # ------------------------------------------------------------------
    # cooperative islands (protocol v6)
    # ------------------------------------------------------------------
    def _start_island(
        self,
        message: Message,
        problem: Any,
        config: Any,
        seeds: dict[int, Any],
        trace_id: str,
    ) -> None:
        """Host one island on a dedicated thread (idempotent per id)."""
        job_id = message["job_id"]
        island_id = int(message["island"])
        key = (job_id, island_id)
        if key in self._islands:
            return  # duplicate assign
        walk_ids = [int(w) for w in message["walk_ids"]]
        state = _Island(job_id, island_id, message["generation"], walk_ids)
        runner = IslandRunner(
            problem,
            config if config is not None else AdaptiveSearchConfig(),
            CoopConfig.from_wire(message["coop"]),
            island=island_id,
            walk_ids=walk_ids,
            seeds=[seeds[walk_id] for walk_id in walk_ids],
            send_report=self._make_report_sender(job_id, island_id),
            inbox=state.inbox,
            cancel=state.cancel,
            recorder=self.recorder,
            trace_id=trace_id,
            job_id=job_id,
        )

        def _run() -> None:
            try:
                state.outcome = runner.run()
            except Exception as err:  # noqa: BLE001 - reported upstream
                state.error = f"island {island_id} crashed: {err!r}"

        state.thread = threading.Thread(
            target=_run,
            name=f"{self.name}-island-{job_id}-{island_id}",
            daemon=True,
        )
        self._islands[key] = state
        state.thread.start()

    def _make_report_sender(self, job_id: int, island_id: int) -> Any:
        """A thread-safe ``send_report`` callable for one island.

        Called from the island thread; the frame is scheduled onto the
        agent's event loop (fire-and-forget — a send failure looks like a
        lost push to the island, which times out and continues)."""

        def send_report(round_index: int, cost: float, config: Any) -> None:
            report = Message(
                "elite_report",
                {
                    "job_id": job_id,
                    "island": island_id,
                    "round_index": int(round_index),
                    "cost": float(cost),
                },
                blob=pickle_blob(np.asarray(config, dtype=np.int64)),
            )
            loop = self._loop
            if loop is None or loop.is_closed():
                return
            try:
                asyncio.run_coroutine_threadsafe(
                    self._send_quietly(report), loop
                )
            except RuntimeError:
                pass  # loop shut down mid-report: island will time out

        return send_report

    def _on_elite_push(self, message: Message) -> None:
        """Route a relayed migrant batch into its island's inbox."""
        key = (message["job_id"], message.get("island"))
        state = self._islands.get(key)
        if state is None or state.cancel.is_set():
            return  # island finished/cancelled: push arrived too late
        metas = message.get("migrants") or []
        raws = unpickle_blob(message.blob) if message.blob is not None else []
        migrants = []
        for meta, raw in zip(metas, raws):
            try:
                config = unpickle_blob(raw)
            except Exception:
                continue  # one corrupt migrant must not kill the batch
            migrants.append(
                (
                    int(meta.get("from", -1)),
                    float(meta.get("cost", 0.0)),
                    config,
                )
            )
        state.inbox.put(
            MigrantBatch(
                round_index=int(message.get("round_index", 0)),
                migrants=tuple(migrants),
            )
        )

    async def _report_island(self, state: _Island) -> None:
        """Ship one finished island's stats, then its walk outcomes.

        Order matters: ``island_stats`` first, so a winning island's
        adoption/migration counters are folded into the job-level coop
        summary before the solved walk triggers the job finish.  Cancelled
        islands report nothing — their counters died with the job.
        """
        try:
            if state.error is not None:
                for walk_id in state.walk_ids:
                    await self._send(
                        Message(
                            "walk_result",
                            {
                                "job_id": state.job_id,
                                "generation": state.generation,
                                "walk_id": walk_id,
                                "error": state.error,
                            },
                        )
                    )
                return
            outcome = state.outcome
            if outcome is None or outcome.cancelled:
                return
            await self._send(
                Message(
                    "island_stats",
                    {
                        "job_id": state.job_id,
                        "island": state.island,
                        "rounds": outcome.rounds,
                        "reports_sent": outcome.stats.get("reports_sent", 0),
                        "adoptions": outcome.stats.get("adoptions", 0),
                        "migrations_in": outcome.stats.get(
                            "migrations_in", 0
                        ),
                        "migrations_lost": outcome.stats.get(
                            "migrations_lost", 0
                        ),
                    },
                )
            )
            for walk in outcome.walks:
                await self._send(
                    outcome_to_message(
                        state.job_id, state.generation, walk
                    )
                )
        except (ConnectionError, OSError):
            pass  # the read loop will notice and tear the agent down

    def _on_cancel(self, message: Message) -> None:
        job_id = message["job_id"]
        generation = message["generation"]
        previous = self._cancelled.get(job_id, -1)
        self._cancelled[job_id] = max(previous, generation)
        for (slice_job, slice_gen), slice_state in self._slices.items():
            if slice_job == job_id and slice_gen <= generation:
                slice_state.cancelled = True
                for walk_id, handle in slice_state.handles.items():
                    if walk_id not in slice_state.reported:
                        handle.cancel()
        for (island_job, _), island_state in self._islands.items():
            if island_job == job_id and island_state.generation <= generation:
                island_state.cancel.set()
        # protocol v2: acknowledge after the local cancels are requested,
        # echoing sent_at verbatim so the coordinator measures the round
        # trip on its own clock (and trace_id so the ack stays correlated
        # even though the job is usually finished coordinator-side by now)
        if message.get("sent_at") is not None:
            ack = Message(
                "cancel_ack",
                {
                    "job_id": job_id,
                    "generation": generation,
                    "sent_at": message["sent_at"],
                    "trace_id": message.get("trace_id") or "",
                    "node": self.name,
                },
            )
            asyncio.ensure_future(self._send_quietly(ack))

    async def _send_quietly(self, message: Message) -> None:
        try:
            await self._send(message)
        except (ConnectionError, OSError):
            pass  # the read loop notices the broken pipe and tears down

    # ------------------------------------------------------------------
    # node -> coordinator
    # ------------------------------------------------------------------
    async def _send(self, message: Message) -> None:
        assert self._writer is not None
        async with self._send_lock:
            await write_message(self._writer, message)

    def _node_state(self) -> str:
        """This node's chaos state ("ok" when no plan targets it)."""
        if self.chaos is None:
            return "ok"
        return self.chaos.node_state(self.name)

    async def _heartbeat_loop(self) -> None:
        assert self._service is not None
        while True:
            state = self._node_state()
            if state == "kill":
                # abrupt death, scheduled so this task can be cancelled
                # from inside the teardown it triggers
                asyncio.ensure_future(self.kill())
                return
            if state in ("partition", "stall"):
                # silent: the coordinator's failure detector sees exactly
                # a hung/unreachable host (no heartbeat, connection alive)
                await asyncio.sleep(self.heartbeat_interval)
                continue
            load = self._service.metrics.to_json()
            if self._last_load is None:
                # first beat (and after any reconnect-from-scratch): the
                # full snapshot establishes the coordinator's baseline
                fields: dict[str, Any] = {"load": load}
            else:
                # protocol v2: subsequent beats carry only changed keys
                fields = {
                    "load_delta": {
                        key: value
                        for key, value in load.items()
                        if self._last_load.get(key) != value
                    }
                }
            self._last_load = load
            fields["running_walks"] = self._outstanding_walks()
            # protocol v3: per-walk progress rides in the heartbeat and
            # feeds the coordinator's straggler detector
            fields["progress"] = self._service.walk_progress()
            try:
                await self._send(Message("heartbeat", fields))
            except (ConnectionError, OSError):
                return
            await asyncio.sleep(self.heartbeat_interval)

    def _outstanding_walks(self) -> int:
        pool_walks = sum(
            1
            for s in self._slices.values()
            if not s.cancelled
            for walk_id, handle in s.handles.items()
            if walk_id not in s.reported and not handle.done()
        )
        island_walks = sum(
            len(i.walk_ids)
            for i in self._islands.values()
            if not i.cancel.is_set()
            and i.thread is not None
            and i.thread.is_alive()
        )
        return pool_walks + island_walks

    async def _pump_loop(self) -> None:
        """Stream finished walks to the coordinator as they complete."""
        while True:
            if self._node_state() == "partition":
                # hold results back (not marked reported) so they flow
                # the moment the partition heals
                await asyncio.sleep(self.pump_interval)
                continue
            for key in list(self._slices):
                slice_state = self._slices.get(key)
                if slice_state is None:
                    continue
                for walk_id, handle in list(slice_state.handles.items()):
                    if walk_id in slice_state.reported or not handle.done():
                        continue
                    slice_state.reported.add(walk_id)
                    if slice_state.cancelled:
                        continue
                    await self._report_walk(slice_state, walk_id, handle)
                if len(slice_state.reported) == len(slice_state.handles):
                    del self._slices[key]
            for key in list(self._islands):
                island_state = self._islands.get(key)
                if (
                    island_state is None
                    or island_state.reported
                    or island_state.thread is None
                    or island_state.thread.is_alive()
                ):
                    continue
                island_state.reported = True
                await self._report_island(island_state)
                del self._islands[key]
            await asyncio.sleep(self.pump_interval)

    async def _report_walk(
        self, slice_state: _Slice, walk_id: int, handle: Any
    ) -> None:
        result = handle.result(timeout=0)
        if result.status is JobStatus.CANCELLED:
            return  # a local cancel raced the completion; nothing to say
        try:
            if result.walks:
                outcome = result.walks[0]
                # the local job ran exactly one walk, so its local walk id
                # is 0; re-tag it with the cluster-wide walk id
                outcome.walk_id = walk_id
                message = outcome_to_message(
                    slice_state.job_id, slice_state.generation, outcome
                )
            else:
                message = Message(
                    "walk_result",
                    {
                        "job_id": slice_state.job_id,
                        "generation": slice_state.generation,
                        "walk_id": walk_id,
                        "error": result.error
                        or f"walk ended {result.status.value} with no outcome",
                    },
                )
            await self._send(message)
        except (ConnectionError, OSError):
            pass  # the read loop will notice and tear the agent down
