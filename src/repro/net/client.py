"""Synchronous cluster client.

:class:`ClusterClient` is the blocking, thread-safe front door to a running
coordinator — the piece that ``MultiWalkSolver(executor="net")``,
``collect_samples(cluster=...)`` and ``repro submit`` build on.  It speaks
the same framed protocol as the asyncio side but over a plain socket: one
daemon reader thread demultiplexes ``job_accepted`` / ``job_result`` /
``stats`` frames into per-request futures, so any number of jobs can be in
flight concurrently from any number of caller threads.

Seed handling mirrors the other executors exactly: ``submit`` derives the
per-walk :class:`~numpy.random.SeedSequence` list with
:func:`repro.parallel.seeding.walk_seeds` (or takes an explicit list) and
ships it whole; the *coordinator* partitions walk indices across nodes.
A cluster solve with job seed ``s`` therefore races the identical walk
trajectories as ``solve_parallel(..., seed=s)`` on one host.

Resilience (``reconnect=True``): every submit carries a UUID
``client_key`` and keeps its wire frame around; when the coordinator
connection drops, the reader thread redials with exponential backoff plus
jitter and *resubmits* every unanswered job under its original key.  The
coordinator deduplicates on the key — it re-attaches the client to the
still-running job or replays the cached result, so a coordinator restart
(or a network blip) costs a client nothing but latency.  Stats waiters
are not replayed; they fail fast on disconnect.
"""

from __future__ import annotations

import itertools
import random
import socket
import threading
import time
import uuid
from typing import Any, Optional, Sequence

import numpy as np

from repro.coop import CoopConfig
from repro.core.config import AdaptiveSearchConfig
from repro.errors import NetError
from repro.net.protocol import (
    PROTOCOL_VERSION,
    Message,
    pickle_blob,
    recv_message,
    send_message,
)
from repro.net.results import NetJobResult, job_result_from_message
from repro.parallel.seeding import walk_seeds
from repro.problems.base import Problem
from repro.telemetry.events import JobFinish, JobSubmit, new_trace_id
from repro.telemetry.recorder import Recorder, get_recorder
from repro.util.rng import SeedLike

__all__ = [
    "ClusterClient",
    "NetJobHandle",
    "parse_address",
    "parse_addresses",
]


def parse_address(address: Any) -> tuple[str, int]:
    """Coerce ``"host:port"`` strings or 2-tuples into ``(host, port)``."""
    if isinstance(address, str):
        host, sep, port_text = address.rpartition(":")
        if not sep or not host or not port_text.isdigit():
            raise NetError(
                f"expected an address like 'host:port', got {address!r}"
            )
        return (host, int(port_text))
    try:
        host, port = address
        return (str(host), int(port))
    except (TypeError, ValueError):
        raise NetError(f"not a cluster address: {address!r}") from None


def parse_addresses(value: Any) -> list[tuple[str, int]]:
    """Coerce one address or an ordered list into ``[(host, port), ...]``.

    Accepts everything :func:`parse_address` does, plus a comma-separated
    ``"a:1,b:2"`` string and sequences of addresses.  Order is
    significant — the first entry is the preferred (leader) coordinator,
    later entries are failover standbys.
    """
    if isinstance(value, str):
        parts = [part.strip() for part in value.split(",") if part.strip()]
        if not parts:
            raise NetError(f"no coordinator address in {value!r}")
        return [parse_address(part) for part in parts]
    try:
        return [parse_address(value)]  # a single (host, port) pair?
    except NetError:
        pass
    try:
        items = list(value)
    except TypeError:
        raise NetError(f"not a cluster address list: {value!r}") from None
    if not items:
        raise NetError("empty coordinator address list")
    return [parse_address(item) for item in items]


class NetJobHandle:
    """Future-style handle on one submitted cluster job (thread-safe)."""

    def __init__(self, request_id: int) -> None:
        self.request_id = request_id
        self.job_id: Optional[int] = None
        self.trace_id: str = ""
        #: idempotency key; the coordinator dedupes resubmissions on it
        self.client_key: str = ""
        self._event = threading.Event()
        self._result: Optional[NetJobResult] = None
        self._error: Optional[str] = None
        self._submitted_wall = 0.0
        #: original submit frame, kept for replay after a reconnect
        self._submit_fields: dict[str, Any] = {}
        self._submit_blob: Optional[bytes] = None

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> NetJobResult:
        """Block until the coordinator answers; raises on timeout/failure."""
        if not self._event.wait(timeout):
            raise NetError(
                f"timed out after {timeout}s waiting for cluster job "
                f"(request {self.request_id})"
            )
        if self._result is None:
            raise NetError(self._error or "cluster job failed")
        return self._result

    def _complete(self, result: NetJobResult) -> None:
        self._result = result
        self._event.set()

    def _fail(self, error: str) -> None:
        self._error = error
        self._event.set()


class ClusterClient:
    """Blocking client connection to a coordinator.

    Usable as a context manager; ``connect()`` is implicit on first use.

    Parameters
    ----------
    address:
        coordinator endpoint — ``(host, port)`` or ``"host:port"`` — or
        an *ordered* list of them (``"a:1,b:2"`` or a sequence): the
        first is the preferred (leader) coordinator, the rest are hot
        standbys tried in order whenever the preferred one is down, both
        at first connect and on every redial (protocol v7 re-homing).
    connect_timeout:
        seconds allowed for TCP connect + handshake.
    reconnect:
        survive coordinator restarts *and failovers*: redial with backoff
        on connection loss — cycling the address list — and resubmit
        unanswered jobs under their ``client_key`` (see module
        docstring).  The coordinator also keeps this client's jobs
        running while it is away instead of cancelling them.
    reconnect_backoff / reconnect_max_delay / max_reconnect_attempts:
        backoff schedule of the redial loop.  Waits use *decorrelated
        jitter* (each delay drawn uniformly from ``[backoff, 3 x
        previous]``, capped at ``reconnect_max_delay``), so a fleet of
        clients orphaned by the same dead leader spreads its redials
        instead of thundering-herding the freshly promoted standby.
    recorder:
        telemetry recorder for client-side submit/finish events; defaults
        to the process recorder (disabled unless configured).  Every
        submit carries a fresh trace id on the wire regardless, so
        coordinator/node-side tracing works even from an un-instrumented
        client.
    """

    def __init__(
        self,
        address: Any,
        *,
        connect_timeout: float = 10.0,
        reconnect: bool = False,
        reconnect_backoff: float = 0.05,
        reconnect_max_delay: float = 2.0,
        max_reconnect_attempts: int = 20,
        recorder: Recorder | None = None,
    ) -> None:
        self.addresses = parse_addresses(address)
        self._addr_index = 0
        #: the address currently (or most recently) connected to
        self.address = self.addresses[0]
        self.connect_timeout = connect_timeout
        self.reconnect = reconnect
        self.reconnect_backoff = reconnect_backoff
        self.reconnect_max_delay = reconnect_max_delay
        self.max_reconnect_attempts = max_reconnect_attempts
        self.recorder = recorder if recorder is not None else get_recorder()
        self._sock: socket.socket | None = None
        self._reader: threading.Thread | None = None
        self._send_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._connected = threading.Event()
        self._request_ids = itertools.count()
        self._by_request: dict[int, NetJobHandle] = {}
        self._stats_waiters: dict[int, tuple[threading.Event, list]] = {}
        self._closed = False
        self.reconnects = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _dial(self) -> socket.socket:
        """Connect + handshake against the first reachable coordinator.

        Tries the ordered address list starting from the one last used
        (the preferred leader on first connect), so one ``_dial`` is one
        full pass over every known coordinator before giving up.
        """
        errors: list[str] = []
        for offset in range(len(self.addresses)):
            index = (self._addr_index + offset) % len(self.addresses)
            try:
                sock = self._dial_one(self.addresses[index])
            except NetError as err:
                errors.append(str(err))
                continue
            self._addr_index = index
            self.address = self.addresses[index]
            return sock
        raise NetError(
            "no coordinator reachable: " + "; ".join(errors)
        )

    def _dial_one(self, address: tuple[str, int]) -> socket.socket:
        """TCP connect + handshake; returns the ready socket."""
        host, port = address
        try:
            sock = socket.create_connection(
                address, timeout=self.connect_timeout
            )
        except OSError as err:
            raise NetError(
                f"cannot reach coordinator at {host}:{port}: {err}"
            ) from None
        try:
            send_message(
                sock,
                Message(
                    "hello",
                    {
                        "role": "client",
                        "protocol": PROTOCOL_VERSION,
                        "reconnect": self.reconnect,
                    },
                ),
            )
            welcome = recv_message(sock)
        except NetError:
            sock.close()
            raise
        except OSError as err:
            sock.close()
            raise NetError(
                f"handshake with coordinator at {host}:{port} failed: {err}"
            ) from None
        if welcome is None or welcome.type != "welcome":
            detail = welcome.get("error") if welcome is not None else "EOF"
            sock.close()
            raise NetError(f"coordinator rejected client: {detail}")
        sock.settimeout(None)
        return sock

    def connect(self) -> "ClusterClient":
        """Dial and handshake (idempotent)."""
        if self._sock is not None:
            return self
        if self._closed:
            raise NetError("cluster client is closed")
        if (
            self.reconnect
            and self._reader is not None
            and self._reader.is_alive()
        ):
            # the read loop is already redialing: piggyback on it rather
            # than racing a second concurrent pass over the shared
            # address cursor (which can skip the live standby entirely).
            # The reconnect loop is itself bounded (max attempts), so
            # waiting for the reader thread is waiting on a finite thing.
            while self._reader.is_alive():
                if self._connected.wait(0.2) and self._sock is not None:
                    return self
            raise NetError(
                "cluster client is not connected (reconnect gave up)"
            )
        self._sock = self._dial()
        self._connected.set()
        self._reader = threading.Thread(
            target=self._read_loop, name="repro-net-client", daemon=True
        )
        self._reader.start()
        return self

    def close(self) -> None:
        """Drop the connection; outstanding handles fail (idempotent)."""
        with self._state_lock:
            if self._closed:
                return
            self._closed = True
            sock = self._sock
            self._sock = None
        self._connected.set()  # release any sender waiting on a reconnect
        if sock is not None:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            sock.close()
        if self._reader is not None and self._reader is not threading.current_thread():
            self._reader.join(timeout=5.0)
        self._fail_all("client closed")

    def __enter__(self) -> "ClusterClient":
        return self.connect()

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # client surface
    # ------------------------------------------------------------------
    def submit(
        self,
        problem: Problem,
        n_walkers: int = 1,
        seed: SeedLike = None,
        *,
        config: AdaptiveSearchConfig | None = None,
        seeds: Sequence[np.random.SeedSequence] | None = None,
        deadline: float | None = None,
        client_key: str | None = None,
        priority: int = 0,
        coop: CoopConfig | dict | None = None,
    ) -> NetJobHandle:
        """Submit one multi-walk job to the cluster; returns immediately.

        ``deadline`` (seconds) is enforced coordinator-side: an overdue
        job comes back ``TIMED_OUT`` and ``degraded`` with best-so-far
        outcomes.  ``client_key`` defaults to a fresh UUID — supply your
        own to make retries across *client* restarts idempotent too.
        ``priority`` (protocol v5) orders the coordinator's pending queue
        and each node's local dispatch queue — higher runs sooner; the
        default 0 preserves plain FIFO.  ``coop`` (protocol v6) turns the
        job cooperative: each node slice becomes an island exchanging
        elites per the :class:`~repro.coop.CoopConfig` topology; a
        ``coop`` without a seed inherits this job's integer ``seed`` (or a
        random one), so a fixed job seed replays the exact migrations.
        """
        self.connect()
        coop_wire: Optional[dict[str, Any]] = None
        if coop is not None:
            coop_config = (
                coop
                if isinstance(coop, CoopConfig)
                else CoopConfig.from_wire(coop)
            )
            if coop_config.seed is None:
                entropy = np.random.SeedSequence(
                    seed if isinstance(seed, (int, np.integer)) else None
                ).entropy
                coop_config = coop_config.with_seed(int(entropy))
            coop_wire = coop_config.to_wire()
        if seeds is not None:
            seed_list = list(seeds)
            if len(seed_list) != n_walkers:
                raise NetError(
                    f"got {len(seed_list)} explicit seeds for "
                    f"{n_walkers} walkers"
                )
        else:
            seed_list = walk_seeds(n_walkers, seed)
        # pickle eagerly, in the caller's frame: an un-picklable problem
        # must fail fast here with the offending type named, not surface
        # as a remote crash loop
        try:
            blob = pickle_blob(
                {
                    "problem": problem,
                    "config": config,
                    "seeds": seed_list,
                }
            )
        except Exception as err:
            raise NetError(
                f"problem {type(problem).__name__!r} is not picklable and "
                f"cannot be submitted to the cluster: {err}"
            ) from err
        with self._state_lock:
            request_id = next(self._request_ids)
            handle = NetJobHandle(request_id)
            handle.trace_id = new_trace_id()
            handle.client_key = client_key or uuid.uuid4().hex
            handle._submitted_wall = time.time()
            handle._submit_fields = {
                "n_walkers": n_walkers,
                "trace_id": handle.trace_id,
                "client_key": handle.client_key,
                "deadline": deadline,
                "priority": int(priority),
            }
            if coop_wire is not None:
                handle._submit_fields["coop"] = coop_wire
            handle._submit_blob = blob
            self._by_request[request_id] = handle
        if self.recorder.enabled:
            self.recorder.emit(
                JobSubmit(
                    trace_id=handle.trace_id,
                    n_walkers=n_walkers,
                    problem=getattr(problem, "name", type(problem).__name__),
                )
            )
        self._send(
            Message(
                "submit",
                {"request_id": request_id, **handle._submit_fields},
                blob=blob,
            )
        )
        return handle

    def solve(
        self,
        problem: Problem,
        n_walkers: int = 1,
        seed: SeedLike = None,
        *,
        timeout: float | None = None,
        **kwargs: Any,
    ) -> NetJobResult:
        """Submit and block until the cluster answers."""
        return self.submit(problem, n_walkers, seed, **kwargs).result(timeout)

    def stats(self, timeout: float | None = 10.0) -> dict[str, Any]:
        """Cluster-wide stats: coordinator counters + per-node load."""
        self.connect()
        with self._state_lock:
            request_id = next(self._request_ids)
            event = threading.Event()
            box: list = []
            self._stats_waiters[request_id] = (event, box)
        self._send(Message("stats", {"request_id": request_id}))
        if not event.wait(timeout):
            with self._state_lock:
                self._stats_waiters.pop(request_id, None)
            raise NetError(f"stats request timed out after {timeout}s")
        if not box:
            raise NetError("connection lost before the stats reply arrived")
        return box[0]

    # ------------------------------------------------------------------
    def _send(self, message: Message) -> None:
        if self.reconnect and not self._closed:
            # ride out an in-progress reconnect instead of failing the call
            self._connected.wait(self.connect_timeout)
        sock = self._sock
        if sock is None:
            raise NetError("cluster client is not connected")
        try:
            with self._send_lock:
                send_message(sock, message)
        except OSError as err:
            raise NetError(f"lost coordinator connection: {err}") from None

    def _read_loop(self) -> None:
        while True:
            sock = self._sock
            error = "coordinator closed the connection"
            try:
                while sock is not None:
                    message = recv_message(sock)
                    if message is None:
                        break
                    self._on_message(message)
            except (OSError, NetError) as err:
                if not self._closed:
                    error = f"coordinator connection failed: {err}"
            if self._closed or not self.reconnect:
                self._fail_all(error)
                return
            # connection lost but resilience is on: fail only the stats
            # waiters (not replayable), then redial and resubmit jobs
            self._connected.clear()
            with self._state_lock:
                self._sock = None
                stats_waiters = list(self._stats_waiters.values())
                self._stats_waiters.clear()
            for event, _ in stats_waiters:
                event.set()
            if not self._reconnect():
                self._fail_all(
                    f"{error}; reconnect gave up after "
                    f"{self.max_reconnect_attempts} attempts"
                )
                return

    def _reconnect(self) -> bool:
        """Redial with decorrelated-jitter backoff; replay in-flight jobs.

        Each wait is drawn uniformly from ``[base, 3 x previous]`` (AWS
        "decorrelated jitter"), capped at ``reconnect_max_delay`` —
        grows like exponential backoff on average but desynchronizes a
        fleet of clients that all lost the same leader, so a freshly
        promoted standby sees a trickle instead of a stampede.  Every
        attempt cycles the whole address list (see :meth:`_dial`).
        """
        delay = self.reconnect_backoff
        for _ in range(self.max_reconnect_attempts):
            if self._closed:
                return False
            time.sleep(delay)
            delay = min(
                self.reconnect_max_delay,
                random.uniform(self.reconnect_backoff, delay * 3),
            )
            try:
                sock = self._dial()
            except NetError:
                continue
            with self._state_lock:
                if self._closed:
                    sock.close()
                    return False
                self._sock = sock
            self.reconnects += 1
            self._connected.set()
            self._resubmit_inflight()
            return True
        return False

    def _resubmit_inflight(self) -> None:
        """Resubmit every unanswered job under its original client_key.

        Fresh request ids, identical keys and payloads: the coordinator
        either re-attaches us to the still-running job or replays the
        finished result — never a second run.
        """
        with self._state_lock:
            handles = [
                h for h in self._by_request.values()
                if h._submit_blob is not None
            ]
            self._by_request.clear()
            for handle in handles:
                handle.request_id = next(self._request_ids)
                self._by_request[handle.request_id] = handle
        for handle in handles:
            try:
                self._send(
                    Message(
                        "submit",
                        {
                            "request_id": handle.request_id,
                            **handle._submit_fields,
                        },
                        blob=handle._submit_blob,
                    )
                )
            except NetError:
                # the new connection died already; the read loop notices
                # and the next reconnect cycle replays again
                return

    def _on_message(self, message: Message) -> None:
        if message.type == "job_accepted":
            with self._state_lock:
                handle = self._by_request.get(message["request_id"])
            if handle is not None:
                handle.job_id = message["job_id"]
        elif message.type == "job_result":
            with self._state_lock:
                handle = self._by_request.pop(message["request_id"], None)
            if handle is not None:
                result = job_result_from_message(message)
                if self.recorder.enabled:
                    self.recorder.emit(
                        JobFinish(
                            trace_id=handle.trace_id,
                            job_id=result.job_id,
                            status=result.status.value,
                            latency=time.time() - handle._submitted_wall,
                        )
                    )
                handle._complete(result)
        elif message.type == "stats":
            with self._state_lock:
                waiter = self._stats_waiters.pop(message.get("request_id"), None)
            if waiter is not None:
                event, box = waiter
                box.append(
                    {
                        "coordinator": message["coordinator"],
                        "nodes": message["nodes"],
                    }
                )
                event.set()
        elif message.type == "error":
            with self._state_lock:
                handle = self._by_request.pop(message.get("request_id"), None)
            if handle is not None:
                handle._fail(message.get("error") or "coordinator error")

    def _fail_all(self, error: str) -> None:
        with self._state_lock:
            handles = list(self._by_request.values())
            self._by_request.clear()
            stats_waiters = list(self._stats_waiters.values())
            self._stats_waiters.clear()
        for handle in handles:
            handle._fail(error)
        for event, _ in stats_waiters:
            event.set()
