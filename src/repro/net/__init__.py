"""Distributed multi-node solve backend.

The paper ran its independent multi-walk experiments across cluster nodes
through an OpenMPI launcher: ``k`` sequential engines spread over machines,
no communication except termination detection.  This package is that
launcher rebuilt as a long-lived service on plain TCP:

- :class:`Coordinator` — asyncio control plane: node registry with
  heartbeat failure detection, job registry, round-robin seed-slice
  partitioning across nodes, cross-node first-finisher-wins cancel
  broadcast, re-dispatch of a dead node's unfinished walks (capped), and
  cluster-wide stats aggregation;
- :class:`NodeAgent` — one per machine: dials the coordinator and executes
  its assigned walk slices warm on a local
  :class:`~repro.service.SolverService` pool, streaming walk completions
  and heartbeat load frames back;
- :class:`ClusterClient` — blocking, thread-safe submission client (what
  ``MultiWalkSolver(executor="net")``, ``collect_samples(cluster=...)``
  and ``repro submit`` use);
- :class:`StandbyCoordinator` — hot spare tailing the leader's journal
  over the protocol v7 replication stream; promotes itself on lease
  silence or connection loss, and clients/agents re-home to it via
  ordered coordinator address lists;
- :class:`LocalCluster` — the whole topology in one process on localhost
  for tests, demos and failure injection;
- :mod:`~repro.net.protocol` — the shared length-prefixed JSON/binary
  frame layer with protocol-version handshake.

Quickstart (three shells)::

    repro coordinator --port 7710
    repro node --connect HOST:7710 --workers 8
    repro submit --connect HOST:7710 magic_square --set n=20 --walkers 16

Or in one process::

    from repro.net import LocalCluster

    with LocalCluster(n_nodes=2, workers_per_node=2) as cluster:
        result = cluster.client().solve(problem, n_walkers=8, seed=42)
        print(result.summary())
"""

from repro.net.agent import NodeAgent
from repro.net.client import (
    ClusterClient,
    NetJobHandle,
    parse_address,
    parse_addresses,
)
from repro.net.coordinator import Coordinator
from repro.net.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    Message,
    encode_message,
)
from repro.net.replica import StandbyCoordinator
from repro.net.results import NetJobResult
from repro.net.testing import LocalCluster

__all__ = [
    "ClusterClient",
    "Coordinator",
    "LocalCluster",
    "MAX_FRAME_BYTES",
    "Message",
    "NetJobHandle",
    "NetJobResult",
    "NodeAgent",
    "PROTOCOL_VERSION",
    "StandbyCoordinator",
    "encode_message",
    "parse_address",
    "parse_addresses",
]
