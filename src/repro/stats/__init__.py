"""Runtime-distribution statistics.

Independent multi-walk speedup is entirely determined by the sequential
runtime distribution: ``speedup(k) = E[T] / E[min(T_1..T_k)]``.  This package
provides the machinery to characterize measured distributions (ECDF, MLE
fits, goodness-of-fit), compute expected minima in closed form or
numerically, and build the speedup curves the paper plots.

The central theoretical facts this reproduces (and the ablation benchmarks
demonstrate):

- an exponential runtime distribution gives **ideal linear speedup**
  (memorylessness: ``E[min_k] = E[T] / k``) — the Costas Array regime;
- a *shifted* exponential (minimum runtime ``t0 > 0``) saturates at
  ``E[T] / t0`` — the CSPLib-benchmark regime;
- a lognormal body saturates even earlier — what heavy preprocessing or
  tiny instances look like.
"""

from repro.stats.ecdf import ECDF
from repro.stats.fitting import (
    DistributionFit,
    best_fit,
    degenerate_fit,
    degenerate_reason,
    fit_exponential,
    fit_lognormal,
    fit_shifted_exponential,
    refreeze,
)
from repro.stats.order_stats import (
    empirical_expected_min,
    expected_min,
    predicted_speedup,
)
from repro.stats.bootstrap import bootstrap_ci
from repro.stats.comparison import ComparisonResult, compare_runtimes, paired_win_rate
from repro.stats.rtd import (
    ExponentialityReport,
    exponentiality,
    parallel_rtd_points,
    rtd_chart,
    rtd_points,
)
from repro.stats.speedup import SpeedupCurve, speedup_curve_from_samples

__all__ = [
    "ECDF",
    "DistributionFit",
    "fit_exponential",
    "fit_shifted_exponential",
    "fit_lognormal",
    "degenerate_fit",
    "degenerate_reason",
    "refreeze",
    "best_fit",
    "expected_min",
    "empirical_expected_min",
    "predicted_speedup",
    "bootstrap_ci",
    "ComparisonResult",
    "compare_runtimes",
    "paired_win_rate",
    "rtd_points",
    "parallel_rtd_points",
    "rtd_chart",
    "exponentiality",
    "ExponentialityReport",
    "SpeedupCurve",
    "speedup_curve_from_samples",
]
