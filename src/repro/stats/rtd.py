"""Runtime-distribution (RTD) analysis.

Las Vegas algorithms are characterized by their runtime distribution
``F(t) = P(T <= t)`` (Hoos & Stützle).  For independent multi-walks the
``k``-walker RTD follows without any further experiment:

    F_k(t) = 1 - (1 - F(t))^k,

which is the cumulative form of the min-of-k identity the platform
simulation builds on.  This module renders measured RTDs, derives
multi-walk RTDs, and scores how exponential a sample looks (the paper's
linear-speedup criterion).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.stats.ecdf import ECDF
from repro.stats.fitting import fit_exponential
from repro.util.ascii_plot import Series, line_chart

__all__ = [
    "rtd_points",
    "parallel_rtd_points",
    "rtd_chart",
    "ExponentialityReport",
    "exponentiality",
]


def rtd_points(
    samples: Sequence[float], n_points: int = 50
) -> tuple[np.ndarray, np.ndarray]:
    """``(t, F(t))`` pairs spanning the sample range.

    Returns ``n_points`` abscissae from just below the minimum to the
    maximum of the sample, with the empirical CDF evaluated at each.
    """
    if n_points < 2:
        raise ValueError(f"n_points must be >= 2, got {n_points}")
    ecdf = ECDF(samples)
    lo = ecdf.min
    hi = ecdf.max
    if hi == lo:
        hi = lo + max(abs(lo), 1.0) * 1e-6
    t = np.linspace(lo * 0.999, hi, n_points)
    return t, np.asarray(ecdf(t))


def parallel_rtd_points(
    samples: Sequence[float], k: int, n_points: int = 50
) -> tuple[np.ndarray, np.ndarray]:
    """RTD of the ``k``-walker independent multi-walk, derived exactly.

    ``F_k(t) = 1 - (1 - F(t))^k`` — no further measurement needed.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    t, f = rtd_points(samples, n_points)
    return t, 1.0 - np.power(1.0 - f, k)


def rtd_chart(
    sample_sets: Mapping[str, Sequence[float]],
    *,
    walkers: Sequence[int] = (1,),
    width: int = 72,
    height: int = 20,
    title: str = "runtime distributions",
) -> str:
    """ASCII chart of (multi-walk) RTDs for several benchmarks.

    With ``walkers=(1, 16, 256)`` each benchmark contributes one curve per
    walker count — the visual form of the paper's speedup story: the more
    exponential the 1-walker RTD, the harder the multi-walk curves snap to
    the left.
    """
    series = []
    for label, samples in sample_sets.items():
        for k in walkers:
            t, f = parallel_rtd_points(samples, k)
            name = label if k == 1 else f"{label} x{k}"
            series.append(Series(name, t.tolist(), f.tolist()))
    return line_chart(
        series,
        width=width,
        height=height,
        title=title,
        xlabel="time",
        ylabel="P(solved)",
    )


@dataclass(frozen=True)
class ExponentialityReport:
    """How memoryless a runtime sample looks.

    ``qq_correlation`` is the Pearson correlation of the exponential Q-Q
    plot (1.0 = perfectly exponential order statistics);
    ``floor_fraction`` is ``min(sample) / mean`` — the relative runtime
    floor that caps multi-walk speedup at ``1 / floor_fraction``.
    """

    mean: float
    qq_correlation: float
    ks_statistic: float
    ks_pvalue: float
    floor_fraction: float

    @property
    def speedup_ceiling(self) -> float:
        """Upper bound on multi-walk speedup implied by the runtime floor."""
        if self.floor_fraction <= 0:
            return float("inf")
        return 1.0 / self.floor_fraction

    def summary(self) -> str:
        return (
            f"mean={self.mean:.4g}, QQ-r={self.qq_correlation:.3f}, "
            f"KS={self.ks_statistic:.3f} (p={self.ks_pvalue:.3f}), "
            f"floor={self.floor_fraction:.3g} "
            f"(speedup ceiling ~{self.speedup_ceiling:.3g})"
        )


def exponentiality(samples: Sequence[float]) -> ExponentialityReport:
    """Score a runtime sample against the exponential model."""
    arr = np.sort(np.asarray(samples, dtype=np.float64))
    if arr.ndim != 1 or arr.size < 3:
        raise ValueError("need at least 3 sample values")
    if np.any(arr < 0):
        raise ValueError("runtimes must be non-negative")
    n = arr.size
    mean = float(arr.mean())
    if mean <= 0:
        raise ValueError("mean runtime must be positive")
    # exponential Q-Q: empirical order statistics vs -ln(1 - i/(n+1))
    probs = (np.arange(1, n + 1)) / (n + 1)
    theoretical = -np.log1p(-probs)
    if np.std(arr) == 0:
        qq_r = 0.0
    else:
        qq_r = float(np.corrcoef(theoretical, arr)[0, 1])
    fit = fit_exponential(arr)
    return ExponentialityReport(
        mean=mean,
        qq_correlation=qq_r,
        ks_statistic=fit.ks_statistic,
        ks_pvalue=fit.ks_pvalue,
        floor_fraction=float(arr[0] / mean),
    )
