"""Statistical comparison of two solvers / parallel schemes.

Local-search runtimes are heavy-tailed, so mean-based eyeballing misleads;
these helpers wrap the standard nonparametric machinery used to compare
Las Vegas algorithms:

- Mann-Whitney U (rank) test on two runtime samples,
- bootstrap confidence interval of the median ratio,
- pairwise win rate for seed-matched designs (the same master seed given
  to both contenders, as ``bench_abl_cooperation`` does).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats as sps

from repro.util.rng import SeedLike, as_generator

__all__ = ["ComparisonResult", "compare_runtimes", "paired_win_rate"]


@dataclass(frozen=True)
class ComparisonResult:
    """Outcome of comparing runtime samples A vs B (smaller is better).

    ``median_ratio`` is ``median(A) / median(B)`` — below 1 means A is
    faster; the CI comes from a percentile bootstrap.  ``p_value`` is the
    two-sided Mann-Whitney U probability of the observed rank separation
    under exchangeability.
    """

    n_a: int
    n_b: int
    median_a: float
    median_b: float
    median_ratio: float
    ratio_ci_low: float
    ratio_ci_high: float
    u_statistic: float
    p_value: float

    @property
    def significant(self) -> bool:
        """Two-sided significance at the conventional 5% level."""
        return self.p_value < 0.05

    def verdict(self, name_a: str = "A", name_b: str = "B") -> str:
        """A one-line human-readable reading of the comparison."""
        if not self.significant:
            return (
                f"{name_a} vs {name_b}: statistical tie "
                f"(median ratio {self.median_ratio:.2f}, p={self.p_value:.3f})"
            )
        winner, loser = (
            (name_a, name_b) if self.median_a < self.median_b else (name_b, name_a)
        )
        factor = max(self.median_ratio, 1 / self.median_ratio) if self.median_ratio > 0 else float("inf")
        return (
            f"{winner} beats {loser} (median factor {factor:.2f}, "
            f"p={self.p_value:.4f})"
        )


def compare_runtimes(
    sample_a: Sequence[float],
    sample_b: Sequence[float],
    *,
    n_boot: int = 2000,
    alpha: float = 0.05,
    rng: SeedLike = None,
) -> ComparisonResult:
    """Nonparametric comparison of two independent runtime samples."""
    a = np.asarray(sample_a, dtype=np.float64)
    b = np.asarray(sample_b, dtype=np.float64)
    if a.ndim != 1 or b.ndim != 1 or a.size < 2 or b.size < 2:
        raise ValueError("need two 1-D samples with at least 2 values each")
    if np.any(a < 0) or np.any(b < 0):
        raise ValueError("runtimes must be non-negative")
    gen = as_generator(rng)
    med_a, med_b = float(np.median(a)), float(np.median(b))
    if med_b == 0:
        raise ValueError("median of sample B is zero; ratio undefined")
    u_stat, p_value = sps.mannwhitneyu(a, b, alternative="two-sided")

    ratios = np.empty(n_boot)
    for i in range(n_boot):
        ra = np.median(a[gen.integers(0, a.size, a.size)])
        rb = np.median(b[gen.integers(0, b.size, b.size)])
        ratios[i] = ra / rb if rb > 0 else np.inf
    finite = ratios[np.isfinite(ratios)]
    if finite.size == 0:
        lo = hi = float("inf")
    else:
        lo, hi = np.percentile(finite, [100 * alpha / 2, 100 * (1 - alpha / 2)])
    return ComparisonResult(
        n_a=a.size,
        n_b=b.size,
        median_a=med_a,
        median_b=med_b,
        median_ratio=med_a / med_b,
        ratio_ci_low=float(lo),
        ratio_ci_high=float(hi),
        u_statistic=float(u_stat),
        p_value=float(p_value),
    )


def paired_win_rate(
    sample_a: Sequence[float], sample_b: Sequence[float]
) -> tuple[float, int, int, int]:
    """Win rate of A over B on seed-matched pairs (smaller is better).

    Returns ``(win_rate, wins, losses, ties)`` where the rate counts ties
    as half a win.
    """
    a = np.asarray(sample_a, dtype=np.float64)
    b = np.asarray(sample_b, dtype=np.float64)
    if a.shape != b.shape or a.ndim != 1 or a.size == 0:
        raise ValueError("paired comparison needs equal-length 1-D samples")
    wins = int(np.sum(a < b))
    losses = int(np.sum(a > b))
    ties = int(np.sum(a == b))
    rate = (wins + 0.5 * ties) / a.size
    return rate, wins, losses, ties
