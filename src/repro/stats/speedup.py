"""Speedup curves — the quantity every figure of the paper plots."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.cluster.simulate import MultiWalkSimulator
from repro.cluster.topology import Platform
from repro.util.rng import SeedLike

__all__ = ["SpeedupCurve", "speedup_curve_from_samples"]


@dataclass
class SpeedupCurve:
    """Speedups of one benchmark on one platform over a core sweep.

    ``speedups[i]`` is the mean-completion-time ratio between
    ``baseline_cores`` and ``core_counts[i]`` walkers; ``mean_times`` holds
    the underlying expected parallel times.
    """

    label: str
    platform: str
    core_counts: list[int]
    mean_times: list[float]
    speedups: list[float]
    baseline_cores: int = 1
    baseline_time: float = 0.0
    ci_low: list[float] = field(default_factory=list)
    ci_high: list[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        lengths = {len(self.core_counts), len(self.mean_times), len(self.speedups)}
        if len(lengths) != 1:
            raise ValueError(
                "core_counts, mean_times and speedups must have equal length"
            )
        if self.ci_low and len(self.ci_low) != len(self.core_counts):
            raise ValueError("ci_low length mismatch")
        if self.ci_high and len(self.ci_high) != len(self.core_counts):
            raise ValueError("ci_high length mismatch")

    def efficiency(self) -> list[float]:
        """Parallel efficiency = speedup / (cores / baseline_cores)."""
        return [
            s / (k / self.baseline_cores)
            for s, k in zip(self.speedups, self.core_counts)
        ]

    def speedup_at(self, cores: int) -> float:
        try:
            return self.speedups[self.core_counts.index(cores)]
        except ValueError:
            raise KeyError(f"no measurement at {cores} cores") from None

    def as_rows(self) -> list[list[object]]:
        """Rows (cores, mean time, speedup, efficiency) for table rendering."""
        return [
            [k, t, s, e]
            for k, t, s, e in zip(
                self.core_counts, self.mean_times, self.speedups, self.efficiency()
            )
        ]


def speedup_curve_from_samples(
    label: str,
    samples: Sequence[float],
    platform: Platform,
    core_counts: Sequence[int],
    *,
    n_reps: int = 500,
    baseline_cores: int = 1,
    rng: SeedLike = None,
) -> SpeedupCurve:
    """Build a speedup curve by min-of-k simulation over measured samples.

    This is the bridge between measured single-core behaviour and the
    paper's multi-hundred-core figures; see :mod:`repro.cluster.simulate`
    for the fidelity argument.
    """
    sim = MultiWalkSimulator(platform, rng)
    sweep = sorted({int(k) for k in core_counts} | {int(baseline_cores)})
    runs = sim.expected_times(samples, sweep, n_reps)
    base = runs[int(baseline_cores)].mean_time
    if base <= 0:
        raise ValueError("baseline mean time must be positive")
    counts = [int(k) for k in core_counts]
    means = [runs[k].mean_time for k in counts]
    speeds = [base / m for m in means]
    # normal-approximation CI of the mean-time ratio (bootstrap reps drive
    # the std estimate; adequate for plotting error bars)
    ci_low, ci_high = [], []
    for k, m in zip(counts, means):
        sr = runs[k]
        half = 1.96 * sr.std_time / max(1, np.sqrt(sr.n_reps))
        ci_low.append(base / (m + half))
        ci_high.append(base / max(1e-12, m - half))
    return SpeedupCurve(
        label=label,
        platform=platform.name,
        core_counts=counts,
        mean_times=means,
        speedups=speeds,
        baseline_cores=int(baseline_cores),
        baseline_time=base,
        ci_low=ci_low,
        ci_high=ci_high,
    )
