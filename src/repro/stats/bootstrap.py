"""Nonparametric bootstrap confidence intervals."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.util.rng import SeedLike, as_generator

__all__ = ["bootstrap_ci"]


def bootstrap_ci(
    samples: Sequence[float],
    statistic: Callable[[np.ndarray], float] = np.mean,
    *,
    n_boot: int = 1000,
    alpha: float = 0.05,
    rng: SeedLike = None,
) -> tuple[float, float, float]:
    """Percentile bootstrap CI of ``statistic``.

    Returns ``(point_estimate, ci_low, ci_high)`` at confidence
    ``1 - alpha``.
    """
    arr = np.asarray(samples, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("need a non-empty 1-D sample")
    if n_boot < 1:
        raise ValueError(f"n_boot must be >= 1, got {n_boot}")
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    gen = as_generator(rng)
    point = float(statistic(arr))
    idx = gen.integers(0, arr.size, size=(n_boot, arr.size))
    stats = np.apply_along_axis(statistic, 1, arr[idx])
    low, high = np.percentile(stats, [100 * alpha / 2, 100 * (1 - alpha / 2)])
    return point, float(low), float(high)
