"""Parametric fits of runtime distributions.

Las-Vegas local-search runtimes are classically well approximated by
(shifted) exponential distributions — the observation behind the paper's
near-ideal Costas speedups.  We fit three candidates by maximum likelihood
and rank them by Kolmogorov-Smirnov distance:

- ``exponential``: rate ``1/mean``; memoryless, predicts linear speedup.
- ``shifted_exponential``: location ``t0`` plus exponential excess; predicts
  speedup saturating at ``mean / t0``.
- ``lognormal``: heavy-bodied alternative for small/preprocessed instances.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np
from scipy import stats as sps

from repro.errors import DegenerateSamplesError

__all__ = [
    "DistributionFit",
    "fit_exponential",
    "fit_shifted_exponential",
    "fit_lognormal",
    "degenerate_fit",
    "degenerate_reason",
    "refreeze",
    "best_fit",
]

#: minimum samples for a meaningful parametric fit (location + scale + one
#: degree of freedom left over for the KS ranking to mean anything)
MIN_FIT_SAMPLES = 3


@dataclass(frozen=True)
class DistributionFit:
    """A fitted runtime distribution.

    ``params`` are scipy ``(shape..., loc, scale)`` conventions for the
    underlying frozen distribution stored in ``frozen``.
    """

    name: str
    params: tuple[float, ...]
    mean: float
    ks_statistic: float
    ks_pvalue: float
    log_likelihood: float
    frozen: object  # scipy frozen distribution

    def survival(self, t: np.ndarray | float) -> np.ndarray | float:
        return self.frozen.sf(t)

    def cdf(self, t: np.ndarray | float) -> np.ndarray | float:
        return self.frozen.cdf(t)

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        return self.frozen.rvs(size=size, random_state=rng)

    def summary(self) -> str:
        return (
            f"{self.name}: mean={self.mean:.4g}, KS={self.ks_statistic:.3f} "
            f"(p={self.ks_pvalue:.3f})"
        )


def _validate(samples: Sequence[float]) -> np.ndarray:
    arr = np.asarray(samples, dtype=np.float64)
    if arr.ndim != 1 or arr.size < 2:
        raise ValueError("need at least 2 sample values to fit a distribution")
    if np.any(arr < 0) or not np.all(np.isfinite(arr)):
        raise ValueError("samples must be finite and non-negative")
    return arr


def _make_fit(name: str, frozen, params: tuple[float, ...], arr: np.ndarray) -> DistributionFit:
    ks = sps.kstest(arr, frozen.cdf)
    with np.errstate(divide="ignore"):
        logpdf = frozen.logpdf(arr)
    loglik = float(np.sum(logpdf)) if np.all(np.isfinite(logpdf)) else -np.inf
    return DistributionFit(
        name=name,
        params=params,
        mean=float(frozen.mean()),
        ks_statistic=float(ks.statistic),
        ks_pvalue=float(ks.pvalue),
        log_likelihood=loglik,
        frozen=frozen,
    )


def fit_exponential(samples: Sequence[float]) -> DistributionFit:
    """MLE exponential fit (loc fixed at 0): rate = 1/mean."""
    arr = _validate(samples)
    scale = float(arr.mean())
    if scale <= 0:
        raise ValueError("cannot fit an exponential to all-zero samples")
    frozen = sps.expon(loc=0.0, scale=scale)
    return _make_fit("exponential", frozen, (0.0, scale), arr)


def fit_shifted_exponential(samples: Sequence[float]) -> DistributionFit:
    """MLE shifted exponential: loc = min(sample), scale = mean excess.

    The location estimate is the standard MLE (sample minimum); a small
    shrinkage keeps the likelihood finite at the smallest observation.
    """
    arr = _validate(samples)
    loc = float(arr.min())
    excess = float(arr.mean() - loc)
    if excess <= 0:
        # degenerate: all samples (nearly) equal; give a tiny scale
        excess = max(1e-12, abs(loc) * 1e-9 + 1e-12)
    # shrink loc slightly so the density is positive at the minimum sample,
    # but never below zero — runtimes are non-negative, and a negative
    # location would corrupt E[min of k] at large k
    loc = max(0.0, loc - excess / max(2, len(arr)))
    frozen = sps.expon(loc=loc, scale=excess)
    return _make_fit("shifted_exponential", frozen, (loc, excess), arr)


def fit_lognormal(samples: Sequence[float]) -> DistributionFit:
    """MLE lognormal fit with loc = 0 (requires strictly positive samples)."""
    arr = _validate(samples)
    if np.any(arr <= 0):
        raise ValueError("lognormal fit requires strictly positive samples")
    shape, loc, scale = sps.lognorm.fit(arr, floc=0.0)
    frozen = sps.lognorm(shape, loc=loc, scale=scale)
    return _make_fit("lognormal", frozen, (shape, loc, scale), arr)


_FITTERS: dict[str, Callable[[Sequence[float]], DistributionFit]] = {
    "exponential": fit_exponential,
    "shifted_exponential": fit_shifted_exponential,
    "lognormal": fit_lognormal,
}


def degenerate_reason(
    samples: Sequence[float], min_samples: int = MIN_FIT_SAMPLES
) -> str | None:
    """Why ``samples`` cannot support a parametric fit (``None`` = they can).

    The online refit loop feeds whatever telemetry produced — one
    observation, a burst of identical cache-hit walls, all-zero stub
    runtimes — so degeneracy is an expected state, not a caller bug.
    """
    arr = np.asarray(samples, dtype=np.float64)
    if arr.ndim != 1:
        return f"expected a 1-D sample array, got shape {arr.shape}"
    if arr.size < min_samples:
        return f"need at least {min_samples} samples, got {arr.size}"
    if not np.all(np.isfinite(arr)) or np.any(arr < 0):
        return "samples must be finite and non-negative"
    hi = float(arr.max())
    if hi <= 1e-12:
        return "all samples are (near) zero"
    if float(arr.max() - arr.min()) <= 1e-9 * max(hi, 1.0):
        return f"samples are constant at {hi:.4g}"
    return None


def degenerate_fit(samples: Sequence[float]) -> DistributionFit:
    """A labeled point-mass stand-in fit for degenerate samples.

    The ``"degenerate"`` name marks it as *not* a real characterization:
    an exponential of negligible scale pinned at the sample mean, so
    quantiles, survival probabilities and ``expected_min`` stay finite
    and sensible (``E[min_k] ~ mean`` for every ``k`` — no predicted
    speedup, which is the honest answer when all evidence is one point).
    """
    arr = np.asarray(samples, dtype=np.float64).ravel()
    finite = arr[np.isfinite(arr)]
    loc = float(max(0.0, finite.mean())) if finite.size else 0.0
    scale = max(1e-12, abs(loc) * 1e-9)
    frozen = sps.expon(loc=loc, scale=scale)
    return DistributionFit(
        name="degenerate",
        params=(loc, scale),
        mean=float(frozen.mean()),
        ks_statistic=math.nan,
        ks_pvalue=math.nan,
        log_likelihood=math.nan,
        frozen=frozen,
    )


def refreeze(name: str, params: Sequence[float]) -> DistributionFit:
    """Rebuild a :class:`DistributionFit` from its ``(name, params)`` pair.

    The inverse of persisting a fit as JSON (goodness-of-fit statistics
    are not recoverable and come back as NaN): (shifted) exponentials and
    degenerate point masses refreeze as ``expon(loc, scale)``, lognormals
    as ``lognorm(shape, loc, scale)``.
    """
    values = tuple(float(p) for p in params)
    if name in ("exponential", "shifted_exponential", "degenerate"):
        if len(values) != 2:
            raise ValueError(f"{name} expects (loc, scale), got {values}")
        frozen = sps.expon(loc=values[0], scale=max(values[1], 1e-12))
    elif name == "lognormal":
        if len(values) != 3:
            raise ValueError(
                f"lognormal expects (shape, loc, scale), got {values}"
            )
        frozen = sps.lognorm(max(values[0], 1e-12), loc=values[1], scale=values[2])
    else:
        raise ValueError(
            f"unknown distribution family {name!r}; known: "
            f"{sorted(_FITTERS) + ['degenerate']}"
        )
    return DistributionFit(
        name=name,
        params=values,
        mean=float(frozen.mean()),
        ks_statistic=math.nan,
        ks_pvalue=math.nan,
        log_likelihood=math.nan,
        frozen=frozen,
    )


def best_fit(
    samples: Sequence[float],
    candidates: Sequence[str] = ("exponential", "shifted_exponential", "lognormal"),
    *,
    on_degenerate: str = "raise",
) -> DistributionFit:
    """Fit every candidate family and return the lowest-KS-distance fit.

    Families whose preconditions fail (e.g. lognormal with zero samples)
    are skipped; at least one candidate must succeed.

    Degenerate inputs — constant samples, all-near-zero samples, or fewer
    than :data:`MIN_FIT_SAMPLES` values — never reach scipy (whose MLE
    paths emit RuntimeWarnings and NaNs there).  With the default
    ``on_degenerate="raise"`` they raise
    :class:`~repro.errors.DegenerateSamplesError` naming the reason; with
    ``on_degenerate="fallback"`` they return the labeled point-mass
    :func:`degenerate_fit` instead, which is what the online refit loop
    uses so a cold-start model is usable rather than an exception.
    """
    if on_degenerate not in ("raise", "fallback"):
        raise ValueError(
            f"on_degenerate must be 'raise' or 'fallback', got {on_degenerate!r}"
        )
    reason = degenerate_reason(samples)
    if reason is not None:
        arr = np.asarray(samples, dtype=np.float64)
        if on_degenerate == "fallback" and arr.ndim == 1 and arr.size > 0:
            return degenerate_fit(arr[np.isfinite(arr)])
        raise DegenerateSamplesError(
            f"cannot fit a runtime distribution: {reason}"
        )
    fits = []
    errors = []
    for name in candidates:
        if name not in _FITTERS:
            raise ValueError(
                f"unknown distribution family {name!r}; "
                f"known: {sorted(_FITTERS)}"
            )
        try:
            with warnings.catch_warnings():
                # scipy MLE internals warn on flat likelihoods; degenerate
                # shapes were filtered above, so remaining warnings are
                # noise the online refit loop must not spam logs with
                warnings.simplefilter("ignore")
                fit = _FITTERS[name](samples)
        except ValueError as err:
            errors.append(f"{name}: {err}")
            continue
        if math.isfinite(fit.ks_statistic):
            fits.append(fit)
        else:
            errors.append(f"{name}: non-finite KS statistic")
    if not fits:
        if on_degenerate == "fallback":
            return degenerate_fit(samples)
        raise DegenerateSamplesError(
            "no candidate distribution could be fitted: " + "; ".join(errors)
        )
    return min(fits, key=lambda f: f.ks_statistic)
