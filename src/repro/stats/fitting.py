"""Parametric fits of runtime distributions.

Las-Vegas local-search runtimes are classically well approximated by
(shifted) exponential distributions — the observation behind the paper's
near-ideal Costas speedups.  We fit three candidates by maximum likelihood
and rank them by Kolmogorov-Smirnov distance:

- ``exponential``: rate ``1/mean``; memoryless, predicts linear speedup.
- ``shifted_exponential``: location ``t0`` plus exponential excess; predicts
  speedup saturating at ``mean / t0``.
- ``lognormal``: heavy-bodied alternative for small/preprocessed instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np
from scipy import stats as sps

__all__ = [
    "DistributionFit",
    "fit_exponential",
    "fit_shifted_exponential",
    "fit_lognormal",
    "best_fit",
]


@dataclass(frozen=True)
class DistributionFit:
    """A fitted runtime distribution.

    ``params`` are scipy ``(shape..., loc, scale)`` conventions for the
    underlying frozen distribution stored in ``frozen``.
    """

    name: str
    params: tuple[float, ...]
    mean: float
    ks_statistic: float
    ks_pvalue: float
    log_likelihood: float
    frozen: object  # scipy frozen distribution

    def survival(self, t: np.ndarray | float) -> np.ndarray | float:
        return self.frozen.sf(t)

    def cdf(self, t: np.ndarray | float) -> np.ndarray | float:
        return self.frozen.cdf(t)

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        return self.frozen.rvs(size=size, random_state=rng)

    def summary(self) -> str:
        return (
            f"{self.name}: mean={self.mean:.4g}, KS={self.ks_statistic:.3f} "
            f"(p={self.ks_pvalue:.3f})"
        )


def _validate(samples: Sequence[float]) -> np.ndarray:
    arr = np.asarray(samples, dtype=np.float64)
    if arr.ndim != 1 or arr.size < 2:
        raise ValueError("need at least 2 sample values to fit a distribution")
    if np.any(arr < 0) or not np.all(np.isfinite(arr)):
        raise ValueError("samples must be finite and non-negative")
    return arr


def _make_fit(name: str, frozen, params: tuple[float, ...], arr: np.ndarray) -> DistributionFit:
    ks = sps.kstest(arr, frozen.cdf)
    with np.errstate(divide="ignore"):
        logpdf = frozen.logpdf(arr)
    loglik = float(np.sum(logpdf)) if np.all(np.isfinite(logpdf)) else -np.inf
    return DistributionFit(
        name=name,
        params=params,
        mean=float(frozen.mean()),
        ks_statistic=float(ks.statistic),
        ks_pvalue=float(ks.pvalue),
        log_likelihood=loglik,
        frozen=frozen,
    )


def fit_exponential(samples: Sequence[float]) -> DistributionFit:
    """MLE exponential fit (loc fixed at 0): rate = 1/mean."""
    arr = _validate(samples)
    scale = float(arr.mean())
    if scale <= 0:
        raise ValueError("cannot fit an exponential to all-zero samples")
    frozen = sps.expon(loc=0.0, scale=scale)
    return _make_fit("exponential", frozen, (0.0, scale), arr)


def fit_shifted_exponential(samples: Sequence[float]) -> DistributionFit:
    """MLE shifted exponential: loc = min(sample), scale = mean excess.

    The location estimate is the standard MLE (sample minimum); a small
    shrinkage keeps the likelihood finite at the smallest observation.
    """
    arr = _validate(samples)
    loc = float(arr.min())
    excess = float(arr.mean() - loc)
    if excess <= 0:
        # degenerate: all samples (nearly) equal; give a tiny scale
        excess = max(1e-12, abs(loc) * 1e-9 + 1e-12)
    # shrink loc slightly so the density is positive at the minimum sample,
    # but never below zero — runtimes are non-negative, and a negative
    # location would corrupt E[min of k] at large k
    loc = max(0.0, loc - excess / max(2, len(arr)))
    frozen = sps.expon(loc=loc, scale=excess)
    return _make_fit("shifted_exponential", frozen, (loc, excess), arr)


def fit_lognormal(samples: Sequence[float]) -> DistributionFit:
    """MLE lognormal fit with loc = 0 (requires strictly positive samples)."""
    arr = _validate(samples)
    if np.any(arr <= 0):
        raise ValueError("lognormal fit requires strictly positive samples")
    shape, loc, scale = sps.lognorm.fit(arr, floc=0.0)
    frozen = sps.lognorm(shape, loc=loc, scale=scale)
    return _make_fit("lognormal", frozen, (shape, loc, scale), arr)


_FITTERS: dict[str, Callable[[Sequence[float]], DistributionFit]] = {
    "exponential": fit_exponential,
    "shifted_exponential": fit_shifted_exponential,
    "lognormal": fit_lognormal,
}


def best_fit(
    samples: Sequence[float], candidates: Sequence[str] = ("exponential", "shifted_exponential", "lognormal")
) -> DistributionFit:
    """Fit every candidate family and return the lowest-KS-distance fit.

    Families whose preconditions fail (e.g. lognormal with zero samples)
    are skipped; at least one candidate must succeed.
    """
    fits = []
    errors = []
    for name in candidates:
        if name not in _FITTERS:
            raise ValueError(
                f"unknown distribution family {name!r}; "
                f"known: {sorted(_FITTERS)}"
            )
        try:
            fits.append(_FITTERS[name](samples))
        except ValueError as err:
            errors.append(f"{name}: {err}")
    if not fits:
        raise ValueError(
            "no candidate distribution could be fitted: " + "; ".join(errors)
        )
    return min(fits, key=lambda f: f.ks_statistic)
