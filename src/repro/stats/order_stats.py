"""Expected minima of k i.i.d. runtimes and predicted speedups.

For a non-negative random runtime ``T`` with survival function ``S``,

    E[min(T_1 .. T_k)] = integral_0^inf S(t)^k dt.

Closed forms exist for the exponential family (``E[T]/k``, shifted:
``t0 + (E[T]-t0)/k``); other fits are integrated numerically.  The predicted
ideal-vs-saturating speedup shapes drive the paper's analysis:
exponential => ``speedup(k) = k`` (Costas), shifted exponential =>
``speedup(k) -> E[T]/t0`` (the CSPLib benchmarks).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy import integrate

from repro.stats.fitting import DistributionFit
from repro.util.rng import SeedLike, as_generator

__all__ = ["expected_min", "empirical_expected_min", "predicted_speedup"]


def expected_min(fit: DistributionFit, k: int) -> float:
    """``E[min of k]`` under a fitted distribution.

    Uses the closed form for (shifted) exponentials and numerical
    integration of ``S(t)^k`` otherwise.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if fit.name in ("exponential", "shifted_exponential", "degenerate"):
        # the degenerate point-mass fallback is an exponential of
        # negligible scale, so the same closed form applies (and gives
        # E[min_k] ~ mean for every k: no predicted speedup)
        loc, scale = fit.params
        return float(loc + scale / k)
    # generic: E[min_k] = ∫_0^1 ppf(u) · k (1-u)^(k-1) du  (probability
    # integral transform of the first order statistic).  Integrating in
    # quantile space is robust across scales — integrating survival^k in
    # time space silently loses the mass when the distribution is narrow
    # relative to its support.
    def integrand(u: float) -> float:
        return float(fit.frozen.ppf(u)) * k * (1.0 - u) ** (k - 1)

    # the weight k(1-u)^(k-1) concentrates near u ~ 1/k: tell quad
    breakpoints = sorted(
        {min(1.0 - 1e-12, max(1e-12, q / k)) for q in (0.1, 0.5, 1.0, 2.0, 5.0)}
    )
    value, _err = integrate.quad(
        integrand, 0.0, 1.0, points=breakpoints, limit=400
    )
    return float(value)


def empirical_expected_min(
    samples: Sequence[float],
    k: int,
    n_reps: int = 1000,
    rng: SeedLike = None,
) -> float:
    """Bootstrap estimate of ``E[min of k]`` straight from a sample."""
    arr = np.asarray(samples, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("need a non-empty 1-D sample")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if n_reps < 1:
        raise ValueError(f"n_reps must be >= 1, got {n_reps}")
    gen = as_generator(rng)
    draws = gen.choice(arr, size=(n_reps, k), replace=True)
    return float(draws.min(axis=1).mean())


def predicted_speedup(fit: DistributionFit, core_counts: Sequence[int]) -> dict[int, float]:
    """Model-predicted speedup ``E[T] / E[min_k]`` per core count."""
    base = expected_min(fit, 1)
    if base <= 0:
        raise ValueError(f"fitted mean runtime is {base}; cannot form speedups")
    return {int(k): base / expected_min(fit, int(k)) for k in core_counts}
