"""Empirical cumulative distribution function."""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

__all__ = ["ECDF"]

ArrayLike = Union[float, Sequence[float], np.ndarray]


class ECDF:
    """Right-continuous ECDF of a sample.

    ``ecdf(x)`` evaluates ``P(X <= x)``; ``quantile(q)`` returns the
    empirical ``q``-quantile (inverse CDF, lower interpolation — the value
    actually observed).
    """

    def __init__(self, samples: Sequence[float]) -> None:
        arr = np.asarray(samples, dtype=np.float64)
        if arr.ndim != 1 or arr.size == 0:
            raise ValueError("ECDF needs a non-empty 1-D sample")
        if not np.all(np.isfinite(arr)):
            raise ValueError("ECDF samples must be finite")
        self.values = np.sort(arr)
        self.n = int(arr.size)

    def __call__(self, x: ArrayLike) -> np.ndarray | float:
        x_arr = np.asarray(x, dtype=np.float64)
        result = np.searchsorted(self.values, x_arr, side="right") / self.n
        if np.isscalar(x) or x_arr.ndim == 0:
            return float(result)
        return result

    def survival(self, x: ArrayLike) -> np.ndarray | float:
        """``P(X > x)``."""
        cdf = self(x)
        return 1.0 - cdf if isinstance(cdf, float) else 1.0 - cdf

    def quantile(self, q: ArrayLike) -> np.ndarray | float:
        """Empirical quantile(s); ``q`` in [0, 1]."""
        q_arr = np.asarray(q, dtype=np.float64)
        if np.any((q_arr < 0) | (q_arr > 1)):
            raise ValueError("quantiles must be in [0, 1]")
        idx = np.clip(np.ceil(q_arr * self.n).astype(int) - 1, 0, self.n - 1)
        result = self.values[idx]
        if np.isscalar(q) or q_arr.ndim == 0:
            return float(result)
        return result

    @property
    def mean(self) -> float:
        return float(self.values.mean())

    @property
    def median(self) -> float:
        return float(np.median(self.values))

    @property
    def min(self) -> float:
        return float(self.values[0])

    @property
    def max(self) -> float:
        return float(self.values[-1])

    def std(self, ddof: int = 1) -> float:
        if self.n <= ddof:
            return 0.0
        return float(self.values.std(ddof=ddof))

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:
        return (
            f"ECDF(n={self.n}, min={self.min:.4g}, median={self.median:.4g}, "
            f"max={self.max:.4g})"
        )
