"""Tuning of the cross-node island model.

:class:`CoopConfig` is the single knob bundle a cooperative cluster job
carries: the migration topology, the synchronized-round cadence, and the
adoption policy every island applies locally.  It is deliberately a plain
JSON-safe record (:meth:`to_wire` / :meth:`from_wire`) because it travels
inside ``submit`` and ``assign`` frames — protocol v6 ships it to every
island verbatim, so all islands of one job agree on the scheme without any
out-of-band coordination.

Determinism: ``seed`` fixes the per-island adoption RNG streams (island
``i`` draws from ``SeedSequence(seed, spawn_key=(COOP_STREAM, i))``), and
the coordinator's relay is a pure function of the reports of each round —
same seed + same topology therefore reproduces the exact migration event
log, which the test suite asserts bit-for-bit.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Mapping

from repro.errors import CoopError
from repro.util.validation import check_fraction, check_probability

__all__ = ["CoopConfig", "TOPOLOGIES"]

#: supported migration topologies (see :mod:`repro.coop.topology`)
TOPOLOGIES = ("ring", "islands", "all_to_all", "star")

#: spawn-key namespace separating island adoption streams from walk seeds
COOP_STREAM = 0xC0


@dataclass(frozen=True)
class CoopConfig:
    """Cooperative (dependent multi-walk) scheme for one cluster job.

    Parameters
    ----------
    topology:
        who migrates to whom each migration round — ``"ring"`` (island i's
        elite goes to island i+1), ``"islands"`` (all-to-all within groups
        of ``group_size``), ``"all_to_all"`` (everyone to everyone), or
        ``"star"`` (coordinator-mediated: the round's best island's elite
        goes to everyone else).
    report_interval:
        iterations per synchronized round; each walker of an island steps
        this many iterations between elite-pool reports.
    adopt_interval:
        minimum iterations a walker searches on its own between adoption
        attempts (the local elite-pool jump of
        :class:`~repro.parallel.cooperative.CooperationConfig`).
    migration_interval:
        island rounds between cross-island exchanges; 1 = every round
        sends an ``elite_report`` and waits for the ``elite_push``.
    p_adopt / pool_size / min_relative_gain / perturb_fraction:
        the local adoption policy, identical in meaning to the in-process
        cooperative scheme (see
        :class:`~repro.parallel.cooperative.CooperationConfig`).
    group_size:
        group width for the ``"islands"`` topology (ignored otherwise).
    migration_timeout:
        seconds an island waits for its ``elite_push`` before giving the
        round up as lost and continuing independently — the graceful
        degradation path when links drop migrations.
    seed:
        integer seeding every island's adoption RNG deterministically;
        ``None`` lets the client fill it from the job seed (or randomly),
        so explicit seeding is only needed for replays.
    """

    topology: str = "ring"
    report_interval: int = 64
    adopt_interval: int = 256
    migration_interval: int = 1
    p_adopt: float = 0.8
    pool_size: int = 8
    min_relative_gain: float = 0.1
    perturb_fraction: float = 0.05
    group_size: int = 2
    migration_timeout: float = 5.0
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.topology not in TOPOLOGIES:
            raise CoopError(
                f"unknown topology {self.topology!r}; "
                f"choose one of {', '.join(TOPOLOGIES)}"
            )
        for name in ("report_interval", "adopt_interval", "migration_interval",
                     "pool_size", "group_size"):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 1:
                raise CoopError(f"{name} must be an int >= 1, got {value!r}")
        if self.migration_timeout <= 0:
            raise CoopError(
                f"migration_timeout must be > 0, got {self.migration_timeout}"
            )
        if self.seed is not None and (
            not isinstance(self.seed, int) or self.seed < 0
        ):
            raise CoopError(f"seed must be a non-negative int, got {self.seed!r}")
        try:
            check_probability("p_adopt", self.p_adopt)
            check_probability("min_relative_gain", self.min_relative_gain)
            check_fraction("perturb_fraction", self.perturb_fraction)
        except (TypeError, ValueError) as err:
            raise CoopError(str(err)) from None

    # ------------------------------------------------------------------
    def to_wire(self) -> dict[str, Any]:
        """JSON-safe dict for submit/assign frames (round-trips exactly)."""
        return asdict(self)

    @classmethod
    def from_wire(cls, data: Mapping[str, Any]) -> "CoopConfig":
        """Validate and rebuild from a wire dict (unknown keys rejected)."""
        if not isinstance(data, Mapping):
            raise CoopError(f"coop config must be a mapping, got {type(data).__name__}")
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(data) - known
        if unknown:
            raise CoopError(
                f"unknown coop config field(s): {', '.join(sorted(unknown))}"
            )
        return cls(**dict(data))

    def with_seed(self, seed: int) -> "CoopConfig":
        """A copy with ``seed`` filled in (no-op if already set)."""
        if self.seed is not None:
            return self
        return CoopConfig(**{**asdict(self), "seed": int(seed)})
