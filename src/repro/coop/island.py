"""One island: a synchronized group of walkers around a local elite pool.

:class:`IslandRunner` is the node-side execution loop of the cross-node
cooperative scheme.  It is the in-process
:class:`~repro.parallel.cooperative.CooperativeMultiWalk` round loop lifted
into a form a :class:`~repro.net.agent.NodeAgent` can host on a thread:

- the island's walkers are resumable
  :class:`~repro.core.session.AdaptiveSearchSession`\\ s advancing in
  synchronized rounds of ``report_interval`` iterations, each feeding a
  local :class:`~repro.parallel.cooperative.ElitePool`;
- every ``migration_interval`` rounds the island *reports* its best
  (cost, configuration) upward through ``send_report`` and then blocks on
  ``inbox`` for the matching migrant batch — arriving migrants are offered
  into the local pool, where the ordinary adoption policy picks them up;
- a report whose push never arrives within ``migration_timeout`` is
  counted in ``migrations_lost`` and the island simply continues — losing
  every migration degrades the scheme to independent multi-walk, never to
  a hang.

The runner is transport-agnostic on purpose: ``send_report`` is any
non-blocking callable and ``inbox`` any queue, so the same loop is driven
by the real cluster protocol in production and by plain lists in tests.

Determinism: the adoption RNG is derived solely from ``(coop.seed,
island id)``, walker trajectories from their walk seeds, and migrant
batches from the coordinator's deterministic relay — so a fixed job seed
reproduces the island's decisions exactly.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

import numpy as np

from repro.coop.config import COOP_STREAM, CoopConfig
from repro.core.config import AdaptiveSearchConfig
from repro.core.session import AdaptiveSearchSession
from repro.core.termination import TerminationReason
from repro.csp.permutation import random_partial_reset
from repro.errors import CoopError
from repro.parallel.cooperative import ElitePool
from repro.parallel.results import WalkOutcome
from repro.problems.base import Problem
from repro.telemetry.events import EliteAdopt

__all__ = ["IslandRunner", "IslandOutcome", "MigrantBatch"]


@dataclass(frozen=True)
class MigrantBatch:
    """One relayed migration round as the island receives it.

    ``migrants`` pairs each source island with the elite configuration it
    contributed; an empty list is a completed round that routed nothing to
    this island (e.g. a two-island ring where the partner died)."""

    round_index: int
    migrants: tuple[tuple[int, float, np.ndarray], ...] = ()


@dataclass
class IslandOutcome:
    """What one island hands back to its hosting agent."""

    island: int
    walks: list[WalkOutcome] = field(default_factory=list)
    winner: Optional[WalkOutcome] = None
    rounds: int = 0
    cancelled: bool = False
    #: reports_sent / migrations_in / migrations_lost / adoptions /
    #: pool_offers / pool_accepts — folded into the job-level coop stats
    stats: dict[str, int] = field(default_factory=dict)


class IslandRunner:
    """Run one island of walkers with periodic elite migration.

    Parameters
    ----------
    problem / config:
        the instance and a fully resolved solver configuration (the
        coordinator ships the job's config; defaults were merged
        client-side exactly as for independent net walks).
    coop:
        the job's :class:`~repro.coop.config.CoopConfig`; ``coop.seed``
        must be filled in by this point (the client guarantees it).
    island:
        this island's coordinator-assigned id (keys the adoption RNG).
    walk_ids / seeds:
        the cluster-wide walk ids of this island's walkers and their
        :class:`~numpy.random.SeedSequence`\\ s, aligned index-for-index.
    send_report:
        non-blocking callable ``(round_index, cost, config)`` shipping
        this island's elite upward.
    inbox:
        queue the host feeds :class:`MigrantBatch` instances into.
    cancel:
        event ending the island early (cluster-level job cancel).
    recorder:
        optional telemetry recorder for ``elite_adopt`` events.
    """

    def __init__(
        self,
        problem: Problem,
        config: AdaptiveSearchConfig,
        coop: CoopConfig,
        *,
        island: int,
        walk_ids: Sequence[int],
        seeds: Sequence[Any],
        send_report: Callable[[int, float, np.ndarray], None],
        inbox: "queue.Queue[MigrantBatch]",
        cancel: threading.Event | None = None,
        recorder: Any = None,
        trace_id: str = "",
        job_id: int = -1,
    ) -> None:
        if len(walk_ids) != len(seeds):
            raise CoopError(
                f"island {island} got {len(walk_ids)} walk ids but "
                f"{len(seeds)} seeds"
            )
        if not walk_ids:
            raise CoopError(f"island {island} has no walkers")
        if coop.seed is None:
            raise CoopError("CoopConfig.seed must be set before an island runs")
        self.problem = problem
        self.config = config
        self.coop = coop
        self.island = island
        self.walk_ids = list(walk_ids)
        self.seeds = list(seeds)
        self.send_report = send_report
        self.inbox = inbox
        self.cancel = cancel if cancel is not None else threading.Event()
        self.recorder = recorder
        self.trace_id = trace_id
        self.job_id = job_id
        #: adoption decisions draw from a stream owned by (seed, island) —
        #: independent of walker seeds and of which node hosts the island
        self._rng = np.random.default_rng(
            np.random.SeedSequence(coop.seed, spawn_key=(COOP_STREAM, island))
        )
        self.pool = ElitePool(coop.pool_size)

    # ------------------------------------------------------------------
    def run(self) -> IslandOutcome:
        """Drive the island to its end (solve, exhaustion, or cancel)."""
        coop = self.coop
        cfg = self.config
        sessions = {
            walk_id: AdaptiveSearchSession(self.problem, cfg, seed)
            for walk_id, seed in zip(self.walk_ids, self.seeds)
        }
        last_adopt = {walk_id: 0 for walk_id in self.walk_ids}
        finished: dict[int, TerminationReason] = {}
        stats = {
            "reports_sent": 0,
            "migrations_in": 0,
            "migrations_lost": 0,
            "adoptions": 0,
        }
        active = set(self.walk_ids)
        winner_id: Optional[int] = None
        rounds = 0
        started = time.perf_counter()

        while active and winner_id is None and not self.cancel.is_set():
            rounds += 1
            for walk_id in sorted(active):
                if self.cancel.is_set():
                    break
                session = sessions[walk_id]
                chunk = self._iteration_allowance(session, started)
                if chunk is None:  # budget spent between rounds
                    finished[walk_id] = (
                        TerminationReason.MAX_ITERATIONS
                        if session.stats.iterations >= cfg.max_iterations
                        else TerminationReason.TIME_LIMIT
                    )
                    active.discard(walk_id)
                    continue
                out = session.step(chunk)
                if out is TerminationReason.SOLVED:
                    winner_id = walk_id
                    finished[walk_id] = out
                    active.discard(walk_id)
                    break
                if out is not None:  # restarts exhausted / callback cancel
                    finished[walk_id] = out
                    active.discard(walk_id)
                    continue
                self.pool.offer(session.cost, session.state.config)
                self._maybe_adopt(session, walk_id, last_adopt, stats)
            if winner_id is None and active and not self.cancel.is_set():
                if rounds % coop.migration_interval == 0:
                    self._migrate(rounds, stats)

        walks = [
            self._outcome(walk_id, sessions[walk_id], finished.get(walk_id))
            for walk_id in self.walk_ids
            if walk_id in finished
        ]
        winner = next((w for w in walks if w.walk_id == winner_id), None)
        stats["pool_offers"] = self.pool.offers
        stats["pool_accepts"] = self.pool.accepts
        return IslandOutcome(
            island=self.island,
            walks=walks,
            winner=winner,
            rounds=rounds,
            cancelled=self.cancel.is_set(),
            stats=stats,
        )

    # ------------------------------------------------------------------
    def _iteration_allowance(
        self, session: AdaptiveSearchSession, started: float
    ) -> Optional[int]:
        """This round's step size, or ``None`` when the budget is spent."""
        cfg = self.config
        remaining = cfg.max_iterations - session.stats.iterations
        if remaining <= 0:
            return None
        if time.perf_counter() - started >= cfg.time_limit:
            return None
        return int(min(self.coop.report_interval, remaining))

    def _maybe_adopt(
        self,
        session: AdaptiveSearchSession,
        walk_id: int,
        last_adopt: dict[int, int],
        stats: dict[str, int],
    ) -> None:
        """The local adoption policy — identical to the in-process scheme."""
        coop = self.coop
        if session.stats.iterations - last_adopt[walk_id] < coop.adopt_interval:
            return
        last_adopt[walk_id] = session.stats.iterations
        if self._rng.random() >= coop.p_adopt:
            return
        elite = self.pool.best()
        if elite is None or elite[0] >= (
            1.0 - coop.min_relative_gain
        ) * session.cost:
            return
        cost_before = session.cost
        adopted = elite[1]
        random_partial_reset(adopted, coop.perturb_fraction, self._rng)
        session.inject_configuration(adopted)
        stats["adoptions"] += 1
        if self.recorder is not None and self.recorder.enabled:
            self.recorder.emit(
                EliteAdopt(
                    trace_id=self.trace_id,
                    job_id=self.job_id,
                    walk_id=walk_id,
                    island=self.island,
                    iteration=session.stats.iterations,
                    cost_before=float(cost_before),
                    cost_elite=float(elite[0]),
                )
            )

    def _migrate(self, round_index: int, stats: dict[str, int]) -> None:
        """Report the island's elite and wait for the relayed migrants."""
        best = self.pool.best()
        if best is None:  # nothing finite reported yet: skip this round
            return
        cost, config = best
        self.send_report(round_index, float(cost), config)
        stats["reports_sent"] += 1
        deadline = time.monotonic() + self.coop.migration_timeout
        while not self.cancel.is_set():
            timeout = deadline - time.monotonic()
            if timeout <= 0:
                stats["migrations_lost"] += 1
                return
            try:
                batch = self.inbox.get(timeout=min(timeout, 0.05))
            except queue.Empty:
                continue
            if batch.round_index > round_index:  # pragma: no cover - guard
                return  # protocol skew; never relayed for unreported rounds
            for _, migrant_cost, migrant_config in batch.migrants:
                self.pool.offer(float(migrant_cost), migrant_config)
                stats["migrations_in"] += 1
            if batch.round_index == round_index:
                return
            # an older round's push straggled in: its migrants were folded
            # into the pool above, but keep waiting for the current round

    def _outcome(
        self,
        walk_id: int,
        session: AdaptiveSearchSession,
        reason: Optional[TerminationReason],
    ) -> WalkOutcome:
        return WalkOutcome(
            walk_id=walk_id,
            solved=session.solved,
            cost=session.best_cost,
            iterations=session.stats.iterations,
            wall_time=session.elapsed,
            reason=reason if reason is not None else TerminationReason.CANCELLED,
            config=session.best_config if session.solved else None,
        )
