"""Deterministic migration routing between islands.

:func:`migration_routes` is the coordinator's whole routing policy: given
the set of islands that reported in one migration round, it answers "whose
elite does each island receive this round".  It is a pure function of
(topology, sorted island ids, round index, group size, best island), so the
relay — and therefore the migration event log — is reproducible from the
job parameters alone.

Island ids are coordinator-assigned small integers; they are sorted before
routing so the result does not depend on dict ordering or on the dispatch
rotation that decided which node hosts which island.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.coop.config import TOPOLOGIES
from repro.errors import CoopError

__all__ = ["migration_routes"]


def migration_routes(
    topology: str,
    islands: Iterable[int],
    *,
    round_index: int = 0,
    group_size: int = 2,
    best_island: Optional[int] = None,
) -> dict[int, list[int]]:
    """Map each island to the (sorted) islands it receives elites from.

    Parameters
    ----------
    topology:
        one of :data:`~repro.coop.config.TOPOLOGIES`.
    islands:
        ids of the islands participating in this round.
    round_index:
        advances the ring: in round ``r`` island ``k`` sends to island
        ``k + 1 + (r - 1) % (n - 1)`` (mod n), so over successive rounds a
        ring of n islands cycles through every non-self target — elites
        percolate everywhere without all-to-all traffic.
    group_size:
        width of the ``"islands"`` topology groups (consecutive islands in
        sorted order form a group; the last group may be smaller).
    best_island:
        required for ``"star"``: the round's lowest-cost island, whose
        elite is pushed to everyone else.

    A single island (or an empty set) routes nothing — every present
    island still maps to an empty source list, because the migration
    round-trip protocol is uniform: every reporting island gets exactly
    one push, possibly empty.
    """
    if topology not in TOPOLOGIES:
        raise CoopError(
            f"unknown topology {topology!r}; choose one of {', '.join(TOPOLOGIES)}"
        )
    if group_size < 1:
        raise CoopError(f"group_size must be >= 1, got {group_size}")
    members = sorted(set(islands))
    routes: dict[int, list[int]] = {island: [] for island in members}
    n = len(members)
    if n < 2:
        return routes

    if topology == "ring":
        shift = 1 + (max(round_index, 1) - 1) % (n - 1)
        for position, source in enumerate(members):
            routes[members[(position + shift) % n]].append(source)
    elif topology == "islands":
        for start in range(0, n, group_size):
            group = members[start : start + group_size]
            for target in group:
                routes[target].extend(s for s in group if s != target)
    elif topology == "all_to_all":
        for target in members:
            routes[target].extend(s for s in members if s != target)
    else:  # star
        if best_island is None or best_island not in routes:
            raise CoopError(
                f"star topology needs a best_island among {members}, "
                f"got {best_island!r}"
            )
        for target in members:
            if target != best_island:
                routes[target].append(best_island)
    return routes
