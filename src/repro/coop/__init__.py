"""Cross-node cooperative search: island topologies + elite migration.

The paper's closing conjecture — that dependent multi-walk with
inter-process communication is hard to make beat the independent scheme —
is tested in-process by :mod:`repro.parallel.cooperative`.  This package
lifts the same elite-pool scheme onto the cluster as an **island model**:

- every node hosts an *island* of walkers around a local
  :class:`~repro.parallel.cooperative.ElitePool`
  (:class:`~repro.coop.island.IslandRunner`);
- islands exchange elite (cost, configuration) pairs over protocol-v6
  ``elite_report`` / ``elite_push`` frames, relayed by the coordinator
  once per migration round;
- who-sends-to-whom is a pluggable, deterministic topology
  (:func:`~repro.coop.topology.migration_routes` — ``ring``, ``islands``,
  ``all_to_all``, ``star``);
- the whole scheme is one JSON-safe knob bundle
  (:class:`~repro.coop.config.CoopConfig`) travelling with the job, and
  degrades gracefully to independent multi-walk when migrations are lost.

Entry points: ``ClusterClient.submit(..., coop=CoopConfig(...))``,
``MultiWalkSolver(executor="coop", ...)``, and
``repro submit --coop --topology ring``.
"""

from repro.coop.config import TOPOLOGIES, CoopConfig
from repro.coop.island import IslandOutcome, IslandRunner, MigrantBatch
from repro.coop.topology import migration_routes

__all__ = [
    "CoopConfig",
    "TOPOLOGIES",
    "IslandRunner",
    "IslandOutcome",
    "MigrantBatch",
    "migration_routes",
]
