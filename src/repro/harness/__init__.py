"""Experiment harness: regenerates every figure and table of the paper.

The pipeline per experiment:

1. ``runner`` collects ``n`` independent sequential solves of each benchmark
   (cached on disk — re-running a benchmark is free);
2. sample times are rescaled to the paper's absolute regime (pure unit
   change; speedup shapes are scale-invariant, see EXPERIMENTS.md);
3. ``figures``/``tables`` push the samples through the platform simulator
   and render ASCII charts/tables mirroring the paper's Figures 1-3 and the
   headline numbers of its Section 3.

Experiment definitions live in :mod:`repro.harness.experiment`; benchmarks
under ``benchmarks/`` are thin wrappers that execute them.
"""

from repro.harness.cache import SampleCache
from repro.harness.experiment import (
    EXPERIMENTS,
    BenchmarkSpec,
    ExperimentSpec,
    get_experiment,
)
from repro.harness.runner import collect_samples, scaled_times
from repro.harness.figures import FigureResult, figure1, figure2, figure3
from repro.harness.tables import TableResult, headline_table, times_table
from repro.harness.report import run_experiment

__all__ = [
    "SampleCache",
    "BenchmarkSpec",
    "ExperimentSpec",
    "EXPERIMENTS",
    "get_experiment",
    "collect_samples",
    "scaled_times",
    "FigureResult",
    "figure1",
    "figure2",
    "figure3",
    "TableResult",
    "headline_table",
    "times_table",
    "run_experiment",
]
