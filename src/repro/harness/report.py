"""End-to-end experiment execution.

``run_experiment("fig1")`` collects (or loads cached) sequential samples for
each benchmark of the experiment, pushes them through the platform
simulation, and returns the rendered figure/table plus the raw artifacts —
what the ``benchmarks/`` targets and the examples print.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.cluster.platforms import get_platform
from repro.errors import ExperimentError
from repro.harness.cache import SampleCache
from repro.harness.experiment import ExperimentSpec, get_experiment
from repro.harness.figures import FigureResult, figure3, _speedup_figure
from repro.harness.runner import collect_samples, scaled_times
from repro.harness.tables import TableResult, headline_table, times_table
from repro.util.rng import as_generator

__all__ = ["ExperimentReport", "gather_experiment_times", "run_experiment"]


@dataclass
class ExperimentReport:
    """Everything one experiment produced."""

    experiment: ExperimentSpec
    sample_times: dict[str, np.ndarray]
    figures: list[FigureResult] = field(default_factory=list)
    tables: list[TableResult] = field(default_factory=list)

    def render(self) -> str:
        parts = [
            f"### Experiment {self.experiment.id} — {self.experiment.title}",
            f"(reproduces: {self.experiment.paper_ref})",
            "",
        ]
        for label, times in self.sample_times.items():
            parts.append(
                f"samples[{label}]: n={len(times)}, "
                f"mean={times.mean():.4g}s, min={times.min():.4g}s, "
                f"max={times.max():.4g}s"
            )
        parts.append("")
        for fig in self.figures:
            parts.append(fig.render())
            parts.append("")
        for table in self.tables:
            parts.append(table.render())
            parts.append("")
        return "\n".join(parts)


def gather_experiment_times(
    spec: ExperimentSpec,
    *,
    cache: SampleCache | None = None,
    n_samples: int | None = None,
) -> dict[str, np.ndarray]:
    """Collect (or load) the rescaled sequential times of every benchmark."""
    out: dict[str, np.ndarray] = {}
    for bench in spec.benchmarks:
        # per-benchmark stream: experiment seed + a digest of the label
        import hashlib

        label_word = int.from_bytes(
            hashlib.sha256(bench.label.encode()).digest()[:4], "big"
        )
        # per-benchmark counts always win; an explicit override replaces
        # only the experiment-level default
        bench_n = bench.n_samples or (n_samples or spec.n_samples)
        samples = collect_samples(
            bench,
            bench_n,
            seed=(spec.seed, label_word),
            cache=cache,
        )
        out[bench.label] = scaled_times(
            samples, bench.target_mean_time, metric=bench.metric
        )
    return out


def run_experiment(
    experiment: str | ExperimentSpec,
    *,
    cache: SampleCache | None = None,
    n_samples: int | None = None,
    sim_reps: int | None = None,
) -> ExperimentReport:
    """Execute one registered experiment end-to-end.

    ``n_samples``/``sim_reps`` override the spec (smaller values make quick
    smoke runs; the benchmark targets use the spec defaults).
    """
    spec = get_experiment(experiment) if isinstance(experiment, str) else experiment
    cache = cache if cache is not None else SampleCache()
    reps = sim_reps or spec.sim_reps
    rng = as_generator(spec.seed)

    sample_times = gather_experiment_times(spec, cache=cache, n_samples=n_samples)
    report = ExperimentReport(experiment=spec, sample_times=sample_times)

    if spec.id in ("fig1", "fig2"):
        platform = get_platform(spec.platforms[0])
        report.figures.append(
            _speedup_figure(
                spec.id,
                spec.title,
                sample_times,
                platform,
                spec.core_counts,
                sim_reps=reps,
                rng=rng,
                parametric_tail=spec.parametric_tail,
                baseline_cores=spec.baseline_cores,
            )
        )
    elif spec.id == "fig3":
        (cap_label,) = [b.label for b in spec.benchmarks]
        report.figures.append(
            figure3(
                sample_times[cap_label],
                spec.core_counts,
                platforms=spec.platforms,
                sim_reps=reps,
                rng=rng,
                parametric_tail=spec.parametric_tail,
            )
        )
    elif spec.id == "tab1":
        platform = get_platform(spec.platforms[0])
        fig = _speedup_figure(
            "tab1-curves",
            spec.title,
            sample_times,
            platform,
            spec.core_counts,
            sim_reps=reps,
            rng=rng,
            parametric_tail=spec.parametric_tail,
        )
        csplib = [c for c in fig.curves if c.label != "costas"]
        cap = next((c for c in fig.curves if c.label == "costas"), None)
        report.tables.append(headline_table(csplib, cap))
    elif spec.id == "tabA":
        for platform_name in spec.platforms:
            report.tables.append(
                times_table(
                    sample_times,
                    platform_name,
                    spec.core_counts,
                    sim_reps=reps,
                    rng=rng,
                    parametric_tail=spec.parametric_tail,
                    table_id=f"tabA/{platform_name}",
                )
            )
    else:
        raise ExperimentError(
            f"experiment {spec.id!r} has no runner; add one in harness.report"
        )
    return report
