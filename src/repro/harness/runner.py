"""Sequential-sample collection.

``collect_samples`` runs one benchmark many times with independent seeds —
the measurement step feeding the platform simulation — with transparent
on-disk caching.  Passing a started :class:`repro.service.SolverService`
runs the samples concurrently on its warm worker pool: each run becomes a
one-walk job carrying the exact per-run seed, so iteration counts (the Las
Vegas cost measure used by the paper experiments) are bit-identical to the
sequential path and the sample cache stays executor-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

import numpy as np

import repro
from repro.core.config import AdaptiveSearchConfig
from repro.core.solver import AdaptiveSearch
from repro.cluster.trace import RunSample, wall_times
from repro.errors import ExperimentError
from repro.harness.cache import SampleCache
from repro.problems.registry import make_problem
from repro.util.rng import SeedLike, spawn_seeds

__all__ = ["BenchmarkSpec", "collect_samples", "scaled_times"]


@dataclass(frozen=True)
class BenchmarkSpec:
    """One benchmark instance inside an experiment.

    ``target_mean_time`` rescales the measured cost metric so its mean
    matches the paper's absolute regime for that benchmark (a pure change
    of time unit; see EXPERIMENTS.md "Time calibration").  ``None`` keeps
    the raw metric.

    ``metric`` selects what "sequential time" means: ``"wall_time"``
    (seconds on this host) or ``"iterations"`` (engine iterations — the
    Las Vegas cost measure).  Iterations are preferred for the paper
    experiments: the C engine spends constant time per iteration with no
    per-run setup, whereas Python wall times of millisecond-scale runs are
    dominated by fixed setup cost, which would fake a runtime floor and
    destroy the min-of-k tail.
    """

    family: str
    params: Mapping[str, Any] = field(default_factory=dict)
    label: str = ""
    target_mean_time: float | None = None
    metric: str = "wall_time"
    #: overrides the experiment's sample count for this benchmark (cheap
    #: benchmarks collect more samples for better tail resolution)
    n_samples: int | None = None

    def __post_init__(self) -> None:
        if self.target_mean_time is not None and self.target_mean_time <= 0:
            raise ExperimentError(
                f"target_mean_time must be > 0, got {self.target_mean_time}"
            )
        if self.n_samples is not None and self.n_samples < 2:
            raise ExperimentError(
                f"n_samples must be >= 2, got {self.n_samples}"
            )
        if self.metric not in ("wall_time", "iterations"):
            raise ExperimentError(
                f"metric must be 'wall_time' or 'iterations', got {self.metric!r}"
            )
        if not self.label:
            object.__setattr__(self, "label", self._default_label())
        # freeze params into a plain dict for hashing stability
        object.__setattr__(self, "params", dict(self.params))

    def _default_label(self) -> str:
        if not self.params:
            return self.family
        inner = ",".join(f"{k}={v}" for k, v in sorted(self.params.items()))
        return f"{self.family}({inner})"

    def make(self):
        return make_problem(self.family, **self.params)


def collect_samples(
    spec: BenchmarkSpec,
    n_runs: int,
    seed: SeedLike = 0,
    *,
    solver_config: AdaptiveSearchConfig | None = None,
    cache: SampleCache | None = None,
    max_iterations: float = 2_000_000,
    time_limit: float = 120.0,
    service: Any = None,
    cluster: Any = None,
    vector_lanes: int | None = None,
) -> list[RunSample]:
    """``n_runs`` independent sequential solves of ``spec``.

    Every run gets its own spawned seed; per-run budgets guard against the
    rare pathological walk (unsolved runs are kept in the sample list but
    excluded from time statistics by default).  ``service`` (a started
    :class:`repro.service.SolverService`) collects the runs concurrently on
    its warm pool instead of one after another in this process; ``cluster``
    (a :class:`repro.net.ClusterClient` or a coordinator address) spreads
    them across a whole multi-node cluster instead; ``vector_lanes`` runs
    the samples as lanes of the NumPy-batched
    :class:`~repro.vector.engine.VectorWalkEngine` (``vector_lanes`` at a
    time, every lane to its own termination).  All three keep per-run seeds
    bit-identical to the sequential path — iteration counts (the Las Vegas
    cost measure) are exactly equal — so the sample cache stays
    executor-agnostic.  Vector-collected wall times are per-lane shares of
    a shared clock; prefer ``metric="iterations"`` with it, as the paper
    experiments do.
    """
    if n_runs <= 0:
        raise ExperimentError(f"n_runs must be >= 1, got {n_runs}")
    if (service is not None) + (cluster is not None) + (
        vector_lanes is not None
    ) > 1:
        raise ExperimentError(
            "pass only one of service=, cluster=, or vector_lanes="
        )
    if vector_lanes is not None and vector_lanes < 1:
        raise ExperimentError(
            f"vector_lanes must be >= 1, got {vector_lanes}"
        )
    base_config = solver_config or AdaptiveSearchConfig()
    config = base_config.replace(
        max_iterations=min(base_config.max_iterations, max_iterations),
        time_limit=min(base_config.time_limit, time_limit),
    )

    cache_spec = {
        "kind": "sequential_samples",
        "version": repro.__version__,
        "family": spec.family,
        "params": spec.params,
        "n_runs": n_runs,
        "seed": repr(seed),
        "config": config,
    }
    if cache is not None:
        cached = cache.load(cache_spec)
        if cached is not None and len(cached) == n_runs:
            return cached

    problem = spec.make()
    from repro.core.value_solver import ValueAdaptiveSearch
    from repro.problems.value_base import ValueProblem

    run_seeds = spawn_seeds(n_runs, seed)
    if service is not None or cluster is not None or vector_lanes is not None:
        if isinstance(problem, ValueProblem):
            raise ExperimentError(
                "service/cluster/vector-backed sampling supports "
                "permutation problems only; collect value-mode samples "
                "sequentially"
            )
        if vector_lanes is not None:
            samples = _collect_via_vector(
                problem, config, run_seeds, vector_lanes
            )
        elif cluster is not None:
            samples = _collect_via_cluster(cluster, problem, config, run_seeds)
        else:
            samples = _collect_via_service(service, problem, config, run_seeds)
    else:
        if isinstance(problem, ValueProblem):
            solver: Any = ValueAdaptiveSearch(config)
        else:
            solver = AdaptiveSearch(config)
        samples = []
        for walk_seed in run_seeds:
            result = solver.solve(problem, seed=walk_seed)
            samples.append(
                RunSample(
                    wall_time=result.stats.wall_time,
                    iterations=result.stats.iterations,
                    solved=result.solved,
                    seed=str(walk_seed.entropy),
                )
            )
    if cache is not None:
        cache.store(cache_spec, samples)
    return samples


def _collect_via_vector(
    problem: Any,
    config: AdaptiveSearchConfig,
    run_seeds: Sequence[np.random.SeedSequence],
    lanes: int,
) -> list[RunSample]:
    """Batches of ``lanes`` runs advanced lock-step by the vector engine.

    ``first_wins=False``: every lane runs to its own termination, exactly
    like independent sequential runs.  Each lane consumes its run's seed
    sequence at the scalar call sites, so iteration counts are
    bit-identical to the sequential path (the equivalence property the
    vector test suite pins down); only wall times differ, as with any
    concurrent executor.
    """
    from repro.vector.engine import VectorWalkEngine

    samples: list[RunSample] = []
    for start in range(0, len(run_seeds), lanes):
        batch = list(run_seeds[start : start + lanes])
        engine = VectorWalkEngine(
            problem,
            k=len(batch),
            config=config,
            seeds=batch,
            first_wins=False,
        )
        outcome = engine.run()
        for walk_seed, result in zip(batch, outcome.walks):
            samples.append(
                RunSample(
                    wall_time=result.stats.wall_time,
                    iterations=result.stats.iterations,
                    solved=result.solved,
                    seed=str(walk_seed.entropy),
                )
            )
    return samples


def _collect_via_service(
    service: Any,
    problem: Any,
    config: AdaptiveSearchConfig,
    run_seeds: Sequence[np.random.SeedSequence],
) -> list[RunSample]:
    """One single-walk job per run, all in flight at once on the warm pool.

    Each job carries its run's exact seed sequence, so every walk is
    trajectory-identical to the sequential path; only wall times differ
    (by host scheduling noise, as with any measurement).
    """
    handles = [
        service.submit(problem, 1, config=config, seeds=[walk_seed])
        for walk_seed in run_seeds
    ]
    samples: list[RunSample] = []
    for walk_seed, handle in zip(run_seeds, handles):
        job = handle.result()
        if not job.walks:
            raise ExperimentError(
                f"service sample run failed ({job.status.value}): {job.error}"
            )
        walk = job.walks[0]
        samples.append(
            RunSample(
                wall_time=walk.wall_time,
                iterations=walk.iterations,
                solved=walk.solved,
                seed=str(walk_seed.entropy),
            )
        )
    return samples


def _collect_via_cluster(
    cluster: Any,
    problem: Any,
    config: AdaptiveSearchConfig,
    run_seeds: Sequence[np.random.SeedSequence],
) -> list[RunSample]:
    """One single-walk job per run, fanned out across the whole cluster.

    Accepts a connected :class:`repro.net.ClusterClient` (caller-owned) or
    a coordinator address (a client is opened for the duration).  Seeds are
    explicit per job, so iteration counts stay bit-identical to the
    sequential path no matter which node executed which run.
    """
    from repro.net.client import ClusterClient

    owned = not isinstance(cluster, ClusterClient)
    client = ClusterClient(cluster).connect() if owned else cluster
    try:
        handles = [
            client.submit(problem, 1, config=config, seeds=[walk_seed])
            for walk_seed in run_seeds
        ]
        samples: list[RunSample] = []
        for walk_seed, handle in zip(run_seeds, handles):
            job = handle.result()
            if not job.walks:
                raise ExperimentError(
                    f"cluster sample run failed ({job.status.value}): "
                    f"{job.error}"
                )
            walk = job.walks[0]
            samples.append(
                RunSample(
                    wall_time=walk.wall_time,
                    iterations=walk.iterations,
                    solved=walk.solved,
                    seed=str(walk_seed.entropy),
                )
            )
        return samples
    finally:
        if owned:
            client.close()


def scaled_times(
    samples: Sequence[RunSample],
    target_mean_time: float | None = None,
    *,
    metric: str = "wall_time",
    min_solved: int = 2,
) -> np.ndarray:
    """Sequential costs of solved runs, optionally rescaled to a target mean.

    ``metric`` picks wall seconds or engine iterations (see
    :class:`BenchmarkSpec`).  Rescaling multiplies every value by a single
    constant (mean maps to ``target_mean_time``), i.e. a unit change that
    leaves the distribution shape — and hence speedups — untouched, while
    making launch-overhead effects comparable to the paper's platforms.
    Iteration counts are clamped to a floor of half an iteration so a
    lucky zero-iteration start does not produce a zero "runtime".
    """
    from repro.cluster.trace import iteration_counts

    if metric == "wall_time":
        times = wall_times(samples, solved_only=True)
    elif metric == "iterations":
        times = np.maximum(iteration_counts(samples, solved_only=True), 0.5)
    else:
        raise ExperimentError(
            f"metric must be 'wall_time' or 'iterations', got {metric!r}"
        )
    if len(times) < min_solved:
        raise ExperimentError(
            f"only {len(times)} solved runs out of {len(samples)}; "
            "not enough to characterize the runtime distribution "
            "(raise per-run budgets or shrink the instance)"
        )
    if target_mean_time is None:
        return times
    mean = times.mean()
    if mean <= 0:
        raise ExperimentError("mean solved cost is zero; cannot rescale")
    return times * (target_mean_time / mean)
