"""Machine-readable experiment artifacts and regression comparison.

The ASCII charts under ``benchmarks/out/`` are for humans; this module
persists the underlying *data* (speedup curves, table rows) as JSON so that
successive reproduction runs can be compared quantitatively — "did the
costas curve move?" becomes a one-call diff instead of eyeballing charts.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Sequence

from repro.errors import CacheError
from repro.stats.speedup import SpeedupCurve

__all__ = [
    "curve_payload",
    "figure_payload",
    "save_manifest",
    "load_manifest",
    "compare_curves",
    "CurveDrift",
]

_FORMAT_VERSION = 1


def curve_payload(curve: SpeedupCurve) -> dict[str, Any]:
    """JSON-safe form of one speedup curve."""
    return {
        "label": curve.label,
        "platform": curve.platform,
        "core_counts": list(curve.core_counts),
        "mean_times": [float(t) for t in curve.mean_times],
        "speedups": [float(s) for s in curve.speedups],
        "baseline_cores": curve.baseline_cores,
        "baseline_time": float(curve.baseline_time),
    }


def figure_payload(figure: Any) -> dict[str, Any]:
    """JSON-safe form of a FigureResult (curves + notes, no chart text)."""
    return {
        "id": figure.id,
        "title": figure.title,
        "curves": [curve_payload(c) for c in figure.curves],
        "notes": list(figure.notes),
    }


def save_manifest(path: str | Path, payload: dict[str, Any]) -> Path:
    """Atomically write a manifest JSON file."""
    path = Path(path)
    document = {"version": _FORMAT_VERSION, "payload": payload}
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as f:
            json.dump(document, f, indent=1)
        os.replace(tmp_name, path)
    except BaseException:
        if os.path.exists(tmp_name):
            os.unlink(tmp_name)
        raise
    return path


def load_manifest(path: str | Path) -> dict[str, Any]:
    """Read a manifest written by :func:`save_manifest`."""
    path = Path(path)
    try:
        with open(path, encoding="utf-8") as f:
            document = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        raise CacheError(f"cannot read manifest {path}: {err}") from err
    if not isinstance(document, dict) or document.get("version") != _FORMAT_VERSION:
        raise CacheError(f"manifest {path} has an unsupported format")
    return document["payload"]


@dataclass(frozen=True)
class CurveDrift:
    """One speedup point that moved between two runs."""

    label: str
    cores: int
    old_speedup: float
    new_speedup: float

    @property
    def ratio(self) -> float:
        if self.old_speedup == 0:
            return float("inf")
        return self.new_speedup / self.old_speedup

    def __str__(self) -> str:
        return (
            f"{self.label}@{self.cores}: {self.old_speedup:.3g} -> "
            f"{self.new_speedup:.3g} ({self.ratio:.2f}x)"
        )


def compare_curves(
    old: Sequence[dict[str, Any]],
    new: Sequence[dict[str, Any]],
    *,
    rel_tol: float = 0.25,
) -> list[CurveDrift]:
    """Speedup points differing by more than ``rel_tol`` between two runs.

    Curves are matched by label; points by core count.  Curves or points
    present on only one side are ignored (they are structural changes, not
    drift).
    """
    if not 0 < rel_tol:
        raise ValueError(f"rel_tol must be > 0, got {rel_tol}")
    old_by_label = {c["label"]: c for c in old}
    drifts: list[CurveDrift] = []
    for curve in new:
        previous = old_by_label.get(curve["label"])
        if previous is None:
            continue
        old_points = dict(zip(previous["core_counts"], previous["speedups"]))
        for cores, speedup in zip(curve["core_counts"], curve["speedups"]):
            if cores not in old_points:
                continue
            old_speedup = old_points[cores]
            if old_speedup <= 0:
                continue
            if abs(speedup - old_speedup) / old_speedup > rel_tol:
                drifts.append(
                    CurveDrift(
                        label=curve["label"],
                        cores=int(cores),
                        old_speedup=float(old_speedup),
                        new_speedup=float(speedup),
                    )
                )
    return drifts
