"""Regeneration of the paper's tabular results."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.cluster.platforms import get_platform
from repro.cluster.simulate import MultiWalkSimulator
from repro.cluster.topology import Platform
from repro.harness.figures import speedup_source
from repro.util.ascii_plot import render_table
from repro.util.rng import SeedLike, as_generator

__all__ = ["TableResult", "times_table", "headline_table"]


@dataclass
class TableResult:
    """A regenerated table: text plus the raw cell data."""

    id: str
    title: str
    text: str
    rows: list[list[object]] = field(default_factory=list)
    headers: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def render(self) -> str:
        parts = [f"== {self.id}: {self.title} ==", self.text]
        parts.extend(self.notes)
        return "\n".join(parts)


def times_table(
    sample_times: Mapping[str, Sequence[float]],
    platform: Platform | str,
    core_counts: Sequence[int] = (16, 32, 64, 128, 256),
    *,
    sim_reps: int = 500,
    rng: SeedLike = None,
    parametric_tail: bool = True,
    table_id: str = "tabA",
) -> TableResult:
    """Execution-time table: sequential mean + mean time per core count.

    Mirrors the per-benchmark time tables of the companion EvoCOP'11 paper
    [1] that Figures 1-2 are derived from.
    """
    platform = get_platform(platform) if isinstance(platform, str) else platform
    gen = as_generator(rng)
    counts = [int(k) for k in core_counts if int(k) <= platform.usable_cores]
    headers = ["benchmark", "seq mean (s)"] + [f"{k} cores" for k in counts]
    rows: list[list[object]] = []
    notes: list[str] = []
    sim = MultiWalkSimulator(platform, gen)
    for label, times in sample_times.items():
        arr = np.asarray(times, dtype=np.float64)
        source = speedup_source(arr, max(counts), parametric_tail)
        runs = sim.expected_times(source, counts, sim_reps)
        seq_mean = float(arr.mean())
        rows.append(
            [label, seq_mean] + [runs[k].mean_time for k in counts]
        )
    text = render_table(
        headers, rows, title=f"mean execution times on {platform.name}"
    )
    return TableResult(
        id=table_id,
        title=f"Execution times on {platform.name}",
        text=text,
        rows=rows,
        headers=headers,
        notes=notes,
    )


def headline_table(
    csplib_curves: Sequence,
    cap_curve=None,
    *,
    checkpoints: Sequence[int] = (64, 128, 256),
) -> TableResult:
    """Section-3 headline numbers.

    The paper claims: "speedups of about 30 with 64 cores, 40 with 128
    cores and more than 50 with 256 cores" (average over the CSPLib
    benchmarks) and, for CAP, "execution times are halved when the number
    of cores is doubled".  This table reports our measured equivalents.
    """
    headers = ["quantity"] + [f"{k} cores" for k in checkpoints]
    rows: list[list[object]] = []
    for curve in csplib_curves:
        rows.append(
            [f"speedup {curve.label}"]
            + [_maybe_speedup(curve, k) for k in checkpoints]
        )
    mean_row: list[object] = ["speedup CSPLib average"]
    for k in checkpoints:
        vals = [
            v
            for v in (_maybe_speedup(curve, k) for curve in csplib_curves)
            if not isinstance(v, str)
        ]
        mean_row.append(float(np.mean(vals)) if vals else "-")
    rows.append(mean_row)

    notes = [
        "paper: 'speedups of about 30 with 64 cores, 40 with 128 cores and "
        "more than 50 with 256 cores'",
    ]
    if cap_curve is not None:
        ratios = []
        for lo, hi in zip(cap_curve.core_counts, cap_curve.core_counts[1:]):
            t_lo = cap_curve.mean_times[cap_curve.core_counts.index(lo)]
            t_hi = cap_curve.mean_times[cap_curve.core_counts.index(hi)]
            ratios.append(f"{lo}->{hi}: {t_lo / t_hi:.2f}x")
        rows.append(["CAP time ratio per core doubling", *(["-"] * (len(checkpoints) - 1)), "; ".join(ratios)])
        notes.append(
            "paper: 'execution times are halved when the number of cores is "
            "doubled' (ratio 2.0 = ideal)"
        )
    text = render_table(headers, rows, title="headline performance numbers")
    return TableResult(
        id="tab1",
        title="Headline speedups (Section 3)",
        text=text,
        rows=rows,
        headers=headers,
        notes=notes,
    )


def _maybe_speedup(curve, cores: int):
    try:
        return curve.speedup_at(cores)
    except KeyError:
        return "-"
