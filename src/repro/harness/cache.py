"""On-disk cache of sequential run samples.

Collecting hundreds of independent solves is the expensive step of every
experiment; the cache keys them by the full provenance (problem spec, solver
configuration, seed, run count, library version) so any change invalidates
cleanly and re-running a benchmark is free.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path
from typing import Any, Mapping, Sequence

import numpy as np

from repro.cluster.trace import RunSample, load_samples, save_samples
from repro.errors import CacheError

__all__ = ["SampleCache", "stable_key"]

DEFAULT_CACHE_DIR = Path(".repro_cache")


def _jsonable(value: Any) -> Any:
    """Normalize values (dataclasses, tuples, numpy scalars) for hashing."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, float):
        # json cannot encode inf/nan portably; stringify them
        return value if np.isfinite(value) else repr(value)
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    return repr(value)


def stable_key(spec: Mapping[str, Any]) -> str:
    """Deterministic 16-hex-digit key of a specification mapping."""
    canonical = json.dumps(_jsonable(spec), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


class SampleCache:
    """Directory of sample files keyed by experiment specification."""

    def __init__(self, cache_dir: str | Path | None = None) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir is not None else DEFAULT_CACHE_DIR

    def path_for(self, spec: Mapping[str, Any]) -> Path:
        return self.cache_dir / f"{stable_key(spec)}.json"

    def load(self, spec: Mapping[str, Any]) -> list[RunSample] | None:
        """Cached samples for ``spec``, or None on miss/corruption."""
        path = self.path_for(spec)
        if not path.exists():
            return None
        try:
            samples, _meta = load_samples(path)
        except CacheError:
            # corrupt entries are treated as misses (and overwritten later)
            return None
        return samples

    def store(
        self, spec: Mapping[str, Any], samples: Sequence[RunSample]
    ) -> Path:
        path = self.path_for(spec)
        save_samples(path, samples, meta=_jsonable(spec))
        return path

    def clear(self) -> int:
        """Delete all cache entries; returns how many were removed."""
        if not self.cache_dir.exists():
            return 0
        count = 0
        for entry in self.cache_dir.glob("*.json"):
            entry.unlink()
            count += 1
        return count
