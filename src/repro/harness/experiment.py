"""Experiment definitions: one entry per figure/table of the paper.

Instance sizes are scaled down from the paper's (Python engine, single-core
measurement host — see DESIGN.md), and each benchmark carries a
``target_mean_time`` calibrating its time unit to the paper's regime; both
choices are recorded in EXPERIMENTS.md next to the measured-vs-paper
comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import ExperimentError
from repro.harness.runner import BenchmarkSpec

__all__ = ["BenchmarkSpec", "ExperimentSpec", "EXPERIMENTS", "get_experiment"]


@dataclass(frozen=True)
class ExperimentSpec:
    """A reproducible experiment keyed by the paper artifact it regenerates.

    ``n_samples`` sequential runs are collected per benchmark; the platform
    simulation then sweeps ``core_counts`` with ``sim_reps`` Monte-Carlo
    repetitions per point.  ``parametric_tail`` switches min-of-k draws to
    the best parametric fit once ``k`` exceeds a quarter of the sample count
    (bootstrap minima floor out near the sample minimum, see
    :meth:`repro.cluster.simulate.MultiWalkSimulator._draw`).
    """

    id: str
    title: str
    paper_ref: str
    description: str
    benchmarks: tuple[BenchmarkSpec, ...]
    core_counts: tuple[int, ...]
    platforms: tuple[str, ...]
    baseline_cores: int = 1
    n_samples: int = 120
    sim_reps: int = 500
    seed: int = 20120225  # PPoPP'12 conference date
    parametric_tail: bool = True

    def __post_init__(self) -> None:
        if not self.benchmarks:
            raise ExperimentError(f"experiment {self.id}: no benchmarks")
        if not self.core_counts or any(k <= 0 for k in self.core_counts):
            raise ExperimentError(
                f"experiment {self.id}: invalid core counts {self.core_counts}"
            )
        if self.baseline_cores <= 0:
            raise ExperimentError(
                f"experiment {self.id}: baseline_cores must be >= 1"
            )
        if self.n_samples < 2:
            raise ExperimentError(f"experiment {self.id}: n_samples must be >= 2")
        if self.sim_reps < 1:
            raise ExperimentError(f"experiment {self.id}: sim_reps must be >= 1")


# ----------------------------------------------------------------------
# the paper's benchmark suite, at reproduction scale
# ----------------------------------------------------------------------
# target_mean_time calibration (EXPERIMENTS.md "Time calibration"):
# CSPLib instances in the paper run for minutes sequentially; CAP n=22 for
# hours ("~1 minute on average with 256 cores" => mean ~ 250 * 60 s).
# metric="iterations": the Las Vegas cost measure, free of Python's per-run
# setup overhead (the C engine's wall time is iterations x a constant).
ALL_INTERVAL = BenchmarkSpec(
    "all_interval",
    {"n": 14},
    label="all-interval",
    target_mean_time=150.0,
    metric="iterations",
)
PERFECT_SQUARE = BenchmarkSpec(
    "perfect_square",
    {},
    label="perfect-square",
    target_mean_time=30.0,
    metric="iterations",
)
MAGIC_SQUARE = BenchmarkSpec(
    "magic_square",
    {"n": 6},
    label="magic-square",
    target_mean_time=240.0,
    metric="iterations",
)
COSTAS = BenchmarkSpec(
    "costas",
    {"n": 12},
    label="costas",
    target_mean_time=15000.0,
    metric="iterations",
    # costas runs are cheap; a larger sample pool sharpens the min-of-k
    # tail that Figure 3's 256-core points depend on
    n_samples=300,
)

CSPLIB_BENCHMARKS = (ALL_INTERVAL, PERFECT_SQUARE, MAGIC_SQUARE)
PAPER_BENCHMARKS = CSPLIB_BENCHMARKS + (COSTAS,)

PAPER_CORE_COUNTS = (16, 32, 64, 128, 256)
CAP_CORE_COUNTS = (32, 64, 128, 256)


EXPERIMENTS: dict[str, ExperimentSpec] = {}


def _register(spec: ExperimentSpec) -> ExperimentSpec:
    if spec.id in EXPERIMENTS:
        raise ExperimentError(f"duplicate experiment id {spec.id!r}")
    EXPERIMENTS[spec.id] = spec
    return spec


FIG1 = _register(
    ExperimentSpec(
        id="fig1",
        title="Speedups on HA8000",
        paper_ref="Figure 1",
        description=(
            "Speedup vs number of cores on the HA8000 supercomputer for "
            "all-interval, perfect-square, magic-square and costas; "
            "1-core baseline."
        ),
        benchmarks=PAPER_BENCHMARKS,
        core_counts=PAPER_CORE_COUNTS,
        platforms=("ha8000",),
    )
)

FIG2 = _register(
    ExperimentSpec(
        id="fig2",
        title="Speedups on Grid'5000 (Suno)",
        paper_ref="Figure 2",
        description=(
            "Same benchmarks and core sweep as Figure 1 on the Grid'5000 "
            "Suno cluster; the paper highlights perfect-square behaving "
            "better here than on HA8000 at 128-256 cores."
        ),
        benchmarks=PAPER_BENCHMARKS,
        core_counts=PAPER_CORE_COUNTS,
        platforms=("grid5000_suno",),
    )
)

FIG3 = _register(
    ExperimentSpec(
        id="fig3",
        title="CAP speedups w.r.t. 32 cores (log-log)",
        paper_ref="Figure 3",
        description=(
            "Costas Array Problem speedups normalized to 32 cores on all "
            "platforms; the paper reports ideal doubling (log-log straight "
            "line of slope 1)."
        ),
        benchmarks=(COSTAS,),
        core_counts=CAP_CORE_COUNTS,
        platforms=("ha8000", "grid5000_suno", "grid5000_helios"),
        baseline_cores=32,
        n_samples=400,
    )
)

TAB1 = _register(
    ExperimentSpec(
        id="tab1",
        title="Headline speedups (Section 3)",
        paper_ref="Section 3 headline numbers",
        description=(
            "Average CSPLib speedups at 64/128/256 cores ('about 30 with 64 "
            "cores, 40 with 128 and more than 50 with 256') and CAP "
            "time-halving ratios per core doubling."
        ),
        benchmarks=PAPER_BENCHMARKS,
        core_counts=(16, 32, 64, 128, 256),
        platforms=("ha8000",),
    )
)

TABA = _register(
    ExperimentSpec(
        id="tabA",
        title="Execution times per core count",
        paper_ref="Companion paper [1] (EvoCOP'11) time tables",
        description=(
            "Mean sequential time and mean parallel time at 16..256 cores "
            "per benchmark and platform — the table form of Figures 1-2."
        ),
        benchmarks=PAPER_BENCHMARKS,
        core_counts=PAPER_CORE_COUNTS,
        platforms=("ha8000", "grid5000_suno"),
    )
)


def get_experiment(experiment_id: str) -> ExperimentSpec:
    """Look up an experiment definition by id (e.g. ``"fig1"``)."""
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None
