"""Regeneration of the paper's figures as ASCII charts + data series."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.cluster.platforms import get_platform
from repro.cluster.topology import Platform
from repro.stats.fitting import best_fit
from repro.stats.speedup import SpeedupCurve, speedup_curve_from_samples
from repro.util.ascii_plot import Series, line_chart, loglog_chart, render_table
from repro.util.rng import SeedLike, as_generator

__all__ = ["FigureResult", "figure1", "figure2", "figure3", "speedup_source"]


@dataclass
class FigureResult:
    """A regenerated figure: chart text + the underlying curves."""

    id: str
    title: str
    chart: str
    curves: list[SpeedupCurve]
    notes: list[str] = field(default_factory=list)

    def render(self) -> str:
        parts = [f"== {self.id}: {self.title} ==", self.chart, ""]
        for curve in self.curves:
            parts.append(
                render_table(
                    ["cores", "mean time (s)", "speedup", "efficiency"],
                    curve.as_rows(),
                    title=f"-- {curve.label} on {curve.platform} "
                    f"(baseline {curve.baseline_cores} core(s), "
                    f"T_base={curve.baseline_time:.4g}s)",
                )
            )
            parts.append("")
        parts.extend(self.notes)
        return "\n".join(parts)


def speedup_source(
    times: Sequence[float],
    max_cores: int,
    parametric_tail: bool,
    candidates: Sequence[str] = ("exponential", "shifted_exponential"),
) -> object:
    """Pick the simulation source for one benchmark's samples.

    Bootstrap minima degenerate once ``k`` approaches the sample count, so
    sweeps whose top core count exceeds a quarter of the samples switch to
    the best-fitting parametric distribution.

    ``candidates`` defaults to the (shifted-)exponential family — the
    standard model for restart-based local-search runtimes (memoryless
    tail, optional floor), and the one whose min-of-k extrapolation is
    reliable.  Heavier-tailed families fitted to a few dozen samples can
    win a KS contest by a hair while grossly distorting the extrapolated
    minimum; pass ``("exponential", "shifted_exponential", "lognormal")``
    to lift the restriction.
    """
    arr = np.asarray(times, dtype=np.float64)
    if parametric_tail and max_cores > len(arr) // 4:
        return best_fit(arr, candidates=candidates)
    return arr


def _speedup_figure(
    figure_id: str,
    title: str,
    sample_times: Mapping[str, Sequence[float]],
    platform: Platform,
    core_counts: Sequence[int],
    *,
    sim_reps: int = 500,
    rng: SeedLike = None,
    parametric_tail: bool = True,
    baseline_cores: int = 1,
    loglog: bool = False,
    include_ideal: bool = True,
) -> FigureResult:
    gen = as_generator(rng)
    counts = [int(k) for k in core_counts if int(k) <= platform.usable_cores]
    notes = []
    if len(counts) != len(list(core_counts)):
        dropped = sorted(set(int(k) for k in core_counts) - set(counts))
        notes.append(
            f"note: core counts {dropped} exceed {platform.name}'s usable "
            f"cores ({platform.usable_cores}) and were dropped"
        )
    curves: list[SpeedupCurve] = []
    for label, times in sample_times.items():
        source = speedup_source(times, max(counts), parametric_tail)
        if not isinstance(source, np.ndarray):
            notes.append(
                f"note: {label}: min-of-k tail simulated from a fitted "
                f"{source.name} distribution "
                f"(KS={source.ks_statistic:.3f}, n={len(times)} samples)"
            )
        curves.append(
            speedup_curve_from_samples(
                label,
                source,
                platform,
                counts,
                n_reps=sim_reps,
                baseline_cores=baseline_cores,
                rng=gen,
            )
        )
    series = [
        Series(curve.label, curve.core_counts, curve.speedups) for curve in curves
    ]
    if include_ideal:
        ideal = [k / baseline_cores for k in counts]
        series.append(Series("ideal", counts, ideal, marker="|"))
    chart_fn = loglog_chart if loglog else line_chart
    chart = chart_fn(
        series,
        title=f"{title} [{platform.name}]",
        xlabel="cores",
        ylabel="speedup",
        width=72,
        height=22,
    )
    return FigureResult(
        id=figure_id, title=title, chart=chart, curves=curves, notes=notes
    )


def figure1(
    sample_times: Mapping[str, Sequence[float]],
    core_counts: Sequence[int] = (16, 32, 64, 128, 256),
    *,
    platform: Platform | None = None,
    sim_reps: int = 500,
    rng: SeedLike = None,
    parametric_tail: bool = True,
) -> FigureResult:
    """Figure 1 — speedups on HA8000, 1-core baseline."""
    return _speedup_figure(
        "fig1",
        "Speedups on HA8000",
        sample_times,
        platform or get_platform("ha8000"),
        core_counts,
        sim_reps=sim_reps,
        rng=rng,
        parametric_tail=parametric_tail,
    )


def figure2(
    sample_times: Mapping[str, Sequence[float]],
    core_counts: Sequence[int] = (16, 32, 64, 128, 256),
    *,
    platform: Platform | None = None,
    sim_reps: int = 500,
    rng: SeedLike = None,
    parametric_tail: bool = True,
) -> FigureResult:
    """Figure 2 — speedups on Grid'5000 (Suno), 1-core baseline."""
    return _speedup_figure(
        "fig2",
        "Speedups on Grid5000 (Suno)",
        sample_times,
        platform or get_platform("grid5000_suno"),
        core_counts,
        sim_reps=sim_reps,
        rng=rng,
        parametric_tail=parametric_tail,
    )


def figure3(
    cap_times: Sequence[float],
    core_counts: Sequence[int] = (32, 64, 128, 256),
    *,
    platforms: Sequence[Platform | str] = ("ha8000", "grid5000_suno", "grid5000_helios"),
    sim_reps: int = 500,
    rng: SeedLike = None,
    parametric_tail: bool = True,
) -> FigureResult:
    """Figure 3 — CAP speedups w.r.t. 32 cores, log-log, every platform.

    The paper reports execution times halving with every core doubling
    (ideal speedup); the log-log chart shows this as straight slope-1 lines.
    """
    gen = as_generator(rng)
    resolved = [
        get_platform(p) if isinstance(p, str) else p for p in platforms
    ]
    curves: list[SpeedupCurve] = []
    notes: list[str] = []
    max_k = max(int(k) for k in core_counts)
    source = speedup_source(cap_times, max_k, parametric_tail)
    if not isinstance(source, np.ndarray):
        notes.append(
            f"note: CAP tail simulated from fitted {source.name} "
            f"(KS={source.ks_statistic:.3f}, n={len(cap_times)} samples)"
        )
    for platform in resolved:
        counts = [int(k) for k in core_counts if int(k) <= platform.usable_cores]
        if len(counts) < 2:
            notes.append(
                f"note: {platform.name} skipped (fewer than 2 usable core counts)"
            )
            continue
        curves.append(
            speedup_curve_from_samples(
                f"CAP/{platform.name}",
                source,
                platform,
                counts,
                n_reps=sim_reps,
                baseline_cores=32,
                rng=gen,
            )
        )
    series = [
        Series(curve.label, curve.core_counts, curve.speedups) for curve in curves
    ]
    all_counts = sorted({k for c in curves for k in c.core_counts})
    series.append(
        Series("ideal", all_counts, [k / 32 for k in all_counts], marker="|")
    )
    chart = loglog_chart(
        series,
        title="CAP speedups w.r.t. 32 cores (log-log)",
        xlabel="cores",
        ylabel="speedup vs 32",
        width=72,
        height=22,
    )
    return FigureResult(
        id="fig3",
        title="CAP speedups w.r.t. 32 cores",
        chart=chart,
        curves=curves,
        notes=notes,
    )
