"""repro — parallel constraint-based local search.

A production-quality reproduction of *Performance Analysis of Parallel
Constraint-Based Local Search* (Abreu, Caniou, Codognet, Diaz, Richoux;
PPoPP 2012): the Adaptive Search solver, the paper's benchmark problems,
an independent multi-walk parallel runtime, simulated HA8000/Grid'5000
platforms, and the statistics/harness machinery that regenerates every
figure and table of the paper.

Quickstart::

    from repro import AdaptiveSearch, make_problem

    problem = make_problem("costas", n=10)
    result = AdaptiveSearch().solve(problem, seed=42)
    print(result.summary())
"""

from repro.core import (
    AdaptiveSearch,
    AdaptiveSearchConfig,
    MinConflicts,
    MinConflictsConfig,
    RandomRestartHillClimbing,
    SolveResult,
    SolveStats,
    TerminationReason,
)
from repro.errors import ReproError
from repro.problems import Problem, available_problems, make_problem

__version__ = "1.0.0"

__all__ = [
    "AdaptiveSearch",
    "AdaptiveSearchConfig",
    "MinConflicts",
    "MinConflictsConfig",
    "RandomRestartHillClimbing",
    "SolveResult",
    "SolveStats",
    "TerminationReason",
    "Problem",
    "make_problem",
    "available_problems",
    "ReproError",
    "__version__",
]
