"""Command-line interface.

Usage (after ``pip install -e .``)::

    python -m repro solve costas --set n=12 --seed 42 --render
    python -m repro solve magic_square --set n=8 --walkers 4 --executor process
    python -m repro sample costas --set n=10 --runs 50
    python -m repro experiment fig1 --samples 40 --reps 200
    python -m repro service jobs.json --workers 4
    python -m repro service --family costas --set n=9 --jobs 8 --walkers 4
    python -m repro coordinator --port 7710
    python -m repro coordinator --port 7711 --standby-of localhost:7710
    python -m repro node --connect localhost:7710,localhost:7711 \
        --reconnect --lease-timeout 2 --workers 8
    python -m repro submit --coordinators localhost:7710,localhost:7711 \
        queens --set n=32 --walkers 8
    python -m repro submit --connect localhost:7710 magic_square --set n=20 \
        --walkers 16 --stats
    python -m repro submit --connect localhost:7710 queens --set n=64 \
        --walkers 8 --trace out/
    python -m repro submit --connect localhost:7710 magic_square --set n=20 \
        --walkers 16 --coop --topology ring
    python -m repro trace out/
    python -m repro autoscale show models.json
    python -m repro autoscale predict models.json costas --size 12 --deadline 2
    python -m repro problems
    python -m repro platforms

Every subcommand prints human-readable text to stdout and returns a
process exit status (0 on success, 1 on a failed solve, 2 on bad usage).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

import numpy as np

from repro import __version__
from repro.core.config import AdaptiveSearchConfig
from repro.core.solver import AdaptiveSearch
from repro.cluster.platforms import PLATFORMS
from repro.cluster.trace import save_samples
from repro.coop import TOPOLOGIES
from repro.errors import ReproError
from repro.harness.cache import SampleCache
from repro.harness.report import run_experiment
from repro.harness.runner import BenchmarkSpec, collect_samples, scaled_times
from repro.parallel import CooperativeMultiWalk, MultiWalkSolver
from repro.problems import available_problems, make_problem
from repro.stats import best_fit

__all__ = ["main", "build_parser"]


def _parse_value(text: str) -> object:
    """Best-effort literal parsing for --set values (int, float, str)."""
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def _parse_params(pairs: Sequence[str]) -> dict[str, object]:
    params: dict[str, object] = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"error: --set expects key=value, got {pair!r}")
        params[key] = _parse_value(value)
    return params


def _solver_config(args: argparse.Namespace) -> AdaptiveSearchConfig:
    kwargs: dict[str, object] = {}
    if args.max_iterations is not None:
        kwargs["max_iterations"] = args.max_iterations
    if args.time_limit is not None:
        kwargs["time_limit"] = args.time_limit
    return AdaptiveSearchConfig(**kwargs)  # type: ignore[arg-type]


def _forward_termination_signals() -> None:
    """Make SIGTERM (and SIGINT explicitly) raise ``KeyboardInterrupt``.

    Long-running commands (``service``, ``coordinator``, ``node``) get one
    cleanup path for both signals: Ctrl-C and ``kill <pid>`` both unwind
    through the command's ``except KeyboardInterrupt`` handler, which shuts
    pools down and reaps worker processes instead of orphaning them.
    """
    import signal

    def _raise(signum: int, frame: object) -> None:
        raise KeyboardInterrupt

    try:
        signal.signal(signal.SIGTERM, _raise)
        signal.signal(signal.SIGINT, _raise)
    except ValueError:  # pragma: no cover - not the main thread (tests)
        pass


def _configure_tracing(args: argparse.Namespace, proc: str) -> None:
    """Install a process recorder writing ``<--trace dir>/<proc>.jsonl``.

    No-op when ``--trace`` was not given, so the default recorder stays
    disabled and traced code paths cost nothing.
    """
    if getattr(args, "trace", None):
        from repro import telemetry

        telemetry.configure(
            trace_dir=args.trace,
            proc=proc,
            milestone_every=getattr(args, "milestone_every", 0) or 0,
        )


# ----------------------------------------------------------------------
# subcommands
# ----------------------------------------------------------------------
def cmd_problems(args: argparse.Namespace) -> int:
    for family in available_problems():
        print(family)
    return 0


def cmd_platforms(args: argparse.Namespace) -> int:
    for key, platform in sorted(PLATFORMS.items()):
        print(f"{key}: {platform}")
    return 0


def cmd_solve(args: argparse.Namespace) -> int:
    from repro.core.value_solver import ValueAdaptiveSearch
    from repro.problems.value_base import ValueProblem

    problem = make_problem(args.family, **_parse_params(args.set))
    config = _solver_config(args)
    _configure_tracing(args, "solve")
    if isinstance(problem, ValueProblem):
        if args.walkers > 1:
            print(
                "error: multi-walk executors support permutation problems "
                "only; run value-mode problems with --walkers 1",
                file=sys.stderr,
            )
            return 2
        result = ValueAdaptiveSearch(config).solve(problem, seed=args.seed)
        print(result.summary())
        if result.solved and args.render and hasattr(problem, "render"):
            print(problem.render(result.config))
        return 0 if result.solved else 1
    if args.walkers <= 1:
        result = AdaptiveSearch(config).solve(problem, seed=args.seed)
        print(result.summary())
        solved, config_vec = result.solved, result.config
    elif args.executor == "cooperative":
        coop = CooperativeMultiWalk(config).solve(
            problem, args.walkers, seed=args.seed
        )
        print(coop.summary())
        solved, config_vec = coop.solved, coop.config
    else:
        parallel = MultiWalkSolver(
            config,
            executor=args.executor,
            poll_every=args.poll_every,
            launch_overhead=args.launch_overhead,
            mp_context=args.mp_context,
            lanes=args.lanes,
        ).solve(problem, args.walkers, seed=args.seed)
        print(parallel.summary())
        solved, config_vec = parallel.solved, parallel.config
    if solved and args.render and hasattr(problem, "render"):
        print(problem.render(config_vec))
    return 0 if solved else 1


def cmd_sample(args: argparse.Namespace) -> int:
    from contextlib import nullcontext

    spec = BenchmarkSpec(args.family, _parse_params(args.set))
    cache = SampleCache(args.cache) if args.cache else None
    if args.service_workers and args.vector_lanes:
        print(
            "error: pass --service-workers or --vector-lanes, not both",
            file=sys.stderr,
        )
        return 2
    if args.service_workers:
        from repro.service import SolverService

        service_cm = SolverService(n_workers=args.service_workers)
    else:
        service_cm = nullcontext()
    with service_cm as service:
        samples = collect_samples(
            spec,
            args.runs,
            seed=args.seed,
            solver_config=_solver_config(args),
            cache=cache,
            service=service,
            vector_lanes=args.vector_lanes or None,
        )
    solved = [s for s in samples if s.solved]
    print(
        f"{spec.label}: {len(solved)}/{len(samples)} runs solved"
    )
    for metric in ("wall_time", "iterations"):
        values = scaled_times(samples, metric=metric)
        # fallback: tiny or constant sample sets print a labeled point
        # mass instead of aborting the whole report
        fit = best_fit(np.maximum(values, 1e-9), on_degenerate="fallback")
        print(
            f"  {metric}: mean={values.mean():.6g} median={np.median(values):.6g} "
            f"min={values.min():.6g} max={values.max():.6g}"
        )
        print(f"  {metric} fit: {fit.summary()}")
    if args.out:
        save_samples(args.out, samples, meta={"spec": spec.label, "runs": args.runs})
        print(f"samples written to {args.out}")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """Run every standalone benchmark script and merge their JSON results.

    A script qualifies if it lives in the benchmarks directory, matches
    ``bench_*.py``, and supports the ``--smoke``/``--json`` convention
    (checked by source inspection, so pytest-benchmark modules are skipped
    rather than run with flags they do not understand).  One merged
    ``BENCH_summary.json`` captures the per-PR perf trajectory.
    """
    import json
    import subprocess
    import time as _time
    from pathlib import Path

    bench_dir = Path(args.dir)
    if not bench_dir.is_dir():
        print(f"error: benchmark directory {bench_dir} not found", file=sys.stderr)
        return 2
    scripts = []
    for path in sorted(bench_dir.glob("bench_*.py")):
        source = path.read_text(encoding="utf-8")
        if '"--smoke"' in source and '"--json"' in source:
            scripts.append(path)
    if not scripts:
        print(f"error: no --smoke/--json benches under {bench_dir}", file=sys.stderr)
        return 2
    if args.only:
        # short aliases for the long ablation-script names
        aliases = {"coop": "abl_cooperation", "ha": "failover"}
        wanted = {aliases.get(name, name) for name in args.only}
        scripts = [p for p in scripts if p.stem.removeprefix("bench_") in wanted]
        missing = wanted - {p.stem.removeprefix("bench_") for p in scripts}
        if missing:
            print(f"error: unknown benches {sorted(missing)}", file=sys.stderr)
            return 2

    summary: dict[str, object] = {
        "smoke": bool(args.smoke),
        "generated_at": _time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "benches": {},
    }
    if args.only:
        # partial run: fold the fresh results into an existing summary so
        # `repro bench --only X` updates one bench without erasing the rest
        try:
            previous = json.loads(Path(args.out).read_text(encoding="utf-8"))
            summary["benches"] = dict(previous.get("benches", {}))
        except (OSError, json.JSONDecodeError):
            pass
    benches: dict[str, object] = summary["benches"]  # type: ignore[assignment]
    all_ok = True
    for script in scripts:
        name = script.stem.removeprefix("bench_")
        json_path = bench_dir / "out" / f"{name}.json"
        cmd = [sys.executable, str(script), "--json", str(json_path)]
        if args.smoke:
            cmd.append("--smoke")
        print(f"[bench] running {script.name} ...", flush=True)
        started = _time.perf_counter()
        try:
            proc = subprocess.run(
                cmd, capture_output=True, text=True, timeout=args.timeout
            )
        except subprocess.TimeoutExpired:
            all_ok = False
            benches[name] = {"status": "timeout", "timeout_s": args.timeout}
            print(f"[bench] {name}: TIMEOUT after {args.timeout:.0f}s")
            continue
        elapsed = _time.perf_counter() - started
        entry: dict[str, object] = {
            "status": "pass" if proc.returncode == 0 else "fail",
            "exit_code": proc.returncode,
            "elapsed_s": round(elapsed, 3),
        }
        try:
            entry["results"] = json.loads(json_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            entry["results"] = None
            if proc.returncode == 0:
                entry["status"] = "fail"
        if entry["status"] != "pass":
            all_ok = False
            tail = "\n".join(
                (proc.stdout + "\n" + proc.stderr).strip().splitlines()[-8:]
            )
            entry["output_tail"] = tail
        benches[name] = entry
        print(
            f"[bench] {name}: {str(entry['status']).upper()} "
            f"({elapsed:.1f}s)"
        )
    summary["pass"] = all_ok and all(
        entry.get("status") == "pass"
        for entry in benches.values()
        if isinstance(entry, dict)
    )
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(summary, indent=2) + "\n", encoding="utf-8")
    print(f"[bench] summary written to {out}")
    return 0 if all_ok else 1


def cmd_service(args: argparse.Namespace) -> int:
    """Batch front-end: run many solve jobs on one warm worker pool."""
    from repro.service import (
        JobSpec,
        SolverService,
        format_results_table,
        load_jobs_file,
        run_specs,
    )

    if args.jobs_file is not None:
        specs = load_jobs_file(args.jobs_file)
    elif args.family is not None:
        specs = [
            JobSpec(
                family=args.family,
                params=_parse_params(args.set),
                walkers=args.walkers,
                seed=args.seed,
                deadline=args.deadline,
                repeat=args.jobs,
            )
        ]
    else:
        print(
            "error: pass a jobs file or --family (see `repro service -h`)",
            file=sys.stderr,
        )
        return 2
    _forward_termination_signals()
    service = SolverService(
        n_workers=args.workers,
        mp_context=args.mp_context,
        poll_every=args.poll_every,
    ).start()
    if args.pid_file:
        from pathlib import Path

        pids = service.pool.worker_pids() if service.pool is not None else []
        Path(args.pid_file).write_text(
            "".join(f"{pid}\n" for pid in pids), encoding="utf-8"
        )
    try:
        rows = run_specs(service, specs, config=_solver_config(args))
        print(format_results_table(rows, service.snapshot()))
    except KeyboardInterrupt:
        # Ctrl-C / SIGTERM: cancel outstanding jobs and reap every worker
        # process before exiting — no orphans survive this path
        print(
            "\ninterrupted: cancelling jobs and shutting the pool down",
            file=sys.stderr,
        )
        service.shutdown(wait_jobs=False)
        return 130
    finally:
        service.shutdown()  # idempotent; covers error exits too
    failed = [r for _, r in rows if r.status.value in ("failed", "timed_out")]
    unsolved = [r for _, r in rows if not r.solved]
    if failed:
        return 1
    return 0 if not unsolved else 1


def cmd_coordinator(args: argparse.Namespace) -> int:
    """Run the cluster coordinator (leader, or hot standby) until interrupted."""
    import asyncio

    from repro.net import Coordinator

    _forward_termination_signals()
    _configure_tracing(args, "coordinator")
    predictor = None
    if args.autoscale:
        from repro.autoscale import ModelStore, Predictor

        predictor = Predictor(ModelStore.open(args.autoscale))
    if args.standby_of:
        return _run_standby(args, predictor)
    coordinator = Coordinator(
        args.host,
        args.port,
        heartbeat_timeout=args.heartbeat_timeout,
        max_redispatch=args.max_redispatch,
        journal_path=args.journal,
        hedge_factor=args.hedge_factor,
        max_hedges=args.max_hedges,
        min_hedge_delay=args.min_hedge_delay,
        predictor=predictor,
        hedge_quantile=args.hedge_quantile,
    )

    async def _serve() -> None:
        host, port = await coordinator.start()
        print(f"coordinator listening on {host}:{port}", flush=True)
        if predictor is not None:
            print(
                f"autoscale models: {args.autoscale} "
                f"({len(predictor.store)} warm)",
                flush=True,
            )
        try:
            await coordinator.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await coordinator.stop()
            if predictor is not None:
                # persist what this run learned from solved walks
                await asyncio.to_thread(predictor.save)

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("coordinator stopped", file=sys.stderr)
    return 0


def _run_standby(args: argparse.Namespace, predictor) -> int:
    """``repro coordinator --standby-of``: mirror the leader, take over.

    The standby tails the leader's journal over the v7 replication
    stream; when the leader's lease goes silent (or the connection
    drops) it promotes itself and serves on this process's --host/--port
    — the second entry of the ordered address list clients and agents
    were started with.
    """
    import asyncio

    from repro.net import StandbyCoordinator

    standby = StandbyCoordinator(
        args.standby_of,
        host=args.host,
        port=args.port,
        journal_path=args.journal,
        lease_timeout=args.lease_timeout,
        coordinator_kwargs=dict(
            heartbeat_timeout=args.heartbeat_timeout,
            max_redispatch=args.max_redispatch,
            hedge_factor=args.hedge_factor,
            max_hedges=args.max_hedges,
            min_hedge_delay=args.min_hedge_delay,
            predictor=predictor,
            hedge_quantile=args.hedge_quantile,
        ),
    )

    async def _serve() -> None:
        host, port = await standby.start()
        print(
            f"standby mirroring leader {standby.leader[0]}:"
            f"{standby.leader[1]} (lease {args.lease_timeout:.1f}s); "
            f"will serve on {host}:{port} after takeover",
            flush=True,
        )
        try:
            await standby.wait_promoted()
            assert standby.coordinator is not None
            print(
                f"promoted ({standby.promote_reason}) in "
                f"{standby.failover_elapsed:.3f}s: coordinator listening "
                f"on {host}:{port}, "
                f"{standby.coordinator.counters['recovered_jobs']} job(s) "
                "recovered",
                flush=True,
            )
            await standby.coordinator.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await standby.stop()
            if predictor is not None:
                await asyncio.to_thread(predictor.save)

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("standby stopped", file=sys.stderr)
    return 0


def cmd_node(args: argparse.Namespace) -> int:
    """Run one node agent against a coordinator until interrupted.

    With ``--reconnect`` the warm worker pool is started once and kept
    across coordinator outages: when the connection drops, a fresh agent
    handshake is retried against the same :class:`SolverService` with
    exponential backoff, so a coordinator restart does not pay the pool
    re-spawn cost on every node.
    """
    import asyncio

    from repro.errors import NetError
    from repro.net import NodeAgent, parse_addresses

    _forward_termination_signals()
    addresses = parse_addresses(args.connect)
    _configure_tracing(args, args.name or "node")

    def _agent(service=None) -> NodeAgent:
        return NodeAgent(
            addresses,
            n_workers=args.workers,
            name=args.name,
            heartbeat_interval=args.heartbeat_interval,
            reconnect=args.reconnect,
            lease_timeout=args.lease_timeout,
            poll_every=args.poll_every,
            mp_context=args.mp_context,
            service=service,
        )

    async def _run_once() -> None:
        agent = _agent()
        try:
            await agent.start()
            print(
                f"node {agent.name} connected to {agent.host}:{agent.port} "
                f"({agent.n_workers} workers)",
                flush=True,
            )
            await agent.closed.wait()
        finally:
            await agent.stop()

    async def _run_reconnecting() -> None:
        from repro.service import SolverService

        service = await asyncio.to_thread(
            lambda: SolverService(
                n_workers=args.workers,
                poll_every=args.poll_every,
                mp_context=args.mp_context,
            ).start()
        )
        delay = 0.5
        try:
            while True:
                agent = _agent(service=service)
                try:
                    await agent.start()
                    delay = 0.5
                    print(
                        f"node {agent.name} connected to "
                        f"{agent.host}:{agent.port} "
                        f"({agent.n_workers} workers)",
                        flush=True,
                    )
                    await agent.closed.wait()
                except NetError as err:
                    print(f"node: {err}", file=sys.stderr)
                finally:
                    await agent.stop()
                print(
                    f"node disconnected; retrying in {delay:.1f}s",
                    file=sys.stderr,
                )
                await asyncio.sleep(delay)
                delay = min(delay * 2, 10.0)
        finally:
            await asyncio.to_thread(service.shutdown, wait_jobs=False)

    try:
        if args.reconnect:
            asyncio.run(_run_reconnecting())
        else:
            asyncio.run(_run_once())
            print("node disconnected", file=sys.stderr)
    except KeyboardInterrupt:
        print("node stopped", file=sys.stderr)
    return 0


def cmd_gateway(args: argparse.Namespace) -> int:
    """Run the solve-as-a-service HTTP/WebSocket gateway until interrupted."""
    import asyncio

    from repro.gateway import AdmissionController, Gateway, TenantRegistry
    from repro.net import parse_address
    from repro.telemetry.recorder import get_recorder

    _forward_termination_signals()
    _configure_tracing(args, "gateway")
    coordinator = parse_address(args.connect)
    if args.keys is not None:
        tenants = TenantRegistry.from_file(args.keys)
    else:
        print(
            "warning: no --keys file; running in anonymous mode "
            "(any API key accepted, shared default quotas)",
            file=sys.stderr,
        )
        tenants = TenantRegistry(allow_anonymous=True)
    predictor = None
    if args.autoscale:
        from repro.autoscale import ModelStore, Predictor

        # warm-start from the file when present; the gateway saves the
        # store back on shutdown so restarts keep what was learned
        predictor = Predictor(ModelStore.open(args.autoscale))
    admission = None
    if args.cost_capacity is not None:
        admission = AdmissionController(
            capacity=args.capacity, cost_capacity=args.cost_capacity
        )
    gateway = Gateway(
        coordinator,
        tenants,
        host=args.host,
        port=args.port,
        capacity=args.capacity,
        predictor=predictor,
        admission=admission,
        cache_entries=args.cache_entries,
        cache_ttl=args.cache_ttl,
        recorder=get_recorder(),
    )

    async def _serve() -> None:
        await gateway.start()
        host, port = gateway.address
        print(
            f"gateway listening on {host}:{port} "
            f"({len(tenants)} tenant(s), capacity {args.capacity}), "
            f"coordinator {coordinator[0]}:{coordinator[1]}",
            flush=True,
        )
        if predictor is not None:
            print(
                f"autoscale models: {args.autoscale} "
                f"({len(predictor.store)} warm)",
                flush=True,
            )
        try:
            await gateway.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await gateway.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("gateway stopped", file=sys.stderr)
    return 0


def _format_cluster_stats(stats: dict) -> str:
    """Cluster-wide throughput/latency table for ``repro submit --stats``."""
    coord = stats["coordinator"]
    lines = [
        "cluster: "
        f"{coord['jobs_completed']}/{coord['jobs_submitted']} jobs done "
        f"({coord['jobs_solved']} solved, {coord['jobs_failed']} failed), "
        f"{coord['walks_dispatched']} walks dispatched, "
        f"{coord['redispatches']} re-dispatch(es), "
        f"{coord['nodes_connected']} node(s) connected "
        f"({coord['nodes_lost']} lost)",
    ]
    header = (
        f"{'node':<16} {'cap':>4}  {'walks':>6}  {'jobs/s':>7}  "
        f"{'p50 ms':>7}  {'p95 ms':>7}  {'util':>5}"
    )
    lines += [header, "-" * len(header)]
    for node in stats["nodes"]:
        load = node.get("load") or {}
        lines.append(
            f"{node['name']:<16.16} {node['capacity']:>4}  "
            f"{load.get('walks_completed', 0):>6}  "
            f"{load.get('throughput_jobs_per_s', 0.0):>7.2f}  "
            f"{load.get('latency_p50', 0.0) * 1e3:>7.1f}  "
            f"{load.get('latency_p95', 0.0) * 1e3:>7.1f}  "
            f"{load.get('worker_utilization', 0.0):>5.0%}"
        )
    return "\n".join(lines)


def cmd_submit(args: argparse.Namespace) -> int:
    """Submit one multi-walk job to a running cluster and wait."""
    from repro.net import ClusterClient

    if not args.connect and not args.coordinators:
        print(
            "error: pass --connect HOST:PORT or --coordinators A:1,B:2",
            file=sys.stderr,
        )
        return 2
    problem = make_problem(args.family, **_parse_params(args.set))
    config = _solver_config(args)
    coop = None
    if args.coop:
        from repro.coop import CoopConfig

        coop = CoopConfig(
            topology=args.topology,
            report_interval=args.report_interval,
            adopt_interval=args.adopt_interval,
            migration_interval=args.migration_interval,
            migration_timeout=args.migration_timeout,
            seed=args.coop_seed,
        )
    _configure_tracing(args, "client")
    if args.coordinators:
        # ordered leader,standby list: failover implies reconnect
        endpoints: object = args.coordinators
        reconnect = True
    else:
        endpoints = args.connect
        reconnect = args.reconnect
    with ClusterClient(endpoints, reconnect=reconnect) as client:
        result = client.solve(
            problem,
            args.walkers,
            seed=args.seed,
            config=config,
            timeout=args.timeout,
            coop=coop,
        )
        print(result.summary())
        if args.stats:
            print(_format_cluster_stats(client.stats()))
        if result.solved and args.render and hasattr(problem, "render"):
            print(problem.render(result.config))
    return 0 if result.solved else 1


def cmd_chaos(args: argparse.Namespace) -> int:
    """Replay deterministic failure drills against an in-process cluster."""
    from repro.chaos import (
        SCENARIO_NAMES,
        plan_from_dict,
        run_custom,
        run_scenario,
    )

    if args.list:
        for name in SCENARIO_NAMES:
            print(name)
        return 0
    if args.file:
        import json
        from pathlib import Path

        from repro.errors import ChaosError

        try:
            spec = json.loads(Path(args.file).read_text())
        except OSError as err:
            raise ChaosError(f"cannot read fault plan: {err}") from err
        except json.JSONDecodeError as err:
            raise ChaosError(
                f"fault plan {args.file} is not valid JSON: {err}"
            ) from err
        plan = plan_from_dict(spec)
        if args.seed:
            plan = plan.reseeded(args.seed)
        report = run_custom(plan)
        print(report.summary())
        return 0 if report.passed else 1
    names = (
        list(SCENARIO_NAMES) if args.scenario == "all" else [args.scenario]
    )
    reports = [run_scenario(name, seed=args.seed) for name in names]
    for report in reports:
        print(report.summary())
    failed = [r.name for r in reports if not r.passed]
    if failed:
        print(f"FAILED: {', '.join(failed)}", file=sys.stderr)
    return 1 if failed else 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Merge per-process trace files and print timeline + latency report."""
    from repro.telemetry import (
        analyze_trace,
        load_trace,
        render_report,
        render_timeline,
    )

    records = load_trace(args.path)
    summary = analyze_trace(records, trace_id=args.trace_id)
    if not args.report_only:
        print(render_timeline(records, summary))
        print()
    print(render_report(summary))
    return 0


def cmd_autoscale(args: argparse.Namespace) -> int:
    """Inspect, query, seed, or export a learned runtime-model store."""
    import json
    from pathlib import Path

    from repro.autoscale import ModelStore, Predictor

    store = ModelStore.open(args.store)

    def _predictor() -> Predictor:
        return Predictor(
            store,
            max_walkers=args.max_walkers,
            min_efficiency=args.min_efficiency,
            confidence=args.confidence,
        )

    def _fmt(value: object) -> str:
        return f"{value:.4g}" if isinstance(value, float) else "-"

    if args.action == "show":
        rows = _predictor().stats()
        if not rows:
            print(f"{args.store}: no models learned yet")
            return 0
        header = (
            f"{'model':<24} {'obs':>6}  {'fit':<20} {'mean s':>9}  "
            f"{'p95 s':>9}  {'plan':>4}  rule"
        )
        print(header)
        print("-" * len(header))
        for key, row in rows.items():
            print(
                f"{key:<24.24} {row['observations']:>6}  "
                f"{(row['fit'] or '-'):<20} {_fmt(row['mean']):>9}  "
                f"{_fmt(row['p95']):>9}  {row.get('plan', '-'):>4}  "
                f"{row.get('rule', '-')}"
            )
        return 0

    if args.action == "predict":
        predictor = _predictor()
        decision = predictor.decide(args.family, args.size, args.deadline)
        source = decision.model or "cold start, built-in defaults"
        print(
            f"plan: {decision.n_walkers} walker(s) "
            f"[{decision.rule} rule, {source}]"
        )
        if decision.hit_probability is not None:
            print(
                f"predicted P(finish <= {args.deadline:g}s) = "
                f"{decision.hit_probability:.3f}"
            )
        delay = predictor.hedge_delay(
            args.family, args.size, quantile=args.quantile
        )
        if delay is not None:
            print(
                f"hedge stragglers after {delay:.4g}s "
                f"(p{args.quantile * 100:g} of learned runtimes)"
            )
        cost = predictor.expected_cost(
            args.family, decision.n_walkers,
            size=args.size, deadline=args.deadline,
        )
        if cost is not None:
            print(f"predicted cost: {cost:.4g} walker-seconds")
        return 0

    if args.action == "seed":
        from repro.cluster.trace import load_samples

        samples, _meta = load_samples(args.samples)
        solved = [s for s in samples if s.solved]
        for sample in solved:
            store.observe(args.family, sample.wall_time, size=args.size)
        store.save()
        skipped = len(samples) - len(solved)
        print(
            f"seeded {len(solved)} solved wall time(s) into {args.store}"
            + (f" ({skipped} unsolved skipped)" if skipped else "")
        )
        return 0

    # export: the raw JSON document (for diffing, backup, or hand-editing)
    text = json.dumps(store.to_json(), indent=2)
    if args.out:
        Path(args.out).write_text(text + "\n", encoding="utf-8")
        print(f"store exported to {args.out}")
    else:
        print(text)
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    from repro.harness.experiment import EXPERIMENTS

    cache = SampleCache(args.cache)
    ids = sorted(EXPERIMENTS) if args.id == "all" else [args.id]
    sections: list[str] = []
    for experiment_id in ids:
        report = run_experiment(
            experiment_id,
            cache=cache,
            n_samples=args.samples,
            sim_reps=args.reps,
        )
        text = report.render()
        print(text)
        sections.append(text)
    if args.out:
        from pathlib import Path

        header = (
            "# Reproduction report — Performance Analysis of Parallel "
            "Constraint-Based Local Search (PPoPP 2012)\n\n"
            "Generated by `python -m repro experiment "
            f"{args.id}`.\n\n```\n"
        )
        Path(args.out).write_text(
            header + "\n\n".join(sections) + "\n```\n", encoding="utf-8"
        )
        print(f"report written to {args.out}")
    return 0


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Parallel constraint-based local search (PPoPP 2012 reproduction)",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    p_problems = sub.add_parser("problems", help="list benchmark families")
    p_problems.set_defaults(func=cmd_problems)

    p_platforms = sub.add_parser("platforms", help="list simulated platforms")
    p_platforms.set_defaults(func=cmd_platforms)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("family", help="problem family (see `repro problems`)")
        p.add_argument(
            "--set",
            action="append",
            default=[],
            metavar="KEY=VALUE",
            help="problem parameter, repeatable (e.g. --set n=12)",
        )
        p.add_argument("--seed", type=int, default=None, help="master seed")
        p.add_argument(
            "--max-iterations", type=float, default=None, help="iteration budget"
        )
        p.add_argument(
            "--time-limit", type=float, default=None, help="seconds budget"
        )

    p_solve = sub.add_parser("solve", help="solve one instance")
    add_common(p_solve)
    p_solve.add_argument(
        "--walkers", type=int, default=1, help="parallel walkers (1 = sequential)"
    )
    p_solve.add_argument(
        "--executor",
        choices=("inline", "process", "cooperative", "vector"),
        default="process",
        help="multi-walk executor when --walkers > 1",
    )
    p_solve.add_argument(
        "--lanes",
        type=int,
        default=None,
        metavar="K",
        help="vector executor: lanes per engine process (default: all "
        "walkers lock-step in this process; less than --walkers runs a "
        "hybrid processes x lanes layout)",
    )
    p_solve.add_argument(
        "--render", action="store_true", help="pretty-print the solution"
    )
    p_solve.add_argument(
        "--poll-every",
        type=int,
        default=128,
        help="process executor: iterations between cancel-event polls",
    )
    p_solve.add_argument(
        "--launch-overhead",
        type=float,
        default=0.0,
        help="inline executor: modelled job-launch latency in seconds",
    )
    p_solve.add_argument(
        "--mp-context",
        choices=("fork", "spawn", "forkserver"),
        default=None,
        help="multiprocessing start method for the process executor",
    )
    p_solve.add_argument(
        "--trace",
        default=None,
        metavar="DIR",
        help="record telemetry (events + spans) as JSONL under this directory",
    )
    p_solve.add_argument(
        "--milestone-every",
        type=int,
        default=0,
        metavar="N",
        help="with --trace: emit an iteration milestone every N iterations",
    )
    p_solve.set_defaults(func=cmd_solve)

    p_sample = sub.add_parser(
        "sample", help="collect independent sequential run samples"
    )
    add_common(p_sample)
    p_sample.add_argument("--runs", type=int, default=50, help="number of runs")
    p_sample.add_argument("--out", default=None, help="write samples JSON here")
    p_sample.add_argument("--cache", default=None, help="sample cache directory")
    p_sample.add_argument(
        "--service-workers",
        type=int,
        default=0,
        help="collect runs concurrently on a warm pool of this many workers "
        "(0 = sequential in-process)",
    )
    p_sample.add_argument(
        "--vector-lanes",
        type=int,
        default=0,
        metavar="K",
        help="collect runs as lanes of the NumPy-batched vector engine, K "
        "at a time (0 = sequential; iteration counts stay bit-identical)",
    )
    p_sample.set_defaults(func=cmd_sample)

    p_bench = sub.add_parser(
        "bench",
        help="run the standalone benchmark scripts and merge their JSON "
        "results into one summary",
    )
    p_bench.add_argument(
        "--smoke",
        action="store_true",
        help="fast CI mode: forward --smoke to every bench",
    )
    p_bench.add_argument(
        "--dir",
        default="benchmarks",
        help="benchmark scripts directory (default ./benchmarks)",
    )
    p_bench.add_argument(
        "--out",
        default="BENCH_summary.json",
        help="merged summary path (default ./BENCH_summary.json)",
    )
    p_bench.add_argument(
        "--only",
        nargs="+",
        default=None,
        metavar="NAME",
        help="run only these benches (names without the bench_ prefix)",
    )
    p_bench.add_argument(
        "--timeout",
        type=float,
        default=900.0,
        help="per-bench wall-clock timeout in seconds",
    )
    p_bench.set_defaults(func=cmd_bench)

    p_service = sub.add_parser(
        "service",
        help="run a batch of solve jobs concurrently on a warm worker pool",
    )
    p_service.add_argument(
        "jobs_file",
        nargs="?",
        default=None,
        help="JSON jobs file (list of {family, params, walkers, seed, "
        "priority, deadline, repeat} objects)",
    )
    p_service.add_argument(
        "--family", default=None, help="problem family (instead of a jobs file)"
    )
    p_service.add_argument(
        "--set",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="problem parameter for --family, repeatable",
    )
    p_service.add_argument(
        "--jobs", type=int, default=1, help="copies of the --family job"
    )
    p_service.add_argument(
        "--walkers", type=int, default=1, help="walkers per job"
    )
    p_service.add_argument("--seed", type=int, default=None, help="master seed")
    p_service.add_argument(
        "--workers", type=int, default=4, help="persistent pool size"
    )
    p_service.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="per-job deadline in seconds",
    )
    p_service.add_argument(
        "--max-iterations", type=float, default=None, help="iteration budget"
    )
    p_service.add_argument(
        "--time-limit", type=float, default=None, help="per-walk seconds budget"
    )
    p_service.add_argument(
        "--poll-every",
        type=int,
        default=64,
        help="iterations between cancel-token polls inside walks",
    )
    p_service.add_argument(
        "--mp-context",
        choices=("fork", "spawn", "forkserver"),
        default=None,
        help="multiprocessing start method for the pool",
    )
    p_service.add_argument(
        "--pid-file",
        default=None,
        help="write the worker process pids here after the pool starts "
        "(one per line; ops/testing hook)",
    )
    p_service.set_defaults(func=cmd_service)

    p_coord = sub.add_parser(
        "coordinator", help="run the distributed-solve coordinator"
    )
    p_coord.add_argument("--host", default="0.0.0.0", help="bind address")
    p_coord.add_argument(
        "--port", type=int, default=7710, help="TCP port (0 = pick a free one)"
    )
    p_coord.add_argument(
        "--heartbeat-timeout",
        type=float,
        default=5.0,
        help="seconds of silence after which a node is declared dead",
    )
    p_coord.add_argument(
        "--max-redispatch",
        type=int,
        default=2,
        help="re-dispatches of a job's walks off dead nodes before it fails",
    )
    p_coord.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="write-ahead job journal; a restarted coordinator given the "
        "same path recovers and re-dispatches in-flight jobs",
    )
    p_coord.add_argument(
        "--hedge-factor",
        type=float,
        default=None,
        metavar="F",
        help="hedge a straggler walk once it runs F times longer than the "
        "median completed walk (default: hedging off)",
    )
    p_coord.add_argument(
        "--max-hedges",
        type=int,
        default=2,
        help="with --hedge-factor: hedged re-dispatches allowed per job",
    )
    p_coord.add_argument(
        "--min-hedge-delay",
        type=float,
        default=0.25,
        metavar="S",
        help="never hedge a walk younger than this many seconds",
    )
    p_coord.add_argument(
        "--autoscale",
        default=None,
        metavar="PATH",
        help="runtime-model store (JSON, created if missing): solved walk "
        "wall times stream into it and it is saved back on shutdown",
    )
    p_coord.add_argument(
        "--hedge-quantile",
        type=float,
        default=None,
        metavar="Q",
        help="with --autoscale: hedge a straggler walk once it outlives "
        "the fitted runtime quantile Q (e.g. 0.95); preferred over "
        "--hedge-factor for families with learned models",
    )
    p_coord.add_argument(
        "--standby-of",
        default=None,
        metavar="HOST:PORT",
        help="run as a hot standby of the leader at this address: mirror "
        "its journal over the v7 replication stream and take over on "
        "this process's --host/--port when the leader's lease lapses",
    )
    p_coord.add_argument(
        "--lease-timeout",
        type=float,
        default=2.0,
        metavar="S",
        help="with --standby-of: seconds of leader-lease silence before "
        "the standby promotes itself",
    )
    p_coord.add_argument(
        "--trace",
        default=None,
        metavar="DIR",
        help="record coordinator telemetry as JSONL under this directory",
    )
    p_coord.set_defaults(func=cmd_coordinator)

    p_node = sub.add_parser(
        "node", help="run one node agent against a coordinator"
    )
    p_node.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT[,HOST:PORT...]",
        help="coordinator address, or an ordered leader,standby list "
        "(with --reconnect the agent re-homes down the list on failover)",
    )
    p_node.add_argument(
        "--lease-timeout",
        type=float,
        default=None,
        metavar="S",
        help="with --reconnect against a v7 coordinator: seconds of "
        "inbound silence before the coordinator is presumed dead and "
        "the agent re-homes (catches leader deaths that deliver no EOF)",
    )
    p_node.add_argument(
        "--workers", type=int, default=2, help="local warm-pool size"
    )
    p_node.add_argument(
        "--name", default=None, help="node name shown in cluster stats"
    )
    p_node.add_argument(
        "--heartbeat-interval",
        type=float,
        default=1.0,
        help="seconds between heartbeat frames",
    )
    p_node.add_argument(
        "--poll-every",
        type=int,
        default=32,
        help="iterations between cancel-token polls inside walks",
    )
    p_node.add_argument(
        "--mp-context",
        choices=("fork", "spawn", "forkserver"),
        default=None,
        help="multiprocessing start method for the local pool",
    )
    p_node.add_argument(
        "--reconnect",
        action="store_true",
        help="keep the warm pool alive across coordinator outages and "
        "re-handshake with exponential backoff instead of exiting",
    )
    p_node.add_argument(
        "--trace",
        default=None,
        metavar="DIR",
        help="record node telemetry as JSONL under this directory",
    )
    p_node.add_argument(
        "--milestone-every",
        type=int,
        default=0,
        metavar="N",
        help="with --trace: emit an iteration milestone every N iterations",
    )
    p_node.set_defaults(func=cmd_node)

    p_gateway = sub.add_parser(
        "gateway",
        help="run the solve-as-a-service HTTP/WebSocket front door over "
        "a cluster coordinator",
    )
    p_gateway.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="coordinator address to submit jobs through",
    )
    p_gateway.add_argument("--host", default="127.0.0.1", help="bind address")
    p_gateway.add_argument(
        "--port", type=int, default=7720, help="HTTP port (0 = pick a free one)"
    )
    p_gateway.add_argument(
        "--keys",
        default=None,
        metavar="PATH",
        help="tenant keys file (JSON or TOML); omitted = anonymous mode",
    )
    p_gateway.add_argument(
        "--capacity",
        type=int,
        default=64,
        help="global in-flight job budget for admission control",
    )
    p_gateway.add_argument(
        "--cache-entries",
        type=int,
        default=1024,
        help="result-cache size (completed seeded jobs)",
    )
    p_gateway.add_argument(
        "--cache-ttl",
        type=float,
        default=3600.0,
        help="result-cache entry lifetime in seconds",
    )
    p_gateway.add_argument(
        "--autoscale",
        default=None,
        metavar="PATH",
        help="runtime-model store (JSON, created if missing): enables "
        "predictive walker planning from learned runtime models; saved "
        "back on shutdown for a warm restart",
    )
    p_gateway.add_argument(
        "--cost-capacity",
        type=float,
        default=None,
        metavar="WS",
        help="with --autoscale: total predicted walker-seconds admitted "
        "in flight before low-priority jobs are shed",
    )
    p_gateway.add_argument(
        "--trace",
        default=None,
        metavar="DIR",
        help="record gateway telemetry as JSONL under this directory",
    )
    p_gateway.set_defaults(func=cmd_gateway)

    p_submit = sub.add_parser(
        "submit", help="submit one multi-walk job to a running cluster"
    )
    add_common(p_submit)
    p_submit.add_argument(
        "--connect",
        metavar="HOST:PORT",
        help="coordinator address",
    )
    p_submit.add_argument(
        "--coordinators",
        default=None,
        metavar="A:1,B:2",
        help="ordered coordinator list (leader first, standbys after); "
        "implies --reconnect so the client re-homes on failover",
    )
    p_submit.add_argument(
        "--walkers", type=int, default=1, help="walks raced across the cluster"
    )
    p_submit.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="seconds to wait for the cluster answer",
    )
    p_submit.add_argument(
        "--stats",
        action="store_true",
        help="print cluster-wide throughput/latency stats after the solve",
    )
    p_submit.add_argument(
        "--render", action="store_true", help="pretty-print the solution"
    )
    p_submit.add_argument(
        "--reconnect",
        action="store_true",
        help="survive coordinator restarts: redial with backoff and "
        "resubmit the in-flight job idempotently",
    )
    p_submit.add_argument(
        "--trace",
        default=None,
        metavar="DIR",
        help="record client-side telemetry as JSONL under this directory "
        "(run the coordinator/nodes with --trace into the same directory "
        "for a full cluster timeline)",
    )
    p_submit.add_argument(
        "--coop",
        action="store_true",
        help="run the walks as cooperating islands (one per node slice) "
        "with cross-node elite migration instead of an independent race",
    )
    p_submit.add_argument(
        "--topology",
        default="ring",
        choices=list(TOPOLOGIES),
        help="coop migration topology (with --coop; default ring)",
    )
    p_submit.add_argument(
        "--report-interval",
        type=int,
        default=64,
        metavar="ITERS",
        help="iterations per synchronized island round (with --coop)",
    )
    p_submit.add_argument(
        "--adopt-interval",
        type=int,
        default=256,
        metavar="ITERS",
        help="minimum iterations between elite adoptions (with --coop)",
    )
    p_submit.add_argument(
        "--migration-interval",
        type=int,
        default=1,
        metavar="ROUNDS",
        help="island rounds between cross-island exchanges (with --coop)",
    )
    p_submit.add_argument(
        "--migration-timeout",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="seconds an island waits for its elite_push before writing "
        "the round off as lost (with --coop)",
    )
    p_submit.add_argument(
        "--coop-seed",
        type=int,
        default=None,
        help="adoption-RNG seed (with --coop; defaults to the job seed)",
    )
    p_submit.set_defaults(func=cmd_submit)

    p_chaos = sub.add_parser(
        "chaos",
        help="replay a deterministic failure drill against a local cluster",
    )
    p_chaos.add_argument(
        "scenario",
        nargs="?",
        default="all",
        help="scenario name (see --list) or 'all'",
    )
    p_chaos.add_argument(
        "--list", action="store_true", help="list the named scenarios"
    )
    p_chaos.add_argument(
        "--seed",
        type=int,
        default=0,
        help="fault-plan seed; the same seed replays the same injections",
    )
    p_chaos.add_argument(
        "--file",
        default=None,
        metavar="PATH",
        help="run a custom fault plan from a JSON file instead of a named "
        "scenario (see repro.chaos.plan_from_dict for the schema)",
    )
    p_chaos.set_defaults(func=cmd_chaos)

    p_trace = sub.add_parser(
        "trace", help="merge recorded trace files into a timeline + report"
    )
    p_trace.add_argument(
        "path",
        help="trace directory (every *.jsonl inside is merged) or one file",
    )
    p_trace.add_argument(
        "--trace-id",
        default=None,
        help="analyze this trace id (default: the one with most events)",
    )
    p_trace.add_argument(
        "--report-only",
        action="store_true",
        help="skip the event timeline; print only the latency report",
    )
    p_trace.set_defaults(func=cmd_trace)

    p_auto = sub.add_parser(
        "autoscale",
        help="inspect and query the learned runtime models behind "
        "predictive walker planning, hedging, and admission",
    )
    auto_sub = p_auto.add_subparsers(dest="action", required=True)

    def add_autoscale_store(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "store", help="model-store JSON path (created if missing)"
        )

    def add_autoscale_knobs(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--max-walkers",
            type=int,
            default=64,
            help="hard ceiling on any planned walker count",
        )
        p.add_argument(
            "--min-efficiency",
            type=float,
            default=0.5,
            help="no-deadline rule: largest k with speedup(k)/k above this",
        )
        p.add_argument(
            "--confidence",
            type=float,
            default=0.9,
            help="deadline rule: smallest k with P(min_k <= deadline) "
            "above this",
        )

    p_auto_show = auto_sub.add_parser(
        "show", help="table of learned models and the plans they imply"
    )
    add_autoscale_store(p_auto_show)
    add_autoscale_knobs(p_auto_show)
    p_auto_show.set_defaults(func=cmd_autoscale)

    p_auto_predict = auto_sub.add_parser(
        "predict",
        help="what would the scheduler do for this family right now?",
    )
    add_autoscale_store(p_auto_predict)
    p_auto_predict.add_argument("family", help="problem family")
    p_auto_predict.add_argument(
        "--size", type=int, default=None, help="instance size (e.g. n)"
    )
    p_auto_predict.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="plan for this deadline in seconds (default: efficiency rule)",
    )
    p_auto_predict.add_argument(
        "--quantile",
        type=float,
        default=0.95,
        help="straggler-hedging quantile to report",
    )
    add_autoscale_knobs(p_auto_predict)
    p_auto_predict.set_defaults(func=cmd_autoscale)

    p_auto_seed = auto_sub.add_parser(
        "seed",
        help="feed solved wall times from a `repro sample --out` JSON "
        "file into the store (offline warm-up)",
    )
    add_autoscale_store(p_auto_seed)
    p_auto_seed.add_argument("samples", help="samples JSON file")
    p_auto_seed.add_argument(
        "--family", required=True, help="family to credit the samples to"
    )
    p_auto_seed.add_argument(
        "--size", type=int, default=None, help="instance size (e.g. n)"
    )
    p_auto_seed.set_defaults(func=cmd_autoscale)

    p_auto_export = auto_sub.add_parser(
        "export", help="dump the store as JSON (backup / diff / hand-edit)"
    )
    add_autoscale_store(p_auto_export)
    p_auto_export.add_argument(
        "--out", default=None, help="write here instead of stdout"
    )
    p_auto_export.set_defaults(func=cmd_autoscale)

    p_exp = sub.add_parser("experiment", help="run a registered experiment")
    p_exp.add_argument(
        "id", help="experiment id (fig1, fig2, fig3, tab1, tabA) or 'all'"
    )
    p_exp.add_argument(
        "--out", default=None, help="also write the report to this file"
    )
    p_exp.add_argument("--samples", type=int, default=None, help="samples override")
    p_exp.add_argument("--reps", type=int, default=None, help="simulation reps")
    p_exp.add_argument(
        "--cache", default=".repro_cache", help="sample cache directory"
    )
    p_exp.set_defaults(func=cmd_experiment)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
