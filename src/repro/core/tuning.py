"""Grid-search tuning of Adaptive Search parameters.

The C library ships hand-tuned parameters per benchmark; this module
productizes the procedure used to derive this reproduction's defaults
(see the ``default_solver_parameters`` docstrings): run a small grid of
configurations over several seeds, score each by median iterations with
unsolved runs charged the full budget, and report the ranking.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

import numpy as np

from repro.core.config import AdaptiveSearchConfig
from repro.core.solver import AdaptiveSearch
from repro.errors import SolverError
from repro.problems.base import Problem
from repro.util.rng import SeedLike, spawn_seeds

__all__ = ["TuningTrial", "TuningResult", "grid_search"]


@dataclass(frozen=True)
class TuningTrial:
    """One parameter combination's measured performance."""

    parameters: Mapping[str, Any]
    median_iterations: float
    solve_rate: float
    mean_iterations: float

    def score(self) -> tuple[float, float]:
        """Sort key: maximize solve rate, then minimize median iterations."""
        return (-self.solve_rate, self.median_iterations)


@dataclass
class TuningResult:
    """Ranked outcome of a grid search."""

    problem_name: str
    trials: list[TuningTrial] = field(default_factory=list)

    @property
    def best(self) -> TuningTrial:
        if not self.trials:
            raise SolverError("grid search produced no trials")
        return min(self.trials, key=lambda t: t.score())

    def best_parameters(self) -> dict[str, Any]:
        return dict(self.best.parameters)

    def as_rows(self) -> list[list[object]]:
        ordered = sorted(self.trials, key=lambda t: t.score())
        return [
            [
                ", ".join(f"{k}={v}" for k, v in sorted(t.parameters.items())),
                t.solve_rate,
                t.median_iterations,
                t.mean_iterations,
            ]
            for t in ordered
        ]


def grid_search(
    problem: Problem,
    grid: Mapping[str, Sequence[Any]],
    *,
    seeds: int = 5,
    max_iterations: float = 100_000,
    time_limit: float = 10.0,
    base_config: AdaptiveSearchConfig | None = None,
    seed: SeedLike = 0,
) -> TuningResult:
    """Evaluate every combination of ``grid`` values on ``problem``.

    ``grid`` maps :class:`AdaptiveSearchConfig` field names to candidate
    values (validated up front).  Every combination runs ``seeds``
    independent walks under the same per-run budget; unsolved runs count
    their full iteration budget, so fragile settings rank last even when
    their lucky runs are fast.
    """
    if not grid:
        raise SolverError("grid_search needs at least one parameter to sweep")
    if seeds < 1:
        raise SolverError(f"seeds must be >= 1, got {seeds}")
    base = base_config or AdaptiveSearchConfig()
    names = sorted(grid)
    for name in names:
        if not list(grid[name]):
            raise SolverError(f"grid for {name!r} is empty")
        # fail fast on unknown/invalid fields
        try:
            base.replace(**{name: list(grid[name])[0]})
        except TypeError as err:
            raise SolverError(
                f"unknown solver parameter {name!r} in grid"
            ) from err

    run_seeds = spawn_seeds(seeds, seed)
    trials: list[TuningTrial] = []
    for combo in itertools.product(*(grid[name] for name in names)):
        params = dict(zip(names, combo))
        config = base.replace(
            max_iterations=min(base.max_iterations, max_iterations),
            time_limit=min(base.time_limit, time_limit),
            **params,
        )
        solver = AdaptiveSearch(config, use_problem_defaults=False)
        iterations: list[float] = []
        solved = 0
        for run_seed in run_seeds:
            result = solver.solve(problem, seed=run_seed)
            solved += result.solved
            iterations.append(
                float(result.stats.iterations)
                if result.solved
                else float(min(max_iterations, 10**12))
            )
        trials.append(
            TuningTrial(
                parameters=params,
                median_iterations=float(np.median(iterations)),
                solve_rate=solved / seeds,
                mean_iterations=float(np.mean(iterations)),
            )
        )
    return TuningResult(problem_name=problem.name, trials=trials)
