"""Random-restart first-improvement hill climbing — the weakest baseline.

Each iteration samples random swaps until one does not worsen the cost (up
to ``max_probes`` attempts); if none is found the walk is considered stuck
and restarts.  Deliberately simple: it calibrates how much the adaptive
machinery (error projection, tabu marks, partial resets) buys on the paper's
benchmarks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.callbacks import CallbackList, IterationInfo
from repro.core.result import SolveResult, SolveStats
from repro.core.termination import Budget, TerminationReason
from repro.errors import SolverError
from repro.problems.base import Problem
from repro.util.rng import SeedLike, as_generator
from repro.util.timing import Stopwatch

__all__ = ["RandomRestartHillClimbing", "RandomRestartConfig"]


@dataclass(frozen=True)
class RandomRestartConfig:
    """Tuning knobs of the hill-climbing baseline."""

    target_cost: float = 0.0
    max_iterations: float = math.inf
    time_limit: float = math.inf
    max_restarts: int = 10**9
    max_probes: int = 0  # 0 = use 2 * n^... resolved per problem as 4n

    def __post_init__(self) -> None:
        if self.max_iterations <= 0:
            raise SolverError(f"max_iterations must be > 0, got {self.max_iterations}")
        if self.time_limit <= 0:
            raise SolverError(f"time_limit must be > 0, got {self.time_limit}")
        if self.max_restarts < 0:
            raise SolverError(f"max_restarts must be >= 0, got {self.max_restarts}")
        if self.target_cost < 0:
            raise SolverError(f"target_cost must be >= 0, got {self.target_cost}")
        if self.max_probes < 0:
            raise SolverError(f"max_probes must be >= 0, got {self.max_probes}")


class RandomRestartHillClimbing:
    """First-improvement hill climbing with restarts on stagnation."""

    name = "random_restart_hc"

    def __init__(self, config: RandomRestartConfig | None = None) -> None:
        self.config = config or RandomRestartConfig()

    def solve(
        self,
        problem: Problem,
        seed: SeedLike = None,
        *,
        callbacks: Optional[Sequence[object]] = None,
        initial_configuration: Optional[np.ndarray] = None,
    ) -> SolveResult:
        cfg = self.config
        rng = as_generator(seed)
        cbs = CallbackList(list(callbacks) if callbacks else [])
        stats = SolveStats()
        budget = Budget.from_limits(cfg.max_iterations, cfg.time_limit)
        stopwatch = Stopwatch().start()

        n = problem.size
        max_probes = cfg.max_probes or 4 * n
        best_cost = math.inf
        best_config: np.ndarray | None = None
        reason: TerminationReason | None = None

        for restart_index in range(cfg.max_restarts + 1):
            if restart_index == 0 and initial_configuration is not None:
                start = np.array(initial_configuration, dtype=np.int64, copy=True)
            else:
                start = problem.random_configuration(rng)
            state = problem.init_state(start)
            if restart_index == 0:
                cbs.on_start(state.config, state.cost)
            else:
                stats.restarts += 1
                cbs.on_restart(restart_index, state.cost)
            if state.cost < best_cost:
                best_cost = state.cost
                best_config = state.copy_config()

            stuck = False
            while not stuck:
                if state.cost <= cfg.target_cost:
                    reason = TerminationReason.SOLVED
                    break
                exhausted = budget.exhausted(stats.iterations)
                if exhausted is not None:
                    reason = exhausted
                    break

                stats.iterations += 1
                it = stats.iterations

                found = False
                i = j = -1
                delta = 0.0
                for _ in range(max_probes):
                    i = int(rng.integers(0, n))
                    j = int(rng.integers(0, n - 1))
                    if j >= i:
                        j += 1
                    delta = problem.swap_delta(state, i, j)
                    if delta < 0:
                        found = True
                        break
                if found:
                    problem.apply_swap(state, i, j)
                    stats.swaps += 1
                else:
                    stats.local_minima += 1
                    stuck = True  # restart

                if state.cost < best_cost:
                    best_cost = state.cost
                    best_config = state.copy_config()
                keep_going = cbs.on_iteration(
                    IterationInfo(
                        iteration=it,
                        cost=state.cost,
                        best_cost=best_cost,
                        selected_variable=i,
                        selected_swap=j if found else -1,
                        delta=delta if found else 0.0,
                        restarts=stats.restarts,
                        resets=stats.resets,
                    )
                )
                if not keep_going:
                    reason = TerminationReason.CANCELLED
                    break

            if reason is not None:
                break

        if reason is None:
            reason = TerminationReason.RESTARTS_EXHAUSTED
        stats.wall_time = stopwatch.stop()
        assert best_config is not None
        solved = reason is TerminationReason.SOLVED
        cbs.on_finish(solved, best_cost)
        return SolveResult(
            solved=solved,
            config=best_config,
            cost=best_cost,
            reason=reason,
            stats=stats,
            problem_name=problem.name,
            solver_name=self.name,
        )
