"""Tuning knobs of the Adaptive Search engine.

Field names mirror the parameters of the original C library (``ad_solver``):

================== ==============================================
C library          here
================== ==============================================
PROB_SELECT_LOC_MIN ``prob_select_loc_min``
FREEZE_LOC_MIN      ``freeze_loc_min``
FREEZE_SWAP         ``freeze_swap``
RESET_LIMIT         ``reset_limit``
RESET_PERCENT       ``reset_fraction`` (a fraction, not a percent)
RESTART_LIMIT       ``restart_limit``
RESTART_MAX         ``max_restarts``
================== ==============================================

Each benchmark supplies its own defaults through
:meth:`repro.problems.base.Problem.default_solver_parameters`, exactly as the
C benchmarks do; explicit user settings always win.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Any, Mapping

from repro.errors import SolverError
from repro.util.validation import check_fraction, check_probability

__all__ = ["AdaptiveSearchConfig"]

_UNSET = object()


@dataclass(frozen=True)
class AdaptiveSearchConfig:
    """Immutable solver configuration.

    Parameters
    ----------
    target_cost:
        stop as soon as the walk reaches a configuration with cost
        ``<= target_cost`` (0 = exact solution).
    max_iterations:
        global iteration budget across all restarts (``inf`` by default —
        walks normally end by solving or by ``time_limit``).
    time_limit:
        wall-clock budget in seconds (``inf`` = none).
    restart_limit:
        iterations allowed within one restart before the walk re-randomizes.
    max_restarts:
        how many re-randomizations are allowed (the first start is free).
        Effectively unbounded by default: the real budget is
        ``max_iterations`` / ``time_limit``, matching the C library where
        runs end by solving or by external limits.
    prob_select_loc_min:
        on a local minimum of the selected variable, probability of taking
        the best non-improving swap anyway instead of freezing the variable.
    freeze_loc_min:
        iterations a variable stays marked (tabu) after causing a local
        minimum that was not accepted.
    freeze_swap:
        extra iterations both variables of an *executed* swap stay marked
        (0 disables, as in most C benchmarks).
    reset_limit:
        number of simultaneously marked variables that triggers a partial
        reset.
    reset_fraction:
        fraction of variables perturbed by a partial reset.
    plateau_is_local_min:
        whether a best swap with delta 0 counts as a local minimum (the C
        library's behaviour) or is always taken.
    """

    target_cost: float = 0.0
    max_iterations: float = math.inf
    time_limit: float = math.inf
    restart_limit: float = math.inf
    max_restarts: int = 1_000_000_000
    prob_select_loc_min: float = 0.5
    freeze_loc_min: int = 1
    freeze_swap: int = 0
    reset_limit: int = 5
    reset_fraction: float = 0.1
    plateau_is_local_min: bool = True

    def __post_init__(self) -> None:
        if self.target_cost < 0:
            raise SolverError(f"target_cost must be >= 0, got {self.target_cost}")
        if self.max_iterations <= 0:
            raise SolverError(
                f"max_iterations must be > 0, got {self.max_iterations}"
            )
        if self.time_limit <= 0:
            raise SolverError(f"time_limit must be > 0, got {self.time_limit}")
        if self.restart_limit <= 0:
            raise SolverError(
                f"restart_limit must be > 0, got {self.restart_limit}"
            )
        if self.max_restarts < 0:
            raise SolverError(f"max_restarts must be >= 0, got {self.max_restarts}")
        try:
            check_probability("prob_select_loc_min", self.prob_select_loc_min)
            check_fraction("reset_fraction", self.reset_fraction)
        except ValueError as err:
            raise SolverError(str(err)) from None
        if self.freeze_loc_min < 0:
            raise SolverError(
                f"freeze_loc_min must be >= 0, got {self.freeze_loc_min}"
            )
        if self.freeze_swap < 0:
            raise SolverError(f"freeze_swap must be >= 0, got {self.freeze_swap}")
        if self.reset_limit < 1:
            raise SolverError(f"reset_limit must be >= 1, got {self.reset_limit}")

    def merged_with(self, defaults: Mapping[str, Any]) -> "AdaptiveSearchConfig":
        """Fill fields from ``defaults`` where the user kept library defaults.

        ``defaults`` usually comes from
        :meth:`Problem.default_solver_parameters`.  A field is overridden
        only when this config still carries the class default, so explicit
        user choices always survive.
        """
        field_defaults = {
            f.name: f.default for f in dataclasses.fields(AdaptiveSearchConfig)
        }
        unknown = set(defaults) - set(field_defaults)
        if unknown:
            raise SolverError(
                f"unknown solver parameter(s) from problem defaults: "
                f"{sorted(unknown)}"
            )
        updates = {
            name: value
            for name, value in defaults.items()
            if getattr(self, name) == field_defaults[name]
        }
        return dataclasses.replace(self, **updates) if updates else self

    def replace(self, **changes: Any) -> "AdaptiveSearchConfig":
        """Functional update returning a new validated config."""
        return dataclasses.replace(self, **changes)
