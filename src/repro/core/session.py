"""Resumable Adaptive Search walks.

:class:`AdaptiveSearchSession` is the stepwise form of the engine: one walk
whose iterations are driven externally in chunks.  It exists for three
consumers:

- :class:`repro.core.solver.AdaptiveSearch` — the run-to-completion wrapper;
- :mod:`repro.parallel.cooperative` — the paper's *future work*: dependent
  multi-walks that interleave many sessions and exchange elite
  configurations between chunks;
- checkpointing — a session can be snapshotted to a plain dict (config,
  marks, counters, RNG state) and resumed later, exactly.

Semantics are identical to the C solver loop: see
:mod:`repro.core.solver` for the algorithm description.
"""

from __future__ import annotations

import math
from typing import Any, Optional, Sequence

import numpy as np

from repro.core.callbacks import CallbackList, IterationInfo
from repro.core.config import AdaptiveSearchConfig
from repro.core.result import SolveStats
from repro.core.selection import argmin_random_tie, masked_argmax_random_tie
from repro.core.termination import TerminationReason
from repro.errors import SolverError
from repro.problems.base import Problem
from repro.util.rng import SeedLike, as_generator
from repro.util.timing import Stopwatch

__all__ = ["AdaptiveSearchSession"]


class AdaptiveSearchSession:
    """One resumable Adaptive Search walk.

    Parameters
    ----------
    problem:
        the instance to solve.
    config:
        a fully resolved configuration (no problem-default merging happens
        here; use :meth:`AdaptiveSearch.effective_config` when needed).
    seed:
        RNG for this walk.
    callbacks:
        optional observers (same protocol as the solver).
    initial_configuration:
        pins the first start; restarts re-randomize.

    The walk advances only inside :meth:`step`; ``stats.wall_time``
    accumulates the time actually spent stepping, so interleaved sessions
    measure their own compute correctly.
    """

    def __init__(
        self,
        problem: Problem,
        config: AdaptiveSearchConfig | None = None,
        seed: SeedLike = None,
        *,
        callbacks: Optional[Sequence[object]] = None,
        initial_configuration: Optional[np.ndarray] = None,
    ) -> None:
        self.problem = problem
        self.config = config or AdaptiveSearchConfig()
        self.rng = as_generator(seed)
        self.callbacks = CallbackList(list(callbacks) if callbacks else [])
        self.stats = SolveStats()
        self.reason: TerminationReason | None = None
        self.best_cost = math.inf
        self.best_config: np.ndarray | None = None
        self._restart_index = 0
        self._restart_iterations = 0
        self._stopwatch = Stopwatch()

        if initial_configuration is not None:
            start = np.array(initial_configuration, dtype=np.int64, copy=True)
        else:
            start = problem.random_configuration(self.rng)
        self.state = problem.init_state(start)
        self.marks = np.zeros(problem.size, dtype=np.int64)
        self.callbacks.on_start(self.state.config, self.state.cost)
        self._track_best()

    # ------------------------------------------------------------------
    # public surface
    # ------------------------------------------------------------------
    @property
    def cost(self) -> float:
        """Cost of the walk's *current* configuration."""
        return self.state.cost

    @property
    def solved(self) -> bool:
        return self.reason is TerminationReason.SOLVED

    @property
    def finished(self) -> bool:
        return self.reason is not None

    def current_config(self) -> np.ndarray:
        return self.state.copy_config()

    @property
    def elapsed(self) -> float:
        """Wall time spent inside :meth:`step` so far."""
        return self._stopwatch.elapsed

    # ------------------------------------------------------------------
    def step(self, max_new_iterations: int) -> TerminationReason | None:
        """Advance up to ``max_new_iterations`` iterations.

        Returns a :class:`TerminationReason` when the walk ends (solved,
        cancelled by a callback, or restarts exhausted) and ``None`` when
        the iteration allowance ran out first.  Restarts and resets do not
        end a step.  Calling ``step`` on a finished session returns its
        reason without advancing.
        """
        if max_new_iterations < 0:
            raise SolverError(
                f"max_new_iterations must be >= 0, got {max_new_iterations}"
            )
        if self.reason is not None:
            return self.reason
        cfg = self.config
        problem = self.problem
        state = self.state
        rng = self.rng
        stats = self.stats
        consumed = 0

        with self._stopwatch:
            while True:
                if state.cost <= cfg.target_cost:
                    return self._finish(TerminationReason.SOLVED)
                if self._restart_iterations >= cfg.restart_limit:
                    if self._restart_index >= cfg.max_restarts:
                        return self._finish(TerminationReason.RESTARTS_EXHAUSTED)
                    self._begin_restart()
                    state = self.state
                    continue
                if consumed >= max_new_iterations:
                    return None
                consumed += 1

                stats.iterations += 1
                self._restart_iterations += 1
                it = stats.iterations

                errors = problem.variable_errors(state)
                eligible = self.marks < it
                if not eligible.any():
                    self._partial_reset(it)
                    continue

                i = masked_argmax_random_tie(errors, eligible, rng)
                deltas = problem.swap_deltas(state, i)
                deltas[i] = math.inf  # never "swap" a variable with itself
                j = argmin_random_tie(deltas, rng)
                delta = float(deltas[j])

                executed = -1
                improving = delta < 0 or (
                    delta == 0 and not cfg.plateau_is_local_min
                )
                if improving:
                    problem.apply_swap(state, i, j)
                    stats.swaps += 1
                    if delta == 0:
                        stats.plateau_moves += 1
                    executed = j
                    if cfg.freeze_swap > 0:
                        self.marks[i] = it + cfg.freeze_swap
                        self.marks[j] = it + cfg.freeze_swap
                else:
                    # local minimum w.r.t. the selected variable: frozen in
                    # *both* branches (as in the C solver — otherwise
                    # accepted degrading moves on the same hot variable turn
                    # the walk into a high-cost random walk)
                    stats.local_minima += 1
                    self.marks[i] = it + cfg.freeze_loc_min
                    stats.frozen_variables += 1
                    if (
                        math.isfinite(delta)
                        and rng.random() < cfg.prob_select_loc_min
                    ):
                        problem.apply_swap(state, i, j)
                        stats.swaps += 1
                        stats.accepted_local_min_moves += 1
                        if delta == 0:
                            stats.plateau_moves += 1
                        executed = j
                        if cfg.freeze_swap > 0:
                            self.marks[j] = it + cfg.freeze_swap
                    else:
                        frozen_now = int((self.marks > it).sum())
                        if frozen_now > cfg.reset_limit:
                            self._partial_reset(it)

                self._track_best()
                keep_going = self.callbacks.on_iteration(
                    IterationInfo(
                        iteration=it,
                        cost=state.cost,
                        best_cost=self.best_cost,
                        selected_variable=i,
                        selected_swap=executed,
                        delta=delta if executed >= 0 else 0.0,
                        restarts=stats.restarts,
                        resets=stats.resets,
                    )
                )
                if not keep_going:
                    return self._finish(TerminationReason.CANCELLED)

    # ------------------------------------------------------------------
    def inject_configuration(
        self, config: np.ndarray, *, count_as_restart: bool = False
    ) -> None:
        """Adopt an external configuration (cooperative multi-walk jump).

        Clears tabu marks and the per-restart iteration counter — the walk
        effectively restarts from the injected point, which is the paper's
        "restart from recorded interesting crossroads".  Finished sessions
        cannot be injected into.
        """
        if self.reason is not None:
            raise SolverError("cannot inject into a finished session")
        self.problem.check_configuration(config)
        self.state = self.problem.init_state(
            np.array(config, dtype=np.int64, copy=True)
        )
        self.marks[:] = 0
        self._restart_iterations = 0
        if count_as_restart:
            self.stats.restarts += 1
            self.callbacks.on_restart(self._restart_index, self.state.cost)
        self._track_best()

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """Portable snapshot of the full walk state (plain dict).

        Restoring with :meth:`from_snapshot` resumes the walk *exactly*:
        configuration, tabu marks, counters, best-so-far and RNG state all
        round-trip.  The problem and configuration objects are not included;
        the caller supplies equal ones on restore.
        """
        import dataclasses

        return {
            "config_vector": self.state.config.tolist(),
            "marks": self.marks.tolist(),
            "stats": dataclasses.asdict(self.stats),
            "best_cost": self.best_cost,
            "best_config": (
                self.best_config.tolist() if self.best_config is not None else None
            ),
            "restart_index": self._restart_index,
            "restart_iterations": self._restart_iterations,
            "reason": self.reason.name if self.reason is not None else None,
            "rng_state": self.rng.bit_generator.state,
        }

    @classmethod
    def from_snapshot(
        cls,
        problem: Problem,
        config: AdaptiveSearchConfig,
        snapshot: dict[str, Any],
        *,
        callbacks: Optional[Sequence[object]] = None,
    ) -> "AdaptiveSearchSession":
        session = cls.__new__(cls)
        session.problem = problem
        session.config = config
        session.callbacks = CallbackList(list(callbacks) if callbacks else [])
        session.rng = np.random.default_rng()
        session.rng.bit_generator.state = snapshot["rng_state"]
        session.stats = SolveStats(**snapshot["stats"])
        session.reason = (
            TerminationReason[snapshot["reason"]]
            if snapshot["reason"] is not None
            else None
        )
        session.best_cost = snapshot["best_cost"]
        session.best_config = (
            np.asarray(snapshot["best_config"], dtype=np.int64)
            if snapshot["best_config"] is not None
            else None
        )
        session._restart_index = snapshot["restart_index"]
        session._restart_iterations = snapshot["restart_iterations"]
        session._stopwatch = Stopwatch()
        session.state = problem.init_state(
            np.asarray(snapshot["config_vector"], dtype=np.int64)
        )
        session.marks = np.asarray(snapshot["marks"], dtype=np.int64)
        return session

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _track_best(self) -> None:
        if self.state.cost < self.best_cost:
            self.best_cost = self.state.cost
            self.best_config = self.state.copy_config()

    def _finish(self, reason: TerminationReason) -> TerminationReason:
        self.reason = reason
        return reason

    def _begin_restart(self) -> None:
        self._restart_index += 1
        self.stats.restarts += 1
        start = self.problem.random_configuration(self.rng)
        self.state = self.problem.init_state(start)
        self.marks[:] = 0
        self._restart_iterations = 0
        self.callbacks.on_restart(self._restart_index, self.state.cost)
        self._track_best()

    def _partial_reset(self, iteration: int) -> None:
        self.problem.partial_reset(
            self.state, self.config.reset_fraction, self.rng
        )
        self.stats.resets += 1
        self.marks[:] = 0
        self.callbacks.on_reset(iteration, self.state.cost)
