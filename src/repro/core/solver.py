"""The Adaptive Search solver (Codognet & Diaz), sequential engine.

One iteration of the method:

1. project constraint errors onto variables and select the *worst*
   non-frozen variable (ties uniformly at random);
2. evaluate the cost change of swapping it with every other position and
   select the best swap (ties uniformly at random);
3. if the best swap improves the cost, execute it; otherwise the variable
   sits on a local minimum: with probability ``prob_select_loc_min`` execute
   the best swap anyway, else *freeze* (mark) the variable for
   ``freeze_loc_min`` iterations;
4. when more than ``reset_limit`` variables are simultaneously frozen,
   perform a *partial reset* (randomly perturb ``reset_fraction`` of the
   configuration and clear all marks);
5. on top of this, classic restarts: after ``restart_limit`` iterations the
   walk re-randomizes completely (up to ``max_restarts`` times).

The loop itself lives in :class:`repro.core.session.AdaptiveSearchSession`
(the resumable form used by the cooperative multi-walk runtime and by
checkpointing); this class is the run-to-completion wrapper that adds
iteration/time budgets and packages a :class:`SolveResult`.

This is the engine the paper runs in ``k`` independent copies; see
:mod:`repro.parallel` for the multi-walk runtime.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.core.config import AdaptiveSearchConfig
from repro.core.result import SolveResult
from repro.core.session import AdaptiveSearchSession
from repro.core.termination import Budget, TerminationReason
from repro.problems.base import Problem
from repro.util.rng import SeedLike

__all__ = ["AdaptiveSearch"]


class AdaptiveSearch:
    """Sequential Adaptive Search engine.

    A solver object is stateless across calls; it only carries its base
    configuration, so one instance may be shared (even across threads).

    Parameters
    ----------
    config:
        base configuration; per-problem defaults from
        :meth:`Problem.default_solver_parameters` fill any field the caller
        left at its class default.
    use_problem_defaults:
        set to False to run the raw configuration exactly as given.
    """

    name = "adaptive_search"

    #: iterations per session step between budget checks (matches the
    #: default time-poll granularity of :class:`Budget`)
    _CHUNK = 64

    def __init__(
        self,
        config: AdaptiveSearchConfig | None = None,
        *,
        use_problem_defaults: bool = True,
    ) -> None:
        self.base_config = config or AdaptiveSearchConfig()
        self.use_problem_defaults = use_problem_defaults

    def effective_config(self, problem: Problem) -> AdaptiveSearchConfig:
        """The configuration that ``solve`` would use for ``problem``."""
        if not self.use_problem_defaults:
            return self.base_config
        return self.base_config.merged_with(problem.default_solver_parameters())

    # ------------------------------------------------------------------
    def session(
        self,
        problem: Problem,
        seed: SeedLike = None,
        *,
        callbacks: Optional[Sequence[object]] = None,
        initial_configuration: Optional[np.ndarray] = None,
    ) -> AdaptiveSearchSession:
        """A resumable walk with this solver's effective configuration."""
        return AdaptiveSearchSession(
            problem,
            self.effective_config(problem),
            seed,
            callbacks=callbacks,
            initial_configuration=initial_configuration,
        )

    def solve(
        self,
        problem: Problem,
        seed: SeedLike = None,
        *,
        callbacks: Optional[Sequence[object]] = None,
        initial_configuration: Optional[np.ndarray] = None,
    ) -> SolveResult:
        """Run the search until solved or a budget is exhausted.

        ``initial_configuration`` pins the first start (restarts still
        re-randomize); by default the first start is random too.
        """
        cfg = self.effective_config(problem)
        session = AdaptiveSearchSession(
            problem,
            cfg,
            seed,
            callbacks=callbacks,
            initial_configuration=initial_configuration,
        )
        budget = Budget.from_limits(cfg.max_iterations, cfg.time_limit)

        reason: TerminationReason | None = None
        while reason is None:
            exhausted = budget.exhausted(session.stats.iterations)
            if exhausted is not None:
                # a solved/finished session takes precedence over budgets
                reason = session.step(0) or exhausted
                break
            remaining = cfg.max_iterations - session.stats.iterations
            chunk = self._CHUNK if math.isinf(remaining) else int(
                min(self._CHUNK, remaining)
            )
            reason = session.step(chunk)

        return self._package(session, reason, problem)

    # ------------------------------------------------------------------
    def _package(
        self,
        session: AdaptiveSearchSession,
        reason: TerminationReason,
        problem: Problem,
    ) -> SolveResult:
        stats = session.stats
        stats.wall_time = session.elapsed
        assert session.best_config is not None
        solved = reason is TerminationReason.SOLVED
        session.callbacks.on_finish(solved, session.best_cost)
        return SolveResult(
            solved=solved,
            config=session.best_config,
            cost=session.best_cost,
            reason=reason,
            stats=stats,
            problem_name=problem.name,
            solver_name=self.name,
        )
