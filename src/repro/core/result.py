"""Solve results and search statistics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from repro.core.termination import TerminationReason

__all__ = ["SolveStats", "SolveResult"]


@dataclass
class SolveStats:
    """Counters accumulated over one solve call (across restarts).

    These mirror the statistics the C library prints per run (iterations,
    local minima, swaps, resets, restarts) and are the raw material for the
    paper's performance tables.
    """

    iterations: int = 0
    swaps: int = 0
    local_minima: int = 0
    plateau_moves: int = 0
    accepted_local_min_moves: int = 0
    frozen_variables: int = 0
    resets: int = 0
    restarts: int = 0
    wall_time: float = 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "iterations": self.iterations,
            "swaps": self.swaps,
            "local_minima": self.local_minima,
            "plateau_moves": self.plateau_moves,
            "accepted_local_min_moves": self.accepted_local_min_moves,
            "frozen_variables": self.frozen_variables,
            "resets": self.resets,
            "restarts": self.restarts,
            "wall_time": self.wall_time,
        }


@dataclass
class SolveResult:
    """Outcome of one (sequential) solve.

    Attributes
    ----------
    solved:
        whether ``cost <= target_cost`` was reached.
    config:
        the best configuration seen (the solution when ``solved``).
    cost:
        cost of ``config``.
    reason:
        why the search stopped.
    stats:
        search counters (see :class:`SolveStats`).
    problem_name / solver_name / seed_info:
        provenance for reports and caches.
    """

    solved: bool
    config: np.ndarray
    cost: float
    reason: TerminationReason
    stats: SolveStats
    problem_name: str = ""
    solver_name: str = ""
    seed_info: str = ""
    extra: Mapping[str, Any] = field(default_factory=dict)

    @property
    def wall_time(self) -> float:
        """Convenience alias for ``stats.wall_time``."""
        return self.stats.wall_time

    @property
    def iterations(self) -> int:
        """Convenience alias for ``stats.iterations``."""
        return self.stats.iterations

    def summary(self) -> str:
        """One-line human-readable result description."""
        status = "SOLVED" if self.solved else f"cost={self.cost:g}"
        return (
            f"{self.problem_name or 'problem'}: {status} "
            f"in {self.stats.iterations} iterations "
            f"({self.stats.wall_time:.3f}s, {self.stats.restarts} restarts, "
            f"{self.stats.resets} resets, reason={self.reason.name})"
        )
