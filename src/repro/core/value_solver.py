"""Adaptive Search in value-move mode (general, non-permutation CSPs).

Same method as :class:`repro.core.solver.AdaptiveSearch` with the swap
neighbourhood replaced by single-variable assignments, mirroring the C
library's non-``Is_Permut`` mode:

1. select the worst non-frozen variable by projected error;
2. evaluate every domain value for it, select the best (ties random);
3. improving → assign; otherwise the local-minimum machinery applies
   (probabilistic acceptance, freezing, partial resets, restarts).

The configuration object is shared with the swap engine
(:class:`AdaptiveSearchConfig`) — the tunables mean the same things.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.core.callbacks import CallbackList, IterationInfo
from repro.core.config import AdaptiveSearchConfig
from repro.core.result import SolveResult, SolveStats
from repro.core.selection import argmin_random_tie, masked_argmax_random_tie
from repro.core.termination import Budget, TerminationReason
from repro.problems.value_base import ValueProblem
from repro.util.rng import SeedLike, as_generator
from repro.util.timing import Stopwatch

__all__ = ["ValueAdaptiveSearch"]


class ValueAdaptiveSearch:
    """Sequential Adaptive Search over value-change neighbourhoods."""

    name = "value_adaptive_search"

    def __init__(
        self,
        config: AdaptiveSearchConfig | None = None,
        *,
        use_problem_defaults: bool = True,
    ) -> None:
        self.base_config = config or AdaptiveSearchConfig()
        self.use_problem_defaults = use_problem_defaults

    def effective_config(self, problem: ValueProblem) -> AdaptiveSearchConfig:
        if not self.use_problem_defaults:
            return self.base_config
        return self.base_config.merged_with(problem.default_solver_parameters())

    # ------------------------------------------------------------------
    def solve(
        self,
        problem: ValueProblem,
        seed: SeedLike = None,
        *,
        callbacks: Optional[Sequence[object]] = None,
        initial_configuration: Optional[np.ndarray] = None,
    ) -> SolveResult:
        cfg = self.effective_config(problem)
        rng = as_generator(seed)
        cbs = CallbackList(list(callbacks) if callbacks else [])
        stats = SolveStats()
        budget = Budget.from_limits(cfg.max_iterations, cfg.time_limit)
        stopwatch = Stopwatch().start()

        n = problem.size
        best_cost = math.inf
        best_config: np.ndarray | None = None
        reason: TerminationReason | None = None

        for restart_index in range(cfg.max_restarts + 1):
            if restart_index == 0 and initial_configuration is not None:
                start = np.array(initial_configuration, dtype=np.int64, copy=True)
            else:
                start = problem.random_configuration(rng)
            state = problem.init_state(start)
            if restart_index == 0:
                cbs.on_start(state.config, state.cost)
            else:
                stats.restarts += 1
                cbs.on_restart(restart_index, state.cost)
            if state.cost < best_cost:
                best_cost = state.cost
                best_config = state.copy_config()

            marks = np.zeros(n, dtype=np.int64)
            restart_iterations = 0

            while True:
                if state.cost <= cfg.target_cost:
                    reason = TerminationReason.SOLVED
                    break
                exhausted = budget.exhausted(stats.iterations)
                if exhausted is not None:
                    reason = exhausted
                    break
                if restart_iterations >= cfg.restart_limit:
                    break

                stats.iterations += 1
                restart_iterations += 1
                it = stats.iterations

                errors = problem.variable_errors(state)
                eligible = marks < it
                if not eligible.any():
                    problem.partial_reset(state, cfg.reset_fraction, rng)
                    stats.resets += 1
                    marks[:] = 0
                    cbs.on_reset(it, state.cost)
                    continue

                var = masked_argmax_random_tie(errors, eligible, rng)
                values = problem.domain_values(var)
                deltas = problem.value_deltas(state, var)
                current = int(state.config[var])
                # never "move" to the current value
                current_mask = values == current
                deltas = deltas.astype(np.float64)
                deltas[current_mask] = math.inf
                choice = argmin_random_tie(deltas, rng)
                delta = float(deltas[choice])
                value = int(values[choice])

                executed = -1
                improving = delta < 0 or (
                    delta == 0 and not cfg.plateau_is_local_min
                )
                if improving:
                    problem.apply_assign(state, var, value)
                    stats.swaps += 1
                    if delta == 0:
                        stats.plateau_moves += 1
                    executed = choice
                else:
                    stats.local_minima += 1
                    marks[var] = it + cfg.freeze_loc_min
                    stats.frozen_variables += 1
                    if (
                        math.isfinite(delta)
                        and rng.random() < cfg.prob_select_loc_min
                    ):
                        problem.apply_assign(state, var, value)
                        stats.swaps += 1
                        stats.accepted_local_min_moves += 1
                        if delta == 0:
                            stats.plateau_moves += 1
                        executed = choice
                    else:
                        frozen_now = int((marks > it).sum())
                        if frozen_now > cfg.reset_limit:
                            problem.partial_reset(state, cfg.reset_fraction, rng)
                            stats.resets += 1
                            marks[:] = 0
                            cbs.on_reset(it, state.cost)

                if state.cost < best_cost:
                    best_cost = state.cost
                    best_config = state.copy_config()

                keep_going = cbs.on_iteration(
                    IterationInfo(
                        iteration=it,
                        cost=state.cost,
                        best_cost=best_cost,
                        selected_variable=var,
                        selected_swap=executed,
                        delta=delta if executed >= 0 else 0.0,
                        restarts=stats.restarts,
                        resets=stats.resets,
                    )
                )
                if not keep_going:
                    reason = TerminationReason.CANCELLED
                    break

            if reason is not None:
                break

        if reason is None:
            reason = TerminationReason.RESTARTS_EXHAUSTED
        stats.wall_time = stopwatch.stop()
        assert best_config is not None
        solved = reason is TerminationReason.SOLVED
        cbs.on_finish(solved, best_cost)
        return SolveResult(
            solved=solved,
            config=best_config,
            cost=best_cost,
            reason=reason,
            stats=stats,
            problem_name=problem.name,
            solver_name=self.name,
        )
