"""Random-tie-breaking selection primitives.

Adaptive Search repeatedly needs "the index of the maximum (or minimum)
entry, ties broken uniformly at random" — deterministic ``argmax`` would bias
walks toward low indices and, worse, make supposedly independent parallel
walks correlated through shared tie-breaking.  These helpers are the only
place the solver draws selection randomness.
"""

from __future__ import annotations

import numpy as np

__all__ = ["argmax_random_tie", "argmin_random_tie", "masked_argmax_random_tie"]


def argmax_random_tie(values: np.ndarray, rng: np.random.Generator) -> int:
    """Index of a maximal entry, ties broken uniformly."""
    values = np.asarray(values)
    if values.size == 0:
        raise ValueError("argmax of empty array")
    best = values.max()
    candidates = np.flatnonzero(values == best)
    if len(candidates) == 1:
        return int(candidates[0])
    return int(candidates[rng.integers(0, len(candidates))])


def argmin_random_tie(values: np.ndarray, rng: np.random.Generator) -> int:
    """Index of a minimal entry, ties broken uniformly."""
    values = np.asarray(values)
    if values.size == 0:
        raise ValueError("argmin of empty array")
    best = values.min()
    candidates = np.flatnonzero(values == best)
    if len(candidates) == 1:
        return int(candidates[0])
    return int(candidates[rng.integers(0, len(candidates))])


def masked_argmax_random_tie(
    values: np.ndarray, mask: np.ndarray, rng: np.random.Generator
) -> int:
    """Index of a maximal entry among ``mask``-true positions (random ties).

    Raises :class:`ValueError` when the mask admits no candidate.
    """
    values = np.asarray(values)
    mask = np.asarray(mask, dtype=bool)
    if values.shape != mask.shape:
        raise ValueError(
            f"values shape {values.shape} != mask shape {mask.shape}"
        )
    eligible = np.flatnonzero(mask)
    if eligible.size == 0:
        raise ValueError("mask admits no candidate")
    sub = values[eligible]
    best = sub.max()
    candidates = eligible[sub == best]
    if len(candidates) == 1:
        return int(candidates[0])
    return int(candidates[rng.integers(0, len(candidates))])
