"""Termination bookkeeping for the search loops."""

from __future__ import annotations

import enum
import math
import time
from dataclasses import dataclass

__all__ = ["TerminationReason", "Budget"]


class TerminationReason(enum.Enum):
    """Why a solve call returned."""

    SOLVED = "solved"
    MAX_ITERATIONS = "max_iterations"
    TIME_LIMIT = "time_limit"
    RESTARTS_EXHAUSTED = "restarts_exhausted"
    CANCELLED = "cancelled"  # another walk finished first (multi-walk)


@dataclass
class Budget:
    """Shared iteration/time budget checked inside the search loop.

    ``deadline`` is an absolute :func:`time.perf_counter` timestamp so
    repeated checks cost one subtraction.  Time is only polled every
    ``check_every`` iterations to keep the hot loop cheap.
    """

    max_iterations: float = math.inf
    deadline: float = math.inf
    check_every: int = 64

    @classmethod
    def from_limits(
        cls, max_iterations: float = math.inf, time_limit: float = math.inf
    ) -> "Budget":
        deadline = math.inf if math.isinf(time_limit) else time.perf_counter() + time_limit
        return cls(max_iterations=max_iterations, deadline=deadline)

    def exhausted(self, iterations: int) -> TerminationReason | None:
        """Return the exhaustion reason, or None if budget remains."""
        if iterations >= self.max_iterations:
            return TerminationReason.MAX_ITERATIONS
        if (
            self.deadline is not math.inf
            and iterations % self.check_every == 0
            and time.perf_counter() >= self.deadline
        ):
            return TerminationReason.TIME_LIMIT
        return None
