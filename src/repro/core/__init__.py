"""The Adaptive Search engine and baseline solvers.

:class:`AdaptiveSearch` re-implements the sequential constraint-based local
search of Codognet & Diaz (SAGA'01, MIC'03) that the paper parallelizes:
iterated worst-variable / best-move descent with per-variable tabu marks,
plateau handling, partial random resets and full restarts.

Baselines :class:`MinConflicts` and :class:`RandomRestartHillClimbing` share
the problem protocol and the result types so experiments can compare engines
head-to-head.
"""

from repro.core.config import AdaptiveSearchConfig
from repro.core.result import SolveResult, SolveStats
from repro.core.solver import AdaptiveSearch
from repro.core.session import AdaptiveSearchSession
from repro.core.value_solver import ValueAdaptiveSearch
from repro.core.tuning import TuningResult, TuningTrial, grid_search
from repro.core.minconflicts import MinConflicts, MinConflictsConfig
from repro.core.random_restart import (
    RandomRestartHillClimbing,
    RandomRestartConfig,
)
from repro.core.termination import TerminationReason
from repro.core.callbacks import IterationInfo, SearchCallback

__all__ = [
    "AdaptiveSearch",
    "AdaptiveSearchSession",
    "ValueAdaptiveSearch",
    "grid_search",
    "TuningResult",
    "TuningTrial",
    "AdaptiveSearchConfig",
    "MinConflicts",
    "MinConflictsConfig",
    "RandomRestartHillClimbing",
    "RandomRestartConfig",
    "SolveResult",
    "SolveStats",
    "TerminationReason",
    "SearchCallback",
    "IterationInfo",
]
