"""Search instrumentation and fitness-landscape probes.

Two kinds of tooling:

- callbacks (:class:`MoveHistogram`, :class:`BestCostTimeline`) that attach
  to any solver run and decompose *what the walk actually did* — the move
  mix is how the C library's authors tuned the per-benchmark parameters;
- stateless landscape probes (:func:`improving_move_density`,
  :func:`cost_autocorrelation`) measuring why a benchmark is easy or hard
  for swap-neighbourhood local search: dense improving moves and smooth
  (high-autocorrelation) landscapes favour descent, rugged ones force the
  tabu/reset machinery to carry the search.

These are *analysis* tools: they accumulate rich in-process state for a
single attended run.  Operational observability — structured events,
spans, counters/histograms shared across solver, pool and cluster — lives
in :mod:`repro.telemetry`; :meth:`MoveHistogram.publish` bridges the two
by exporting the move mix into a telemetry
:class:`~repro.telemetry.metrics.MetricsRegistry`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.callbacks import IterationInfo
from repro.problems.base import Problem
from repro.util.rng import SeedLike, as_generator

__all__ = [
    "MoveHistogram",
    "BestCostTimeline",
    "improving_move_density",
    "cost_autocorrelation",
]


@dataclass
class MoveHistogram:
    """Counts the walk's move mix (attachable solver callback).

    ``frozen`` counts iterations that executed no swap (the variable was
    marked tabu instead); executed swaps split by their cost delta.
    """

    improving: int = 0
    plateau: int = 0
    worsening: int = 0
    frozen: int = 0

    def on_iteration(self, info: IterationInfo) -> None:
        if info.selected_swap < 0:
            self.frozen += 1
        elif info.delta < 0:
            self.improving += 1
        elif info.delta == 0:
            self.plateau += 1
        else:
            self.worsening += 1

    @property
    def total(self) -> int:
        return self.improving + self.plateau + self.worsening + self.frozen

    def fractions(self) -> dict[str, float]:
        """Move-type fractions (all zero for an empty histogram)."""
        total = self.total or 1
        return {
            "improving": self.improving / total,
            "plateau": self.plateau / total,
            "worsening": self.worsening / total,
            "frozen": self.frozen / total,
        }

    def summary(self) -> str:
        f = self.fractions()
        return (
            f"{self.total} iterations: {f['improving']:.1%} improving, "
            f"{f['plateau']:.1%} plateau, {f['worsening']:.1%} worsening, "
            f"{f['frozen']:.1%} frozen"
        )

    def publish(self, registry) -> None:
        """Export the move mix as ``solver.moves_<kind>`` counters.

        ``registry`` is a :class:`repro.telemetry.metrics.MetricsRegistry`;
        counters are get-or-create, so repeated publishes from many walks
        accumulate into one process-wide move profile.
        """
        for kind in ("improving", "plateau", "worsening", "frozen"):
            count = getattr(self, kind)
            if count:
                registry.counter(f"solver.moves_{kind}").inc(count)


@dataclass
class BestCostTimeline:
    """Records ``(iteration, best_cost)`` whenever the best improves."""

    points: list[tuple[int, float]] = field(default_factory=list)

    def on_start(self, config: np.ndarray, cost: float) -> None:
        self.points.append((0, cost))

    def on_iteration(self, info: IterationInfo) -> None:
        # a timeline attached mid-run (``on_start`` never called) seeds
        # itself from the first iteration it sees; the empty check is
        # explicit so recording does not depend on short-circuit ordering
        # against the improvement comparison below
        if not self.points:
            self.points.append((info.iteration, info.best_cost))
            return
        if info.best_cost < self.points[-1][1]:
            self.points.append((info.iteration, info.best_cost))

    @property
    def final_best(self) -> float:
        return self.points[-1][1] if self.points else float("inf")

    def iterations_to(self, cost: float) -> int | None:
        """First iteration at which the best reached ``cost`` (or better)."""
        for iteration, best in self.points:
            if best <= cost:
                return iteration
        return None


def improving_move_density(
    problem: Problem,
    n_configs: int = 30,
    rng: SeedLike = None,
    *,
    max_pairs: int = 2000,
) -> float:
    """Fraction of swap moves that strictly improve, at random configs.

    Samples ``n_configs`` uniform configurations; for each, evaluates up to
    ``max_pairs`` random swap pairs.  High density ⇒ plain descent thrives;
    near-zero density ⇒ the adaptive machinery does the work.
    """
    if n_configs < 1:
        raise ValueError(f"n_configs must be >= 1, got {n_configs}")
    if max_pairs < 1:
        raise ValueError(f"max_pairs must be >= 1, got {max_pairs}")
    gen = as_generator(rng)
    n = problem.size
    improving = 0
    evaluated = 0
    for _ in range(n_configs):
        state = problem.init_state(problem.random_configuration(gen))
        total_pairs = n * (n - 1) // 2
        budget = min(max_pairs, total_pairs)
        for _ in range(budget):
            i = int(gen.integers(0, n))
            j = int(gen.integers(0, n - 1))
            if j >= i:
                j += 1
            if problem.swap_delta(state, i, j) < 0:
                improving += 1
            evaluated += 1
    return improving / evaluated


def cost_autocorrelation(
    problem: Problem,
    walk_length: int = 2000,
    max_lag: int = 50,
    rng: SeedLike = None,
) -> np.ndarray:
    """Cost autocorrelation along a uniform random swap walk.

    Returns ``rho[0..max_lag]`` (``rho[0] = 1``).  The correlation length
    ``-1/ln(rho[1])`` is the classic ruggedness measure (Weinberger):
    smooth landscapes decay slowly, rugged ones immediately.
    """
    if walk_length <= max_lag + 1:
        raise ValueError("walk_length must exceed max_lag + 1")
    gen = as_generator(rng)
    n = problem.size
    state = problem.init_state(problem.random_configuration(gen))
    costs = np.empty(walk_length, dtype=np.float64)
    for t in range(walk_length):
        costs[t] = state.cost
        i = int(gen.integers(0, n))
        j = int(gen.integers(0, n - 1))
        if j >= i:
            j += 1
        problem.apply_swap(state, i, j)
    centered = costs - costs.mean()
    denom = float(np.dot(centered, centered))
    if denom == 0:
        return np.ones(max_lag + 1)
    rho = np.empty(max_lag + 1)
    for lag in range(max_lag + 1):
        rho[lag] = float(np.dot(centered[: walk_length - lag], centered[lag:])) / denom
    return rho
