"""Observer hooks into the search loop.

Callbacks serve three purposes in this reproduction:

- instrumentation (cost traces for the examples and docs),
- cooperative cancellation — the parallel multi-walk runtime installs a
  callback that raises a cancel flag when another walk has finished, which
  is exactly the "communication only for completion" of the paper,
- tests (asserting loop invariants from the outside).

Returning ``False`` from ``on_iteration`` cancels the walk; any other return
value continues it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol, runtime_checkable

import numpy as np

__all__ = ["IterationInfo", "SearchCallback", "CallbackList", "CostTraceCallback"]


@dataclass
class IterationInfo:
    """Snapshot handed to ``on_iteration`` (cheap fields only)."""

    iteration: int
    cost: float
    best_cost: float
    selected_variable: int
    selected_swap: int  # partner index, or -1 if no swap executed
    delta: float
    restarts: int
    resets: int


@runtime_checkable
class SearchCallback(Protocol):
    """Protocol for search observers; all methods optional via duck typing."""

    def on_start(self, config: np.ndarray, cost: float) -> None: ...

    def on_iteration(self, info: IterationInfo) -> Optional[bool]: ...

    def on_reset(self, iteration: int, cost: float) -> None: ...

    def on_restart(self, restart_index: int, cost: float) -> None: ...

    def on_finish(self, solved: bool, cost: float) -> None: ...


class CallbackList:
    """Fan-out wrapper; missing methods on members are skipped.

    ``on_iteration`` returns False (cancel) as soon as any member does.
    """

    def __init__(self, callbacks: list[object] | None = None) -> None:
        self.callbacks = list(callbacks or [])

    def add(self, callback: object) -> None:
        self.callbacks.append(callback)

    def on_start(self, config: np.ndarray, cost: float) -> None:
        for cb in self.callbacks:
            method = getattr(cb, "on_start", None)
            if method is not None:
                method(config, cost)

    def on_iteration(self, info: IterationInfo) -> bool:
        keep_going = True
        for cb in self.callbacks:
            method = getattr(cb, "on_iteration", None)
            if method is not None and method(info) is False:
                keep_going = False
        return keep_going

    def on_reset(self, iteration: int, cost: float) -> None:
        for cb in self.callbacks:
            method = getattr(cb, "on_reset", None)
            if method is not None:
                method(iteration, cost)

    def on_restart(self, restart_index: int, cost: float) -> None:
        for cb in self.callbacks:
            method = getattr(cb, "on_restart", None)
            if method is not None:
                method(restart_index, cost)

    def on_finish(self, solved: bool, cost: float) -> None:
        for cb in self.callbacks:
            method = getattr(cb, "on_finish", None)
            if method is not None:
                method(solved, cost)


class CostTraceCallback:
    """Records ``(iteration, cost)`` pairs; handy for convergence plots."""

    def __init__(self, every: int = 1) -> None:
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.every = every
        self.trace: list[tuple[int, float]] = []

    def on_start(self, config: np.ndarray, cost: float) -> None:
        self.trace.append((0, cost))

    def on_iteration(self, info: IterationInfo) -> None:
        if info.iteration % self.every == 0:
            self.trace.append((info.iteration, info.cost))

    def costs(self) -> list[float]:
        return [c for _, c in self.trace]
