"""Min-Conflicts baseline (Minton et al. 1992), permutation variant.

Used by the ablation benches to justify Adaptive Search as the engine: the
paper's predecessor papers compare against simpler local search.  Each
iteration picks a *random conflicted* variable (any variable with non-zero
projected error) and executes the best swap for it; with probability
``noise`` a uniformly random swap is executed instead (random-walk escape,
as in WalkSAT).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.callbacks import CallbackList, IterationInfo
from repro.core.result import SolveResult, SolveStats
from repro.core.selection import argmin_random_tie
from repro.core.termination import Budget, TerminationReason
from repro.errors import SolverError
from repro.problems.base import Problem
from repro.util.rng import SeedLike, as_generator
from repro.util.timing import Stopwatch
from repro.util.validation import check_probability

__all__ = ["MinConflicts", "MinConflictsConfig"]


@dataclass(frozen=True)
class MinConflictsConfig:
    """Tuning knobs of the min-conflicts baseline."""

    target_cost: float = 0.0
    max_iterations: float = math.inf
    time_limit: float = math.inf
    restart_limit: float = math.inf
    max_restarts: int = 0
    noise: float = 0.1

    def __post_init__(self) -> None:
        if self.max_iterations <= 0:
            raise SolverError(f"max_iterations must be > 0, got {self.max_iterations}")
        if self.time_limit <= 0:
            raise SolverError(f"time_limit must be > 0, got {self.time_limit}")
        if self.restart_limit <= 0:
            raise SolverError(f"restart_limit must be > 0, got {self.restart_limit}")
        if self.max_restarts < 0:
            raise SolverError(f"max_restarts must be >= 0, got {self.max_restarts}")
        if self.target_cost < 0:
            raise SolverError(f"target_cost must be >= 0, got {self.target_cost}")
        try:
            check_probability("noise", self.noise)
        except ValueError as err:
            raise SolverError(str(err)) from None


class MinConflicts:
    """Min-conflicts local search over the swap neighbourhood."""

    name = "min_conflicts"

    def __init__(self, config: MinConflictsConfig | None = None) -> None:
        self.config = config or MinConflictsConfig()

    def solve(
        self,
        problem: Problem,
        seed: SeedLike = None,
        *,
        callbacks: Optional[Sequence[object]] = None,
        initial_configuration: Optional[np.ndarray] = None,
    ) -> SolveResult:
        cfg = self.config
        rng = as_generator(seed)
        cbs = CallbackList(list(callbacks) if callbacks else [])
        stats = SolveStats()
        budget = Budget.from_limits(cfg.max_iterations, cfg.time_limit)
        stopwatch = Stopwatch().start()

        n = problem.size
        best_cost = math.inf
        best_config: np.ndarray | None = None
        reason: TerminationReason | None = None

        for restart_index in range(cfg.max_restarts + 1):
            if restart_index == 0 and initial_configuration is not None:
                start = np.array(initial_configuration, dtype=np.int64, copy=True)
            else:
                start = problem.random_configuration(rng)
            state = problem.init_state(start)
            if restart_index == 0:
                cbs.on_start(state.config, state.cost)
            else:
                stats.restarts += 1
                cbs.on_restart(restart_index, state.cost)
            if state.cost < best_cost:
                best_cost = state.cost
                best_config = state.copy_config()

            restart_iterations = 0
            while True:
                if state.cost <= cfg.target_cost:
                    reason = TerminationReason.SOLVED
                    break
                exhausted = budget.exhausted(stats.iterations)
                if exhausted is not None:
                    reason = exhausted
                    break
                if restart_iterations >= cfg.restart_limit:
                    break

                stats.iterations += 1
                restart_iterations += 1
                it = stats.iterations

                if rng.random() < cfg.noise:
                    # random-walk move: uniform swap
                    i = int(rng.integers(0, n))
                    j = int(rng.integers(0, n - 1))
                    if j >= i:
                        j += 1
                    delta = problem.swap_delta(state, i, j)
                    problem.apply_swap(state, i, j)
                    stats.swaps += 1
                else:
                    errors = problem.variable_errors(state)
                    conflicted = np.flatnonzero(errors > 0)
                    if conflicted.size == 0:
                        # cost > target but no projected conflicts: the
                        # projection is too coarse here; fall back to uniform
                        conflicted = np.arange(n)
                    i = int(conflicted[rng.integers(0, conflicted.size)])
                    deltas = problem.swap_deltas(state, i)
                    deltas[i] = math.inf
                    j = argmin_random_tie(deltas, rng)
                    delta = float(deltas[j])
                    if delta > 0:
                        stats.local_minima += 1
                    problem.apply_swap(state, i, j)
                    stats.swaps += 1
                    if delta == 0:
                        stats.plateau_moves += 1

                if state.cost < best_cost:
                    best_cost = state.cost
                    best_config = state.copy_config()
                keep_going = cbs.on_iteration(
                    IterationInfo(
                        iteration=it,
                        cost=state.cost,
                        best_cost=best_cost,
                        selected_variable=i,
                        selected_swap=j,
                        delta=delta,
                        restarts=stats.restarts,
                        resets=stats.resets,
                    )
                )
                if not keep_going:
                    reason = TerminationReason.CANCELLED
                    break

            if reason is not None:
                break

        if reason is None:
            reason = TerminationReason.RESTARTS_EXHAUSTED
        stats.wall_time = stopwatch.stop()
        assert best_config is not None
        solved = reason is TerminationReason.SOLVED
        cbs.on_finish(solved, best_cost)
        return SolveResult(
            solved=solved,
            config=best_config,
            cost=best_cost,
            reason=reason,
            stats=stats,
            problem_name=problem.name,
            solver_name=self.name,
        )
