"""Process entry point for the hybrid processes x lanes vector executor.

One process advances a whole *slice* of walk lanes lock-step in a single
:class:`~repro.vector.engine.VectorWalkEngine`; across processes the usual
one-shot cancel event provides first-finisher-wins.  Kept importable at
module top level so :mod:`multiprocessing` can pickle the target under
every start method.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.core.config import AdaptiveSearchConfig
from repro.problems.base import Problem

__all__ = ["run_vector_slice"]


def run_vector_slice(
    walk_ids: Sequence[int],
    problem: Problem,
    config: AdaptiveSearchConfig,
    seeds: Sequence[np.random.SeedSequence],
    cancel_event: Any,
    result_queue: Any,
    poll_every_rounds: int = 16,
) -> None:
    """Run one lane slice; enqueue one ``(walk_id, payload)`` per lane.

    ``walk_ids[i]`` is the cluster-wide identity of local lane ``i`` and
    ``seeds[i]`` its exact stream, so the trajectory equals the same walk
    under every other executor.  The engine runs ``first_wins`` *within*
    the slice; across slices the shared event is polled every
    ``poll_every_rounds`` lock-step rounds (a round advances every live
    lane once, so the effective per-walk poll interval matches the scalar
    executor's ``poll_every`` iterations).
    """
    try:
        from repro.vector.engine import VectorWalkEngine

        def on_round(engine: Any) -> bool | None:
            if (
                engine.rounds % poll_every_rounds == 0
                and cancel_event.is_set()
            ):
                return False
            return None

        engine = VectorWalkEngine(
            problem,
            k=len(walk_ids),
            config=config,
            seeds=list(seeds),
            first_wins=True,
            round_callback=on_round,
        )
        outcome = engine.run()
        if outcome.solved:
            # completion notification: the only inter-process communication
            cancel_event.set()
        for lane, walk_id in enumerate(walk_ids):
            result = outcome.walks[lane]
            result_queue.put(
                (
                    walk_id,
                    {
                        "solved": result.solved,
                        "cost": result.cost,
                        "iterations": result.stats.iterations,
                        "wall_time": result.stats.wall_time,
                        "reason": result.reason.name,
                        "config": (
                            result.config.tolist() if result.solved else None
                        ),
                    },
                )
            )
    except Exception:  # pragma: no cover - defensive: surface worker crashes
        import traceback

        err = {"error": traceback.format_exc()}
        for walk_id in walk_ids:
            result_queue.put((walk_id, err))
