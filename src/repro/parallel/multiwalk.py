"""The independent multi-walk driver.

``MultiWalkSolver.solve(problem, n_walkers)`` runs ``k`` independent
Adaptive Search engines and returns as soon as one solves (process executor)
or computes the equivalent outcome exactly (inline executor).  A third
executor, ``"pool"``, borrows long-lived workers from a shared
:class:`repro.service.SolverService` instead of spawning processes per
call, amortizing start-up across solves.  See the package docstring for
when to use which.
"""

from __future__ import annotations

import math
import multiprocessing as mp
import queue as queue_mod
import time
from typing import Optional

import numpy as np

from typing import TYPE_CHECKING

from repro.core.config import AdaptiveSearchConfig
from repro.core.solver import AdaptiveSearch
from repro.core.termination import TerminationReason
from repro.errors import ParallelError
from repro.parallel.results import ParallelResult, WalkOutcome
from repro.parallel.seeding import walk_seeds
from repro.parallel.worker import run_walk
from repro.problems.base import Problem
from repro.telemetry.events import new_trace_id
from repro.telemetry.recorder import get_recorder
from repro.telemetry.solver import solver_callbacks
from repro.util.rng import SeedLike
from repro.util.timing import Stopwatch

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (service -> parallel)
    from repro.coop import CoopConfig
    from repro.net.client import ClusterClient
    from repro.service.scheduler import SolverService

__all__ = ["MultiWalkSolver", "solve_parallel"]

_EXECUTORS = ("inline", "process", "pool", "net", "vector", "coop")


class MultiWalkSolver:
    """Runs ``k`` independent Adaptive Search walks, first finisher wins.

    Parameters
    ----------
    config:
        base solver configuration shared by every walk (per-problem defaults
        are merged per walk exactly as in the sequential engine).
    executor:
        ``"process"`` for real multi-core execution, ``"inline"`` for exact
        sequential emulation (deterministic; used by tests and experiments),
        ``"pool"`` to borrow warm workers from a shared solver service
        (requires ``pool``).
    poll_every:
        process executor: how many iterations between cancel-event polls.
    launch_overhead:
        inline executor: constant added to the computed parallel wall time,
        modelling job-launch latency (the process executor pays the real
        cost instead).
    pool:
        a started :class:`repro.service.SolverService` whose worker pool
        executes the walks when ``executor="pool"``; the caller owns its
        lifecycle, so many solvers (and concurrent solves) may share it.
    cluster:
        for ``executor="net"`` / ``"coop"``: a connected
        :class:`repro.net.ClusterClient` (caller-owned, shareable across
        solvers), or a coordinator address (``(host, port)`` tuple or
        ``"host:port"`` string) to dial per solve.
    coop:
        for ``executor="coop"``: the :class:`~repro.coop.CoopConfig`
        island scheme (topology, migration cadence, adoption policy);
        ``None`` uses the defaults (a ring).  The ``"coop"`` executor is
        ``"net"`` with cooperation switched on: each node slice becomes an
        island and elites migrate between islands per the topology.  A
        coop config without a seed inherits the integer job seed, so a
        fixed seed replays the exact migration log.
    lanes:
        for ``executor="vector"``: the maximum walk lanes batched into one
        :class:`~repro.vector.engine.VectorWalkEngine` process.  ``None``
        (default) runs every walk lock-step in the calling process; a
        smaller value splits the walks round-robin over
        ``ceil(k / lanes)`` processes — the hybrid processes x lanes
        layout.  Walk ``i`` keeps the identical trajectory either way.
    """

    def __init__(
        self,
        config: AdaptiveSearchConfig | None = None,
        *,
        executor: str = "process",
        poll_every: int = 128,
        launch_overhead: float = 0.0,
        mp_context: str | None = None,
        pool: Optional["SolverService"] = None,
        cluster: "ClusterClient | tuple[str, int] | str | None" = None,
        lanes: int | None = None,
        coop: "CoopConfig | dict | None" = None,
    ) -> None:
        if executor not in _EXECUTORS:
            raise ParallelError(
                f"unknown executor {executor!r}; choose from {_EXECUTORS}"
            )
        if poll_every < 1:
            raise ParallelError(f"poll_every must be >= 1, got {poll_every}")
        if launch_overhead < 0:
            raise ParallelError(
                f"launch_overhead must be >= 0, got {launch_overhead}"
            )
        if executor == "pool" and pool is None:
            raise ParallelError(
                'executor="pool" needs a SolverService via the pool argument'
            )
        if executor in ("net", "coop") and cluster is None:
            raise ParallelError(
                f'executor="{executor}" needs a ClusterClient or '
                "coordinator address via the cluster argument"
            )
        if coop is not None and executor != "coop":
            raise ParallelError(
                f'a coop config only applies to executor="coop", '
                f"not {executor!r}"
            )
        if lanes is not None and lanes < 1:
            raise ParallelError(f"lanes must be >= 1, got {lanes}")
        self.config = config or AdaptiveSearchConfig()
        self.executor = executor
        self.poll_every = poll_every
        self.launch_overhead = launch_overhead
        self.mp_context = mp_context
        self.pool = pool
        self.cluster = cluster
        self.lanes = lanes
        self.coop = coop

    # ------------------------------------------------------------------
    def solve(
        self,
        problem: Problem,
        n_walkers: int,
        seed: SeedLike = None,
        *,
        time_limit: float | None = None,
    ) -> ParallelResult:
        """Run the multi-walk; ``time_limit`` (seconds) bounds every walk."""
        seeds = walk_seeds(n_walkers, seed)
        config = self.config
        if time_limit is not None:
            config = config.replace(time_limit=min(config.time_limit, time_limit))
        recorder = get_recorder()
        if not recorder.enabled:
            return self._dispatch(problem, config, seeds, seed=seed)
        trace_id = new_trace_id()
        with recorder.span(
            "multiwalk.solve",
            trace_id=trace_id,
            executor=self.executor,
            n_walkers=n_walkers,
        ):
            return self._dispatch(
                problem, config, seeds, trace_id=trace_id, seed=seed
            )

    def _dispatch(
        self,
        problem: Problem,
        config: AdaptiveSearchConfig,
        seeds: list[np.random.SeedSequence],
        trace_id: str = "",
        seed: SeedLike = None,
    ) -> ParallelResult:
        if self.executor == "inline":
            return self._solve_inline(problem, config, seeds, trace_id)
        if self.executor == "pool":
            return self._solve_pool(problem, config, seeds)
        if self.executor == "net":
            return self._solve_net(problem, config, seeds)
        if self.executor == "coop":
            return self._solve_coop(problem, config, seeds, seed)
        if self.executor == "vector":
            return self._solve_vector(problem, config, seeds, trace_id)
        return self._solve_process(problem, config, seeds, trace_id)

    # ------------------------------------------------------------------
    def _solve_pool(
        self,
        problem: Problem,
        config: AdaptiveSearchConfig,
        seeds: list[np.random.SeedSequence],
    ) -> ParallelResult:
        """Run the walks as one job on the shared warm-worker service.

        The explicit seed list keeps trajectories identical to the other
        executors (walk ``i`` is the same walk under every executor).
        """
        assert self.pool is not None
        handle = self.pool.submit(
            problem, len(seeds), config=config, seeds=seeds
        )
        return handle.result().to_parallel_result()

    # ------------------------------------------------------------------
    def _solve_net(
        self,
        problem: Problem,
        config: AdaptiveSearchConfig,
        seeds: list[np.random.SeedSequence],
    ) -> ParallelResult:
        """Run the walks as one job on a distributed coordinator cluster.

        The full ordered seed list ships to the coordinator, which
        partitions walk *indices* across nodes — so walk ``i`` runs the
        same trajectory as under every other executor, merely on another
        machine.
        """
        from repro.net.client import ClusterClient

        client = self.cluster
        owned = not isinstance(client, ClusterClient)
        if owned:
            client = ClusterClient(client).connect()
        try:
            result = client.solve(
                problem, len(seeds), config=config, seeds=seeds
            )
            return result.to_parallel_result()
        finally:
            if owned:
                client.close()

    # ------------------------------------------------------------------
    def _solve_coop(
        self,
        problem: Problem,
        config: AdaptiveSearchConfig,
        seeds: list[np.random.SeedSequence],
        seed: SeedLike = None,
    ) -> ParallelResult:
        """Run the walks as one *cooperative* cluster job.

        Identical dispatch path to ``"net"`` except the submit carries the
        coop scheme: the coordinator turns each node slice into an island
        and relays elite migrations between them.  The original job
        ``seed`` rides along so an unseeded coop config becomes
        deterministic per job.
        """
        from repro.coop import CoopConfig
        from repro.net.client import ClusterClient

        coop = self.coop
        if coop is None:
            coop = CoopConfig()
        elif not isinstance(coop, CoopConfig):
            coop = CoopConfig.from_wire(coop)
        client = self.cluster
        owned = not isinstance(client, ClusterClient)
        if owned:
            client = ClusterClient(client).connect()
        try:
            result = client.solve(
                problem, len(seeds), seed, config=config, seeds=seeds,
                coop=coop,
            )
            return result.to_parallel_result(executor="coop")
        finally:
            if owned:
                client.close()

    # ------------------------------------------------------------------
    def _solve_inline(
        self,
        problem: Problem,
        config: AdaptiveSearchConfig,
        seeds: list[np.random.SeedSequence],
        trace_id: str = "",
    ) -> ParallelResult:
        """Run every walk to completion; parallel time = min across walks.

        Exactness argument: with zero communication, walk ``i`` executes the
        same trajectory whether or not the other walks exist, so the
        multi-walk completion time on ``k`` dedicated cores is exactly
        ``min_i T_i`` (plus launch overhead), which we compute directly.
        """
        stopwatch = Stopwatch().start()
        solver = AdaptiveSearch(config)
        walks: list[WalkOutcome] = []
        for walk_id, walk_seed in enumerate(seeds):
            callbacks = solver_callbacks(trace_id=trace_id, walk_id=walk_id)
            result = solver.solve(
                problem, seed=walk_seed, callbacks=callbacks or None
            )
            walks.append(
                WalkOutcome(
                    walk_id=walk_id,
                    solved=result.solved,
                    cost=result.cost,
                    iterations=result.stats.iterations,
                    wall_time=result.stats.wall_time,
                    reason=result.reason,
                    config=result.config if result.solved else None,
                )
            )
        elapsed = stopwatch.stop()
        solved_walks = [w for w in walks if w.solved]
        if solved_walks:
            winner = min(solved_walks, key=lambda w: w.wall_time)
            wall_time = winner.wall_time + self.launch_overhead
            solved = True
        else:
            winner = None
            wall_time = max(w.wall_time for w in walks) + self.launch_overhead
            solved = False
        return ParallelResult(
            solved=solved,
            n_walkers=len(seeds),
            winner=winner,
            walks=walks,
            wall_time=wall_time,
            elapsed_time=elapsed,
            executor="inline",
        )

    # ------------------------------------------------------------------
    def _solve_vector(
        self,
        problem: Problem,
        config: AdaptiveSearchConfig,
        seeds: list[np.random.SeedSequence],
        trace_id: str = "",
    ) -> ParallelResult:
        """Advance all walks lock-step as lanes of the vector engine.

        Seeds come from the same :func:`walk_seeds` derivation as every
        other executor and each lane consumes its generator at the scalar
        call sites, so walk ``i`` is bit-identical to walk ``i`` under the
        inline/process/pool executors (the property the k=1 equivalence
        suite pins down).  With ``lanes`` set below the walk count the
        walks split round-robin over several engine processes — the
        hybrid processes x lanes layout.
        """
        if self.lanes is not None and self.lanes < len(seeds):
            return self._solve_vector_hybrid(problem, config, seeds)
        from repro.telemetry.vector import vector_telemetry
        from repro.vector.engine import VectorWalkEngine

        telemetry = vector_telemetry(trace_id=trace_id) if trace_id else None
        stopwatch = Stopwatch().start()
        engine = VectorWalkEngine(
            problem,
            k=len(seeds),
            config=config,
            seeds=seeds,
            first_wins=True,
            round_callback=(
                telemetry.round_callback if telemetry is not None else None
            ),
        )
        if telemetry is not None:
            telemetry.on_start(engine)
        outcome = engine.run()
        elapsed = stopwatch.stop()
        if telemetry is not None:
            telemetry.on_finish(outcome)
        walks = [
            WalkOutcome(
                walk_id=lane,
                solved=result.solved,
                cost=result.cost,
                iterations=result.stats.iterations,
                wall_time=result.stats.wall_time,
                reason=result.reason,
                config=result.config if result.solved else None,
            )
            for lane, result in enumerate(outcome.walks)
        ]
        solved_walks = [w for w in walks if w.solved]
        winner = (
            min(solved_walks, key=lambda w: w.wall_time)
            if solved_walks
            else None
        )
        return ParallelResult(
            solved=winner is not None,
            n_walkers=len(seeds),
            winner=winner,
            walks=walks,
            wall_time=winner.wall_time if winner is not None else elapsed,
            elapsed_time=elapsed,
            executor="vector",
        )

    def _solve_vector_hybrid(
        self,
        problem: Problem,
        config: AdaptiveSearchConfig,
        seeds: list[np.random.SeedSequence],
    ) -> ParallelResult:
        """Hybrid layout: ``ceil(k / lanes)`` processes x ``lanes`` lanes."""
        from repro.parallel.seeding import partition_walks
        from repro.parallel.vector_worker import run_vector_slice

        assert self.lanes is not None
        n_walks = len(seeds)
        n_procs = -(-n_walks // self.lanes)
        slices = [s for s in partition_walks(n_walks, n_procs) if s]
        ctx = mp.get_context(self.mp_context)
        cancel_event = ctx.Event()
        result_queue: mp.Queue = ctx.Queue()
        stopwatch = Stopwatch().start()
        processes = [
            ctx.Process(
                target=run_vector_slice,
                args=(
                    slice_ids,
                    problem,
                    config,
                    [seeds[walk_id] for walk_id in slice_ids],
                    cancel_event,
                    result_queue,
                    max(1, self.poll_every // max(1, len(slice_ids))),
                ),
                daemon=True,
            )
            for slice_ids in slices
        ]
        for proc in processes:
            proc.start()
        if math.isinf(config.time_limit):
            deadline = None
        else:
            deadline = (
                time.monotonic() + config.time_limit * (len(slices) + 1) + 60.0
            )
        payloads: dict[int, dict] = {}
        first_solve_time: float | None = None
        try:
            while len(payloads) < n_walks:
                timeout = None
                if deadline is not None:
                    timeout = max(0.1, deadline - time.monotonic())
                try:
                    walk_id, payload = result_queue.get(timeout=timeout)
                except queue_mod.Empty:
                    raise ParallelError(
                        f"vector multi-walk timed out: "
                        f"{n_walks - len(payloads)} of {n_walks} walks "
                        "never reported"
                    )
                if "error" in payload:
                    raise ParallelError(
                        f"vector slice crashed on walk {walk_id}:\n"
                        f"{payload['error']}"
                    )
                payloads[walk_id] = payload
                if payload["solved"] and first_solve_time is None:
                    first_solve_time = stopwatch.elapsed
                    cancel_event.set()
        finally:
            cancel_event.set()
            for proc in processes:
                proc.join(timeout=30.0)
            for proc in processes:
                if proc.is_alive():  # pragma: no cover - defensive cleanup
                    proc.terminate()
                    proc.join(timeout=5.0)
        elapsed = stopwatch.stop()
        walks = [
            WalkOutcome(
                walk_id=walk_id,
                solved=payload["solved"],
                cost=payload["cost"],
                iterations=payload["iterations"],
                wall_time=payload["wall_time"],
                reason=TerminationReason[payload["reason"]],
                config=(
                    np.asarray(payload["config"], dtype=np.int64)
                    if payload["config"] is not None
                    else None
                ),
            )
            for walk_id, payload in sorted(payloads.items())
        ]
        solved_walks = [w for w in walks if w.solved]
        winner = (
            min(solved_walks, key=lambda w: w.wall_time)
            if solved_walks
            else None
        )
        return ParallelResult(
            solved=winner is not None,
            n_walkers=n_walks,
            winner=winner,
            walks=walks,
            wall_time=(
                first_solve_time if first_solve_time is not None else elapsed
            ),
            elapsed_time=elapsed,
            executor="vector",
        )

    # ------------------------------------------------------------------
    def _solve_process(
        self,
        problem: Problem,
        config: AdaptiveSearchConfig,
        seeds: list[np.random.SeedSequence],
        trace_id: str = "",
    ) -> ParallelResult:
        ctx = mp.get_context(self.mp_context)
        cancel_event = ctx.Event()
        result_queue: mp.Queue = ctx.Queue()
        recorder = get_recorder()
        stopwatch = Stopwatch().start()
        processes = [
            ctx.Process(
                target=run_walk,
                args=(
                    walk_id,
                    problem,
                    config,
                    walk_seed,
                    cancel_event,
                    result_queue,
                    self.poll_every,
                    trace_id,
                    recorder.milestone_every if trace_id else 0,
                ),
                daemon=True,
            )
            for walk_id, walk_seed in enumerate(seeds)
        ]
        for proc in processes:
            proc.start()

        # queue-drain deadline: every walk ends by solving, budget
        # exhaustion, or cancellation; leave generous slack beyond the
        # configured time limit for scheduling noise on oversubscribed hosts
        if math.isinf(config.time_limit):
            deadline = None
        else:
            deadline = time.monotonic() + config.time_limit * (len(seeds) + 1) + 60.0

        payloads: dict[int, dict] = {}
        first_solve_time: float | None = None
        try:
            while len(payloads) < len(seeds):
                timeout = None
                if deadline is not None:
                    timeout = max(0.1, deadline - time.monotonic())
                try:
                    walk_id, payload = result_queue.get(timeout=timeout)
                except queue_mod.Empty:
                    raise ParallelError(
                        f"multi-walk timed out: {len(seeds) - len(payloads)} of "
                        f"{len(seeds)} walks never reported"
                    )
                if "error" in payload:
                    raise ParallelError(
                        f"walk {walk_id} crashed:\n{payload['error']}"
                    )
                records = payload.pop("telemetry", None)
                if records:
                    recorder.ingest(records)
                payloads[walk_id] = payload
                if payload["solved"] and first_solve_time is None:
                    first_solve_time = stopwatch.elapsed
                    # broadcast completion as soon as the winner reports:
                    # the workers set the event themselves, but if a winner
                    # raced past an unset event (solved before any poll) the
                    # losers would otherwise run to their full budget
                    cancel_event.set()
        finally:
            cancel_event.set()
            for proc in processes:
                proc.join(timeout=30.0)
            for proc in processes:
                if proc.is_alive():  # pragma: no cover - defensive cleanup
                    proc.terminate()
                    proc.join(timeout=5.0)

        elapsed = stopwatch.stop()
        walks = [
            WalkOutcome(
                walk_id=walk_id,
                solved=payload["solved"],
                cost=payload["cost"],
                iterations=payload["iterations"],
                wall_time=payload["wall_time"],
                reason=TerminationReason[payload["reason"]],
                config=(
                    np.asarray(payload["config"], dtype=np.int64)
                    if payload["config"] is not None
                    else None
                ),
            )
            for walk_id, payload in sorted(payloads.items())
        ]
        solved_walks = [w for w in walks if w.solved]
        winner = (
            min(solved_walks, key=lambda w: w.wall_time) if solved_walks else None
        )
        return ParallelResult(
            solved=winner is not None,
            n_walkers=len(seeds),
            winner=winner,
            walks=walks,
            wall_time=first_solve_time if first_solve_time is not None else elapsed,
            elapsed_time=elapsed,
            executor="process",
        )


def solve_parallel(
    problem: Problem,
    n_walkers: int,
    seed: SeedLike = None,
    *,
    config: AdaptiveSearchConfig | None = None,
    executor: str = "process",
    time_limit: float | None = None,
    poll_every: int = 128,
    launch_overhead: float = 0.0,
    mp_context: str | None = None,
    pool: Optional["SolverService"] = None,
    cluster: "ClusterClient | tuple[str, int] | str | None" = None,
    lanes: int | None = None,
    coop: "CoopConfig | dict | None" = None,
) -> ParallelResult:
    """One-shot convenience wrapper around :class:`MultiWalkSolver`.

    All executor tunables (``poll_every``, ``launch_overhead``,
    ``mp_context``, ``pool``, ``cluster``, ``coop``) are forwarded; see
    :class:`MultiWalkSolver` for their meaning.
    """
    solver = MultiWalkSolver(
        config,
        executor=executor,
        poll_every=poll_every,
        launch_overhead=launch_overhead,
        mp_context=mp_context,
        pool=pool,
        cluster=cluster,
        lanes=lanes,
        coop=coop,
    )
    return solver.solve(problem, n_walkers, seed, time_limit=time_limit)
