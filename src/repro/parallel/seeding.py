"""Deterministic seed derivation for parallel walks.

Every walk receives its own :class:`numpy.random.SeedSequence` spawned from
one master seed, so a multi-walk run is reproducible end-to-end: the same
master seed yields the same ``k`` walk streams no matter how the OS schedules
the worker processes, and walk ``i`` of a ``k``-walk run equals walk ``i`` of
a ``k'``-walk run (prefix property) — handy when comparing core counts.
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import SeedLike, spawn_seeds

__all__ = ["walk_seeds", "partition_walks", "partition_seeds"]


def walk_seeds(n_walkers: int, seed: SeedLike = None) -> list[np.random.SeedSequence]:
    """Independent child seeds for ``n_walkers`` walks.

    Raises :class:`ValueError` for a non-positive walker count.
    """
    if n_walkers <= 0:
        raise ValueError(f"n_walkers must be >= 1, got {n_walkers}")
    return spawn_seeds(n_walkers, seed)


def partition_walks(n_walks: int, n_nodes: int) -> list[list[int]]:
    """Round-robin split of walk indices ``0..n_walks-1`` over ``n_nodes``.

    Node ``i`` receives indices ``i, i + n_nodes, i + 2*n_nodes, ...`` —
    with fewer nodes than walks every node gets work, and shrinking the
    node count only merges slices (walk identities never change).  Nodes
    beyond the walk count receive empty slices.
    """
    if n_walks < 1:
        raise ValueError(f"n_walks must be >= 1, got {n_walks}")
    if n_nodes < 1:
        raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
    return [list(range(node, n_walks, n_nodes)) for node in range(n_nodes)]


def partition_seeds(
    job_seed: SeedLike, n_walks: int, n_nodes: int
) -> list[list[np.random.SeedSequence]]:
    """Per-node seed slices of one distributed multi-walk job.

    The defining property (tested by hypothesis): concatenating the slices
    in walk-index order recovers ``walk_seeds(n_walks, job_seed)`` exactly,
    for **any** node count.  Walk ``i`` of a distributed run is therefore
    the same trajectory as walk ``i`` of a single-host run with the same
    job seed — cluster results stay comparable to local ones, which is how
    the paper compares its HA8000/Grid'5000 runs against one core.
    """
    seeds = walk_seeds(n_walks, job_seed)
    return [
        [seeds[walk_id] for walk_id in slice_ids]
        for slice_ids in partition_walks(n_walks, n_nodes)
    ]
