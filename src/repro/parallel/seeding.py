"""Deterministic seed derivation for parallel walks.

Every walk receives its own :class:`numpy.random.SeedSequence` spawned from
one master seed, so a multi-walk run is reproducible end-to-end: the same
master seed yields the same ``k`` walk streams no matter how the OS schedules
the worker processes, and walk ``i`` of a ``k``-walk run equals walk ``i`` of
a ``k'``-walk run (prefix property) — handy when comparing core counts.
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import SeedLike, spawn_seeds

__all__ = ["walk_seeds"]


def walk_seeds(n_walkers: int, seed: SeedLike = None) -> list[np.random.SeedSequence]:
    """Independent child seeds for ``n_walkers`` walks.

    Raises :class:`ValueError` for a non-positive walker count.
    """
    if n_walkers <= 0:
        raise ValueError(f"n_walkers must be >= 1, got {n_walkers}")
    return spawn_seeds(n_walkers, seed)
