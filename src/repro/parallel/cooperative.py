"""Dependent multi-walk: cooperation through an elite pool.

The paper's conclusion sketches its future work: "more complex parallel
methods with inter-processes communication, i.e., in the dependent
multiple-walk scheme", designed to (1) minimize data transfers and (2)
re-use common computations / record "previous interesting crossroads in the
resolution, from which a restart can be operated" — while warning that "it
is a challenge to design a scheme that could outperform the independent
multiple-walk parallelization" because configuration costs are heuristic.

This module implements exactly that scheme so the conjecture can be tested:

- walkers are resumable :class:`~repro.core.session.AdaptiveSearchSession`s
  advancing in synchronized rounds of ``report_interval`` iterations;
- after each round a walker *reports* its current (cost, configuration) to
  a bounded :class:`ElitePool` (the "recorded crossroads") — the only data
  transfer, a single configuration vector;
- every ``adopt_interval`` iterations a walker may *adopt* a pool elite:
  with probability ``p_adopt``, if some elite beats its current cost by at
  least ``min_relative_gain``, the walker restarts from a perturbed copy of
  it (perturbation keeps the walkers diverse).

The executor is the deterministic inline one (synchronized rounds make the
scheme well-defined and exactly measurable in iteration time on any host);
``benchmarks/bench_abl_cooperation.py`` compares it head-to-head against
the paper's independent scheme.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.config import AdaptiveSearchConfig
from repro.core.session import AdaptiveSearchSession
from repro.core.termination import TerminationReason
from repro.csp.permutation import random_partial_reset
from repro.errors import ParallelError
from repro.parallel.results import WalkOutcome
from repro.parallel.seeding import walk_seeds
from repro.problems.base import Problem
from repro.util.rng import SeedLike, as_generator
from repro.util.validation import check_fraction, check_probability

__all__ = ["CooperationConfig", "ElitePool", "CooperativeMultiWalk", "CooperativeResult"]


@dataclass(frozen=True)
class CooperationConfig:
    """Tuning of the dependent multi-walk scheme.

    Parameters
    ----------
    report_interval:
        iterations per synchronized round; each walker reports its current
        configuration to the pool once per round.
    adopt_interval:
        minimum iterations a walker searches on its own between adoption
        attempts.
    p_adopt:
        probability an eligible adoption attempt actually happens.
    pool_size:
        elite pool capacity (best configurations seen, deduplicated).
    min_relative_gain:
        adopt only when the elite cost is below
        ``(1 - min_relative_gain) * own cost`` — the paper's warning made
        operational: heuristic costs are noisy, so small differences are
        not worth a jump.
    perturb_fraction:
        fraction of variables shuffled in the adopted copy, keeping
        walkers from collapsing onto identical trajectories.
    """

    report_interval: int = 64
    adopt_interval: int = 256
    p_adopt: float = 0.8
    pool_size: int = 8
    min_relative_gain: float = 0.1
    perturb_fraction: float = 0.05

    def __post_init__(self) -> None:
        if self.report_interval < 1:
            raise ParallelError(
                f"report_interval must be >= 1, got {self.report_interval}"
            )
        if self.adopt_interval < 1:
            raise ParallelError(
                f"adopt_interval must be >= 1, got {self.adopt_interval}"
            )
        if self.pool_size < 1:
            raise ParallelError(f"pool_size must be >= 1, got {self.pool_size}")
        try:
            check_probability("p_adopt", self.p_adopt)
            check_probability("min_relative_gain", self.min_relative_gain)
            check_fraction("perturb_fraction", self.perturb_fraction)
        except ValueError as err:
            raise ParallelError(str(err)) from None


class ElitePool:
    """Bounded pool of the best configurations reported so far.

    Entries are kept sorted by cost; duplicate configurations are ignored;
    offering a configuration worse than the current worst entry of a full
    pool is a no-op.  The pool only ever stores copies.

    Offers with a non-finite cost (NaN, ±inf) are rejected outright and
    counted in ``rejected`` — heuristic costs are noisy but they are never
    legitimately infinite, so such an offer is a corrupted migrant or an
    uninitialized walker, not an elite.

    The pool is thread-safe: the cluster-side island loop offers from a
    runner thread while its hosting agent folds arriving migrants in from
    the event-loop side, so every mutation and read happens under one
    internal lock.  (The in-process cooperative executor is single-threaded
    and pays only an uncontended acquire.)
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ParallelError(f"pool capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: list[tuple[float, np.ndarray]] = []
        self._lock = threading.Lock()
        self.offers = 0
        self.accepts = 0
        self.rejected = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def offer(self, cost: float, config: np.ndarray) -> bool:
        """Report a configuration; returns True if it entered the pool."""
        with self._lock:
            self.offers += 1
            cost = float(cost)
            if not math.isfinite(cost):
                self.rejected += 1
                return False
            if (
                len(self._entries) >= self.capacity
                and cost >= self._entries[-1][0]
            ):
                return False
            key = config.tobytes()
            for existing_cost, existing in self._entries:
                if existing_cost == cost and existing.tobytes() == key:
                    return False
            self._entries.append((cost, np.array(config, copy=True)))
            self._entries.sort(key=lambda e: e[0])
            del self._entries[self.capacity :]
            self.accepts += 1
            return True

    def best(self) -> Optional[tuple[float, np.ndarray]]:
        """The lowest-cost entry (cost, copy of config), or None if empty."""
        with self._lock:
            if not self._entries:
                return None
            cost, config = self._entries[0]
            return cost, config.copy()

    def best_cost(self) -> float:
        with self._lock:
            return self._entries[0][0] if self._entries else float("inf")


@dataclass
class CooperativeResult:
    """Outcome of one cooperative multi-walk execution.

    ``parallel_iterations`` is the completion time in the synchronized
    iteration clock: walkers advance in lockstep, so the run ends after the
    winner's own iteration count (all walkers execute iterations at the
    same rate on dedicated cores).
    """

    solved: bool
    n_walkers: int
    winner: Optional[WalkOutcome]
    walks: list[WalkOutcome] = field(default_factory=list)
    rounds: int = 0
    parallel_iterations: int = 0
    total_iterations: int = 0
    adoptions: int = 0
    pool_offers: int = 0
    pool_accepts: int = 0
    elapsed_time: float = 0.0

    @property
    def config(self) -> Optional[np.ndarray]:
        return self.winner.config if self.winner is not None else None

    def summary(self) -> str:
        status = (
            f"SOLVED by walk {self.winner.walk_id}" if self.solved else "UNSOLVED"
        )
        return (
            f"cooperative multi-walk x{self.n_walkers}: {status} after "
            f"{self.rounds} rounds ({self.parallel_iterations} parallel "
            f"iterations, {self.adoptions} adoptions, pool "
            f"{self.pool_accepts}/{self.pool_offers} accepts)"
        )


class CooperativeMultiWalk:
    """Dependent multi-walk driver.

    Two executors:

    - ``"inline"`` (default) — synchronized rounds in one process:
      deterministic, exact iteration-clock measurement; the reference
      implementation for experiments.
    - ``"process"`` — real OS processes sharing the elite pool through a
      :class:`multiprocessing.Manager`; non-deterministic (adoption timing
      depends on scheduling) but gives true parallelism on multi-core
      hosts.
    """

    def __init__(
        self,
        solver_config: AdaptiveSearchConfig | None = None,
        cooperation: CooperationConfig | None = None,
        *,
        executor: str = "inline",
        use_problem_defaults: bool = True,
        mp_context: str | None = None,
    ) -> None:
        if executor not in ("inline", "process"):
            raise ParallelError(
                f"unknown executor {executor!r}; choose 'inline' or 'process'"
            )
        self.solver_config = solver_config or AdaptiveSearchConfig()
        self.cooperation = cooperation or CooperationConfig()
        self.executor = executor
        self.use_problem_defaults = use_problem_defaults
        self.mp_context = mp_context

    # ------------------------------------------------------------------
    def solve(
        self,
        problem: Problem,
        n_walkers: int,
        seed: SeedLike = None,
        *,
        max_rounds: int = 1_000_000,
    ) -> CooperativeResult:
        """Run until one walker solves, every walker finishes, or
        ``max_rounds`` synchronized rounds elapse (inline executor only)."""
        if max_rounds < 1:
            raise ParallelError(f"max_rounds must be >= 1, got {max_rounds}")
        coop = self.cooperation
        config = self.solver_config
        if self.use_problem_defaults:
            config = config.merged_with(problem.default_solver_parameters())
        if self.executor == "process":
            return self._solve_process(problem, n_walkers, seed, config)

        seeds = walk_seeds(n_walkers + 1, seed)
        coordinator_rng = as_generator(seeds[-1])
        sessions = [
            AdaptiveSearchSession(problem, config, walk_seed)
            for walk_seed in seeds[:-1]
        ]
        pool = ElitePool(coop.pool_size)
        last_adopt = [0] * n_walkers
        adoptions = 0
        import time

        t0 = time.perf_counter()

        winner_id: int | None = None
        rounds = 0
        active = set(range(n_walkers))
        while rounds < max_rounds and active and winner_id is None:
            rounds += 1
            for walk_id in sorted(active):
                session = sessions[walk_id]
                out = session.step(coop.report_interval)
                if out is TerminationReason.SOLVED:
                    winner_id = walk_id
                    break
                if out is not None:  # budget/restart exhaustion
                    active.discard(walk_id)
                    continue
                # report: one configuration, the paper's minimal transfer
                pool.offer(session.cost, session.state.config)
                # adopt: restart from a recorded crossroad
                if (
                    session.stats.iterations - last_adopt[walk_id]
                    >= coop.adopt_interval
                ):
                    last_adopt[walk_id] = session.stats.iterations
                    if coordinator_rng.random() < coop.p_adopt:
                        elite = pool.best()
                        if (
                            elite is not None
                            and elite[0]
                            < (1.0 - coop.min_relative_gain) * session.cost
                        ):
                            adopted = elite[1]
                            random_partial_reset(
                                adopted, coop.perturb_fraction, coordinator_rng
                            )
                            session.inject_configuration(adopted)
                            adoptions += 1

        walks = [
            WalkOutcome(
                walk_id=idx,
                solved=s.solved,
                cost=s.best_cost,
                iterations=s.stats.iterations,
                wall_time=s.elapsed,
                reason=s.reason if s.reason is not None else TerminationReason.CANCELLED,
                config=s.best_config if s.solved else None,
            )
            for idx, s in enumerate(sessions)
        ]
        winner = walks[winner_id] if winner_id is not None else None
        return CooperativeResult(
            solved=winner is not None,
            n_walkers=n_walkers,
            winner=winner,
            walks=walks,
            rounds=rounds,
            parallel_iterations=(
                winner.iterations
                if winner is not None
                else max((w.iterations for w in walks), default=0)
            ),
            total_iterations=sum(w.iterations for w in walks),
            adoptions=adoptions,
            pool_offers=pool.offers,
            pool_accepts=pool.accepts,
            elapsed_time=time.perf_counter() - t0,
        )

    # ------------------------------------------------------------------
    def _solve_process(
        self,
        problem: Problem,
        n_walkers: int,
        seed: SeedLike,
        config: AdaptiveSearchConfig,
    ) -> CooperativeResult:
        """Real-process executor; see class docstring for the trade-offs."""
        import math
        import multiprocessing as mp
        import queue as queue_mod
        import time

        from repro.parallel.coop_worker import run_cooperative_walk

        coop = self.cooperation
        coop_params = {
            "report_interval": coop.report_interval,
            "adopt_interval": coop.adopt_interval,
            "p_adopt": coop.p_adopt,
            "pool_size": coop.pool_size,
            "min_relative_gain": coop.min_relative_gain,
            "perturb_fraction": coop.perturb_fraction,
        }
        ctx = mp.get_context(self.mp_context)
        manager = ctx.Manager()
        t0 = time.perf_counter()
        try:
            shared_pool = manager.list()
            pool_lock = manager.Lock()
            cancel_event = ctx.Event()
            result_queue: mp.Queue = ctx.Queue()
            seeds = walk_seeds(n_walkers, seed)
            processes = [
                ctx.Process(
                    target=run_cooperative_walk,
                    args=(
                        walk_id,
                        problem,
                        config,
                        coop_params,
                        walk_seed,
                        shared_pool,
                        pool_lock,
                        cancel_event,
                        result_queue,
                    ),
                    daemon=True,
                )
                for walk_id, walk_seed in enumerate(seeds)
            ]
            for proc in processes:
                proc.start()

            if math.isinf(config.time_limit):
                deadline = None
            else:
                deadline = (
                    time.monotonic() + config.time_limit * (n_walkers + 1) + 60.0
                )
            payloads: dict[int, dict] = {}
            try:
                while len(payloads) < n_walkers:
                    timeout = None
                    if deadline is not None:
                        timeout = max(0.1, deadline - time.monotonic())
                    try:
                        walk_id, payload = result_queue.get(timeout=timeout)
                    except queue_mod.Empty:
                        raise ParallelError(
                            "cooperative multi-walk timed out: "
                            f"{n_walkers - len(payloads)} walker(s) never reported"
                        )
                    if "error" in payload:
                        raise ParallelError(
                            f"walker {walk_id} crashed:\n{payload['error']}"
                        )
                    payloads[walk_id] = payload
            finally:
                cancel_event.set()
                for proc in processes:
                    proc.join(timeout=30.0)
                for proc in processes:
                    if proc.is_alive():  # pragma: no cover - defensive
                        proc.terminate()
                        proc.join(timeout=5.0)
            pool_len = len(shared_pool)
        finally:
            manager.shutdown()

        walks = [
            WalkOutcome(
                walk_id=walk_id,
                solved=payload["solved"],
                cost=payload["cost"],
                iterations=payload["iterations"],
                wall_time=payload["wall_time"],
                reason=TerminationReason[payload["reason"]],
                config=(
                    np.asarray(payload["config"], dtype=np.int64)
                    if payload["config"] is not None
                    else None
                ),
            )
            for walk_id, payload in sorted(payloads.items())
        ]
        solved_walks = [w for w in walks if w.solved]
        winner = (
            min(solved_walks, key=lambda w: w.iterations)
            if solved_walks
            else None
        )
        return CooperativeResult(
            solved=winner is not None,
            n_walkers=n_walkers,
            winner=winner,
            walks=walks,
            rounds=0,  # rounds are a synchronized-executor notion
            parallel_iterations=(
                winner.iterations
                if winner is not None
                else max((w.iterations for w in walks), default=0)
            ),
            total_iterations=sum(w.iterations for w in walks),
            adoptions=sum(p.get("adoptions", 0) for p in payloads.values()),
            pool_offers=pool_len,
            pool_accepts=pool_len,
            elapsed_time=time.perf_counter() - t0,
        )
