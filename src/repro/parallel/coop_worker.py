"""Process-executor worker for the cooperative multi-walk.

Separated into its own module so :mod:`multiprocessing` can pickle the
target under any start method.  The shared elite pool is a managed list of
``(cost, config-as-list)`` tuples guarded by one lock; all pool traffic is
tiny and infrequent (one configuration per walker per report interval),
which is the paper's "minimizing data transfers" requirement.
"""

from __future__ import annotations

import math
import time
from typing import Any

import numpy as np

from repro.core.config import AdaptiveSearchConfig
from repro.core.session import AdaptiveSearchSession
from repro.core.termination import TerminationReason
from repro.csp.permutation import random_partial_reset
from repro.problems.base import Problem

__all__ = ["pool_offer", "pool_best", "run_cooperative_walk"]


def pool_offer(
    shared_pool: Any,
    pool_lock: Any,
    capacity: int,
    cost: float,
    config: np.ndarray,
) -> None:
    """Insert a configuration into the bounded shared pool (best-first)."""
    entry = (float(cost), config.tolist())
    with pool_lock:
        entries = list(shared_pool)
        if len(entries) >= capacity and entries and cost >= entries[-1][0]:
            return
        if any(e[0] == entry[0] and e[1] == entry[1] for e in entries):
            return
        entries.append(entry)
        entries.sort(key=lambda e: e[0])
        del entries[capacity:]
        shared_pool[:] = entries


def pool_best(shared_pool: Any, pool_lock: Any) -> tuple[float, np.ndarray] | None:
    """The best shared entry, or None while the pool is empty."""
    with pool_lock:
        entries = list(shared_pool)
    if not entries:
        return None
    cost, config = entries[0]
    return float(cost), np.asarray(config, dtype=np.int64)


def run_cooperative_walk(
    walk_id: int,
    problem: Problem,
    config: AdaptiveSearchConfig,
    coop_params: dict[str, Any],
    seed: np.random.SeedSequence,
    shared_pool: Any,
    pool_lock: Any,
    cancel_event: Any,
    result_queue: Any,
) -> None:
    """One cooperative walker process; always enqueues one result tuple."""
    try:
        walk_seed, adopt_seed = seed.spawn(2)
        session = AdaptiveSearchSession(problem, config, walk_seed)
        adopt_rng = np.random.default_rng(adopt_seed)
        deadline = (
            time.monotonic() + config.time_limit
            if math.isfinite(config.time_limit)
            else None
        )
        last_adopt = 0
        adoptions = 0
        reason: TerminationReason | None = None
        while True:
            out = session.step(int(coop_params["report_interval"]))
            if out is TerminationReason.SOLVED:
                cancel_event.set()
                reason = out
                break
            if out is not None:
                reason = out
                break
            if cancel_event.is_set():
                reason = TerminationReason.CANCELLED
                break
            if session.stats.iterations >= config.max_iterations:
                reason = TerminationReason.MAX_ITERATIONS
                break
            if deadline is not None and time.monotonic() >= deadline:
                reason = TerminationReason.TIME_LIMIT
                break
            pool_offer(
                shared_pool,
                pool_lock,
                int(coop_params["pool_size"]),
                session.cost,
                session.state.config,
            )
            if (
                session.stats.iterations - last_adopt
                >= int(coop_params["adopt_interval"])
            ):
                last_adopt = session.stats.iterations
                if adopt_rng.random() < float(coop_params["p_adopt"]):
                    elite = pool_best(shared_pool, pool_lock)
                    if (
                        elite is not None
                        and elite[0]
                        < (1.0 - float(coop_params["min_relative_gain"]))
                        * session.cost
                    ):
                        adopted = elite[1]
                        random_partial_reset(
                            adopted,
                            float(coop_params["perturb_fraction"]),
                            adopt_rng,
                        )
                        session.inject_configuration(adopted)
                        adoptions += 1

        result_queue.put(
            (
                walk_id,
                {
                    "solved": session.solved,
                    "cost": session.best_cost,
                    "iterations": session.stats.iterations,
                    "wall_time": session.elapsed,
                    "reason": reason.name,
                    "adoptions": adoptions,
                    "config": (
                        session.best_config.tolist() if session.solved else None
                    ),
                },
            )
        )
    except Exception:  # pragma: no cover - defensive: surface worker crashes
        import traceback

        result_queue.put((walk_id, {"error": traceback.format_exc()}))
