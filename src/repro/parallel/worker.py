"""Process-executor worker entry point.

Kept in its own importable module so :mod:`multiprocessing` can pickle the
target function under every start method (fork, spawn, forkserver).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.config import AdaptiveSearchConfig
from repro.core.solver import AdaptiveSearch
from repro.problems.base import Problem

__all__ = ["CancelCheckCallback", "run_walk"]


class CancelCheckCallback:
    """Cancels a walk when a shared event is set.

    The event is only polled every ``poll_every`` iterations: the check is a
    cross-process read, and the paper's scheme needs completion detection,
    not instantaneous preemption.
    """

    def __init__(self, cancel_event: Any, poll_every: int = 128) -> None:
        if poll_every < 1:
            raise ValueError(f"poll_every must be >= 1, got {poll_every}")
        self.cancel_event = cancel_event
        self.poll_every = poll_every

    def on_iteration(self, info: Any) -> bool | None:
        if info.iteration % self.poll_every == 0 and self.cancel_event.is_set():
            return False
        return None


def run_walk(
    walk_id: int,
    problem: Problem,
    config: AdaptiveSearchConfig,
    seed: np.random.SeedSequence,
    cancel_event: Any,
    result_queue: Any,
    poll_every: int = 128,
    trace_id: str = "",
    milestone_every: int = 0,
) -> None:
    """Run one walk; report the outcome and raise the completion flag.

    Always enqueues exactly one ``(walk_id, payload)`` tuple, where payload
    is either a result dict or an ``{"error": traceback}`` dict.  When
    ``trace_id`` is set the walk runs under a ring-buffered telemetry
    recorder and the drained records ride home in ``payload["telemetry"]``
    — the result queue doubles as the telemetry uplink, same scheme as the
    warm-pool worker.
    """
    try:
        solver = AdaptiveSearch(config)
        callbacks: list[Any] = [CancelCheckCallback(cancel_event, poll_every)]
        ring = None
        if trace_id:
            from repro.telemetry.recorder import Recorder
            from repro.telemetry.sinks import RingBufferSink
            from repro.telemetry.solver import TelemetryCallback

            ring = RingBufferSink()
            recorder = Recorder(
                sinks=[ring],
                proc=f"walk-{walk_id}",
                milestone_every=milestone_every,
            )
            callbacks.append(
                TelemetryCallback(recorder, trace_id=trace_id, walk_id=walk_id)
            )
        result = solver.solve(problem, seed=seed, callbacks=callbacks)
        if result.solved:
            # completion notification: the only inter-process communication
            cancel_event.set()
        payload = {
            "solved": result.solved,
            "cost": result.cost,
            "iterations": result.stats.iterations,
            "wall_time": result.stats.wall_time,
            "reason": result.reason.name,
            "config": result.config.tolist() if result.solved else None,
        }
        if ring is not None:
            payload["telemetry"] = ring.drain()
        result_queue.put((walk_id, payload))
    except Exception:  # pragma: no cover - defensive: surface worker crashes
        import traceback

        result_queue.put((walk_id, {"error": traceback.format_exc()}))
