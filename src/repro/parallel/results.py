"""Result types of multi-walk runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.termination import TerminationReason

__all__ = ["WalkOutcome", "ParallelResult"]


@dataclass
class WalkOutcome:
    """What one walk reported when it stopped."""

    walk_id: int
    solved: bool
    cost: float
    iterations: int
    wall_time: float
    reason: TerminationReason
    config: Optional[np.ndarray] = None

    def as_dict(self) -> dict[str, object]:
        return {
            "walk_id": self.walk_id,
            "solved": self.solved,
            "cost": self.cost,
            "iterations": self.iterations,
            "wall_time": self.wall_time,
            "reason": self.reason.name,
        }


@dataclass
class ParallelResult:
    """Outcome of one independent multi-walk execution.

    ``wall_time`` is the parallel completion time under multi-walk
    semantics: the winner's solving time (inline executor computes it as the
    exact min across walks; the process executor measures it).
    ``elapsed_time`` is the real time the whole call took on this host —
    on a single-core machine running ``k`` inline walks it is roughly the
    *sum*, not the min, which is exactly why the platform simulation exists.
    """

    solved: bool
    n_walkers: int
    winner: Optional[WalkOutcome]
    walks: list[WalkOutcome] = field(default_factory=list)
    wall_time: float = 0.0
    elapsed_time: float = 0.0
    executor: str = "inline"

    @property
    def config(self) -> Optional[np.ndarray]:
        """The winning configuration, if any walk solved."""
        return self.winner.config if self.winner is not None else None

    @property
    def total_iterations(self) -> int:
        """Iterations summed over all walks (total work performed)."""
        return sum(w.iterations for w in self.walks)

    def summary(self) -> str:
        status = (
            f"SOLVED by walk {self.winner.walk_id}" if self.solved else "UNSOLVED"
        )
        return (
            f"multi-walk x{self.n_walkers} [{self.executor}]: {status}, "
            f"parallel wall time {self.wall_time:.3f}s, "
            f"total work {self.total_iterations} iterations"
        )
