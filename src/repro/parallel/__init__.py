"""Independent multi-walk parallel runtime.

The paper's parallelization scheme: launch ``k`` independent copies of the
sequential Adaptive Search engine from different random initial
configurations, with **no communication except completion** — the first walk
to find a solution terminates all others.

Two executors are provided:

- ``"process"`` — real OS processes via :mod:`multiprocessing` (the GIL rules
  out threads for a CPU-bound Python solver); walks poll a shared cancel
  event between iterations, mirroring the paper's MPI termination message.
- ``"inline"`` — every walk runs to completion sequentially in-process and
  the parallel wall time is *computed* as the minimum across walks.  For
  zero-communication multi-walks this is semantically exact, determinstic,
  and is what the simulated-platform experiments build on.

A third executor, ``"pool"``, delegates the walks to the persistent
warm-worker pool of :mod:`repro.service` — same first-finisher semantics,
but the processes are spawned once and shared across solves (and across
concurrent jobs), so per-call launch overhead disappears.
"""

from repro.parallel.cooperative import (
    CooperationConfig,
    CooperativeMultiWalk,
    CooperativeResult,
    ElitePool,
)
from repro.parallel.multiwalk import MultiWalkSolver, solve_parallel
from repro.parallel.results import ParallelResult, WalkOutcome
from repro.parallel.scaling import ScalingPoint, ScalingStudy, measure_scaling
from repro.parallel.seeding import partition_seeds, partition_walks, walk_seeds

__all__ = [
    "MultiWalkSolver",
    "CooperativeMultiWalk",
    "CooperationConfig",
    "CooperativeResult",
    "ElitePool",
    "solve_parallel",
    "ParallelResult",
    "WalkOutcome",
    "walk_seeds",
    "partition_seeds",
    "partition_walks",
    "measure_scaling",
    "ScalingStudy",
    "ScalingPoint",
]
