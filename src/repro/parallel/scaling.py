"""Measured multi-walk scaling studies (no simulation).

The platform simulator extrapolates from sequential samples; this module
measures multi-walk scaling *directly* with the exact inline executor —
every walker's full trajectory is executed, and the parallel completion
cost is the winner's own iteration count.  Direct measurement is what
validates the simulator (see ``tests/integration``) and what a user runs
to study scaling of their own problem without any platform model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.config import AdaptiveSearchConfig
from repro.errors import ParallelError
from repro.parallel.multiwalk import MultiWalkSolver
from repro.problems.base import Problem
from repro.util.rng import SeedLike, spawn_seeds

__all__ = ["ScalingPoint", "ScalingStudy", "measure_scaling"]


@dataclass(frozen=True)
class ScalingPoint:
    """Measured behaviour at one walker count."""

    walkers: int
    mean_parallel_iterations: float
    median_parallel_iterations: float
    mean_total_iterations: float
    solve_rate: float
    repetitions: int

    @property
    def work_efficiency(self) -> float:
        """Winner iterations / total iterations — wasted-work measure."""
        if self.mean_total_iterations == 0:
            return 0.0
        return self.mean_parallel_iterations * self.walkers / self.mean_total_iterations


@dataclass
class ScalingStudy:
    """A full measured sweep over walker counts."""

    problem_name: str
    points: list[ScalingPoint] = field(default_factory=list)

    def speedups(self) -> dict[int, float]:
        """Mean-parallel-iteration speedups relative to the 1-walker point.

        Requires the sweep to include ``walkers=1``.
        """
        baseline = next(
            (p for p in self.points if p.walkers == 1), None
        )
        if baseline is None:
            raise ParallelError("speedups need a 1-walker baseline in the sweep")
        if baseline.mean_parallel_iterations <= 0:
            raise ParallelError("baseline mean iterations is zero")
        return {
            p.walkers: baseline.mean_parallel_iterations
            / max(p.mean_parallel_iterations, 1e-12)
            for p in self.points
        }

    def as_rows(self) -> list[list[object]]:
        return [
            [
                p.walkers,
                p.mean_parallel_iterations,
                p.median_parallel_iterations,
                p.solve_rate,
                p.work_efficiency,
            ]
            for p in self.points
        ]


def measure_scaling(
    problem: Problem,
    walker_counts: Sequence[int],
    *,
    repetitions: int = 5,
    config: AdaptiveSearchConfig | None = None,
    seed: SeedLike = None,
) -> ScalingStudy:
    """Measure multi-walk scaling with the exact inline executor.

    For each walker count, ``repetitions`` independent multi-walk runs are
    executed; the parallel cost of a run is the winning walk's iteration
    count (iteration clock — all walkers advance at the same rate on
    dedicated cores).  Unsolved runs contribute their largest walk cost
    and lower the ``solve_rate``.
    """
    if repetitions < 1:
        raise ParallelError(f"repetitions must be >= 1, got {repetitions}")
    counts = [int(k) for k in walker_counts]
    if not counts or any(k < 1 for k in counts):
        raise ParallelError(f"invalid walker counts: {walker_counts}")
    solver = MultiWalkSolver(config or AdaptiveSearchConfig(), executor="inline")
    rep_seeds = spawn_seeds(repetitions, seed)

    points: list[ScalingPoint] = []
    for walkers in counts:
        parallel_iters: list[float] = []
        total_iters: list[float] = []
        solved = 0
        for rep_seed in rep_seeds:
            result = solver.solve(problem, walkers, seed=rep_seed)
            if result.solved:
                solved += 1
                winners = [w.iterations for w in result.walks if w.solved]
                parallel_iters.append(float(min(winners)))
            else:
                parallel_iters.append(
                    float(max(w.iterations for w in result.walks))
                )
            total_iters.append(float(result.total_iterations))
        points.append(
            ScalingPoint(
                walkers=walkers,
                mean_parallel_iterations=float(np.mean(parallel_iters)),
                median_parallel_iterations=float(np.median(parallel_iters)),
                mean_total_iterations=float(np.mean(total_iters)),
                solve_rate=solved / repetitions,
                repetitions=repetitions,
            )
        )
    return ScalingStudy(problem_name=problem.name, points=points)
