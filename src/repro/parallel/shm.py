"""Zero-copy shared-memory problem state.

A problem instance is dominated by its constant tables (cell/row/column
index maps, domain arrays, CSR-style incidence structures).  Shipping those
through a queue pickles them once per worker — and again on every respawn
or per-job dispatch.  This module publishes them **once** into a
:class:`multiprocessing.shared_memory.SharedMemory` segment and hands
around a tiny :class:`ShmManifest` instead.

Mechanics
---------
``publish`` pickles the problem with protocol 5 and a ``buffer_callback``,
so every NumPy array inside the object comes out as an out-of-band
:class:`pickle.PickleBuffer` rather than being copied into the pickle
stream.  The (small) pickle plus the raw buffers are laid out back-to-back
in one segment::

    [ pickle bytes | buffer 0 | buffer 1 | ... ]

and the manifest records the segment name, the pickle length and each
buffer's ``(offset, length)``.  ``attach`` maps the segment and rebuilds
the object with ``pickle.loads(..., buffers=...)`` over **read-only views
of the mapped memory** — the arrays inside the reconstructed problem alias
the shared pages directly (zero copy, and immutable so one worker can
never corrupt another's tables).

Ownership
---------
The *publisher* owns every segment: only :meth:`SharedProblemStore.release`
/ :meth:`SharedProblemStore.close` unlink.  Attachers must call
:func:`detach` (or let :func:`attach_problem`'s handle do it) which merely
closes the local mapping.  On Python < 3.13 attaching auto-registers the
segment with the ``resource_tracker`` — and because one tracker process is
shared by the whole process tree, *any* bookkeeping an attacher does there
races the publisher's own entry (an attach-then-unregister deletes it; a
bare attach double-unlinks at exit).  :func:`attach_problem` therefore
suppresses the registration itself while mapping, so the tracker only ever
holds the publisher's entry.  A publisher that dies without cleanup is
covered by that entry, so crashed runs do not leak segments either.
"""

from __future__ import annotations

import hashlib
import pickle
import secrets
import threading
from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Optional

from repro.errors import ParallelError

__all__ = [
    "ShmManifest",
    "SharedProblemStore",
    "AttachedProblem",
    "attach_problem",
    "problem_digest",
]

_attach_lock = threading.Lock()


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Map an existing segment without registering it with the tracker.

    Python < 3.13 has no ``track=False``; patching the module-level
    ``register`` for the duration of the constructor is the standard
    workaround.  The lock serializes concurrent attaches in one process
    (publishes are unaffected: ``create=True`` must keep registering).
    """
    with _attach_lock:
        original = resource_tracker.register

        def _skip_shm(res_name: str, rtype: str) -> None:
            if rtype != "shared_memory":  # pragma: no cover - defensive
                original(res_name, rtype)

        resource_tracker.register = _skip_shm  # type: ignore[assignment]
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original  # type: ignore[assignment]


@dataclass(frozen=True)
class ShmManifest:
    """Everything an attacher needs: a name, a layout, and a digest.

    The manifest itself is tiny and cheap to pickle — it is what crosses
    queues and sockets instead of the problem.  ``digest`` identifies the
    *content* (pickle stream + buffers), so caches keyed on it are safe
    across processes and hosts.
    """

    segment: str
    pickle_len: int
    buffers: tuple[tuple[int, int], ...]  # (offset, length) per buffer
    digest: str
    total_len: int


def _serialize(problem: Any) -> tuple[bytes, list[pickle.PickleBuffer]]:
    raws: list[pickle.PickleBuffer] = []
    try:
        head = pickle.dumps(problem, protocol=5, buffer_callback=raws.append)
    except Exception as err:
        raise ParallelError(
            f"problem {type(problem).__name__!r} is not picklable and "
            f"cannot be published to shared memory: {err}"
        ) from err
    return head, raws


def problem_digest(problem: Any) -> str:
    """Content digest of a problem's serialized form (hex).

    Matches the digest of a manifest produced by ``publish`` for an equal
    object, which is what lets dispatch layers send a digest reference in
    place of the payload once the receiver has the problem cached.
    """
    head, raws = _serialize(problem)
    h = hashlib.blake2b(head, digest_size=16)
    for raw in raws:
        h.update(raw.raw())
    return h.hexdigest()


class SharedProblemStore:
    """Publisher side: owns segments, publishes problems, unlinks on close.

    Deduplicates by object identity (strong reference kept) *and* by
    content digest, so republishing an equal problem returns the existing
    manifest instead of a second segment.
    """

    def __init__(self, prefix: str = "repro") -> None:
        self._prefix = prefix
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        self._by_id: dict[int, ShmManifest] = {}
        self._keep: dict[int, Any] = {}  # id -> problem (pins identity)
        self._by_digest: dict[str, ShmManifest] = {}
        self._closed = False

    # ------------------------------------------------------------------
    def publish(self, problem: Any) -> ShmManifest:
        if self._closed:
            raise ParallelError("shared problem store is closed")
        cached = self._by_id.get(id(problem))
        if cached is not None:
            return cached
        head, raws = _serialize(problem)
        views = [raw.raw() for raw in raws]
        h = hashlib.blake2b(head, digest_size=16)
        for view in views:
            h.update(view)
        digest = h.hexdigest()
        manifest = self._by_digest.get(digest)
        if manifest is None:
            layout: list[tuple[int, int]] = []
            offset = len(head)
            for view in views:
                layout.append((offset, view.nbytes))
                offset += view.nbytes
            total = max(1, offset)
            name = f"{self._prefix}-{secrets.token_hex(6)}"
            seg = shared_memory.SharedMemory(
                name=name, create=True, size=total
            )
            seg.buf[: len(head)] = head
            for (buf_off, buf_len), view in zip(layout, views):
                seg.buf[buf_off : buf_off + buf_len] = view.cast("B")
            manifest = ShmManifest(
                segment=seg.name,
                pickle_len=len(head),
                buffers=tuple(layout),
                digest=digest,
                total_len=total,
            )
            self._segments[seg.name] = seg
            self._by_digest[digest] = manifest
        self._by_id[id(problem)] = manifest
        self._keep[id(problem)] = problem
        return manifest

    # ------------------------------------------------------------------
    def release(self, manifest: ShmManifest) -> None:
        """Unlink one published segment (idempotent)."""
        seg = self._segments.pop(manifest.segment, None)
        if seg is None:
            return
        self._by_digest.pop(manifest.digest, None)
        stale = [
            pid for pid, m in self._by_id.items()
            if m.segment == manifest.segment
        ]
        for pid in stale:
            self._by_id.pop(pid, None)
            self._keep.pop(pid, None)
        seg.close()
        try:
            seg.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def close(self) -> None:
        """Unlink every published segment (idempotent)."""
        self._closed = True
        for manifest in list(self._by_digest.values()):
            self.release(manifest)

    def __enter__(self) -> "SharedProblemStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    @property
    def segment_names(self) -> list[str]:
        return sorted(self._segments)


@dataclass
class AttachedProblem:
    """Attacher-side handle: the problem plus the mapping keeping it alive.

    The reconstructed problem's arrays alias the mapped segment, so the
    mapping must outlive the problem.  Call :meth:`detach` only once the
    problem is no longer in use (worker shutdown).
    """

    problem: Any
    manifest: ShmManifest
    _segment: Optional[shared_memory.SharedMemory] = field(default=None)

    def detach(self) -> None:
        if self._segment is not None:
            seg, self._segment = self._segment, None
            self.problem = None
            seg.close()


def attach_problem(manifest: ShmManifest) -> AttachedProblem:
    """Map a published problem without copying its tables.

    The returned handle owns the local mapping; the segment itself still
    belongs to the publisher (see module docstring for the ownership and
    resource-tracker rules).
    """
    try:
        seg = _attach_untracked(manifest.segment)
    except FileNotFoundError as err:
        raise ParallelError(
            f"shared problem segment {manifest.segment!r} has vanished "
            "(publisher gone?)"
        ) from err
    buf = seg.buf
    head = bytes(buf[: manifest.pickle_len])
    views = [
        memoryview(buf)[off : off + length].toreadonly()
        for off, length in manifest.buffers
    ]
    try:
        problem = pickle.loads(head, buffers=views)
    except Exception:
        seg.close()
        raise
    return AttachedProblem(problem=problem, manifest=manifest, _segment=seg)
