"""Trace reconstruction: merge per-process JSONL files into one timeline.

A traced distributed solve leaves one JSONL file per process in the trace
directory (``client.jsonl``, ``coordinator.jsonl``, ``node-0.jsonl``,
worker records shipped through the node files...).  :func:`load_trace`
merges them, :func:`analyze_trace` folds the merged records into a
:class:`TraceSummary` (per-walk timing, dispatch overhead, cancel
latency), and the render helpers print the human timeline + latency
breakdown that back the ``repro trace`` CLI verb.

All cross-process ordering uses the wall-clock ``ts`` stamps; durations
(spans, cancel latency) were measured on monotonic clocks inside one
process, so the *numbers* are skew-free even if the ordering between
hosts is only as good as their clock sync.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional

from repro.errors import TelemetryError
from repro.telemetry.sinks import read_jsonl

__all__ = [
    "WalkTimeline",
    "TraceSummary",
    "load_trace",
    "analyze_trace",
    "render_timeline",
    "render_report",
]


def load_trace(path: str | Path) -> list[dict[str, Any]]:
    """Load one trace file or every ``*.jsonl`` in a directory, merged and
    sorted by timestamp."""
    path = Path(path)
    if path.is_dir():
        files = sorted(path.glob("*.jsonl"))
        if not files:
            raise TelemetryError(f"no .jsonl trace files under {path}")
        records: list[dict[str, Any]] = []
        for file in files:
            records.extend(read_jsonl(file))
    elif path.is_file():
        records = read_jsonl(path)
    else:
        raise TelemetryError(f"trace path {path} does not exist")
    records.sort(key=lambda r: r.get("ts", 0.0))
    return records


@dataclass
class WalkTimeline:
    """Reconstructed lifecycle of one walk of the traced job."""

    walk_id: int
    dispatch_ts: Optional[float] = None
    start_ts: Optional[float] = None
    finish_ts: Optional[float] = None
    node: str = ""
    proc: str = ""
    solved: bool = False
    iterations: int = 0
    wall_time: float = 0.0

    @property
    def dispatch_overhead(self) -> Optional[float]:
        """Dispatch decision -> walk actually iterating (seconds)."""
        if self.dispatch_ts is None or self.start_ts is None:
            return None
        return max(0.0, self.start_ts - self.dispatch_ts)


@dataclass
class TraceSummary:
    """Everything :func:`analyze_trace` can say about one traced solve."""

    trace_id: str = ""
    submit_ts: Optional[float] = None
    finish_ts: Optional[float] = None
    status: str = ""
    n_events: int = 0
    walks: dict[int, WalkTimeline] = field(default_factory=dict)
    spans: list[dict[str, Any]] = field(default_factory=list)
    assigns: list[dict[str, Any]] = field(default_factory=list)
    cancel_broadcast_ts: Optional[float] = None
    cancel_acks: list[dict[str, Any]] = field(default_factory=list)
    first_solve: Optional[dict[str, Any]] = None
    restarts: int = 0
    resets: int = 0
    hedges: list[dict[str, Any]] = field(default_factory=list)
    faults: list[dict[str, Any]] = field(default_factory=list)
    elite_reports: list[dict[str, Any]] = field(default_factory=list)
    elite_adopts: list[dict[str, Any]] = field(default_factory=list)
    migrations: list[dict[str, Any]] = field(default_factory=list)
    failovers: list[dict[str, Any]] = field(default_factory=list)

    # ------------------------------------------------------------------
    @property
    def roundtrip(self) -> Optional[float]:
        """Client-observed submit -> finish, when both ends were traced."""
        if self.submit_ts is None or self.finish_ts is None:
            return None
        return max(0.0, self.finish_ts - self.submit_ts)

    @property
    def dispatch_overheads(self) -> list[float]:
        return sorted(
            w.dispatch_overhead
            for w in self.walks.values()
            if w.dispatch_overhead is not None
        )

    @property
    def cancel_latencies(self) -> list[float]:
        return sorted(a["latency"] for a in self.cancel_acks)

    @property
    def complete(self) -> bool:
        """Does the trace cover the full dispatch -> solve -> cancel arc?"""
        return (
            self.submit_ts is not None
            and any(w.start_ts is not None for w in self.walks.values())
            and any(w.finish_ts is not None for w in self.walks.values())
            and self.first_solve is not None
            and self.cancel_broadcast_ts is not None
            and len(self.cancel_acks) > 0
        )


#: precedence of terminal statuses when one trace carries several
#: ``job_finish`` events (higher wins; "cancelled" is the weakest because
#: losing sub-jobs of a *solved* race finish cancelled by design)
_STATUS_RANK = {"cancelled": 1, "timed_out": 2, "failed": 3, "solved": 4}


def _walk(summary: TraceSummary, walk_id: int) -> WalkTimeline:
    timeline = summary.walks.get(walk_id)
    if timeline is None:
        timeline = WalkTimeline(walk_id=walk_id)
        summary.walks[walk_id] = timeline
    return timeline


def analyze_trace(
    records: list[dict[str, Any]], trace_id: str | None = None
) -> TraceSummary:
    """Fold merged trace records into a :class:`TraceSummary`.

    With ``trace_id=None`` the dominant trace id in the records is
    analyzed (most solves produce exactly one); pass an explicit id to
    pick one solve out of a busy trace directory.
    """
    if trace_id is None:
        counts: dict[str, int] = {}
        for record in records:
            tid = record.get("trace_id") or ""
            if tid:
                counts[tid] = counts.get(tid, 0) + 1
        if counts:
            trace_id = max(counts, key=counts.get)  # type: ignore[arg-type]
    summary = TraceSummary(trace_id=trace_id or "")
    for record in records:
        if trace_id and record.get("trace_id") not in ("", trace_id):
            continue
        summary.n_events += 1
        kind = record.get("event")
        ts = record.get("ts", 0.0)
        walk_id = record.get("walk_id", -1)
        if kind == "job_submit":
            if summary.submit_ts is None or ts < summary.submit_ts:
                summary.submit_ts = ts
        elif kind == "job_dispatch":
            timeline = _walk(summary, walk_id)
            if timeline.dispatch_ts is None or ts < timeline.dispatch_ts:
                timeline.dispatch_ts = ts
            if record.get("node"):
                timeline.node = record["node"]
        elif kind == "walk_start":
            timeline = _walk(summary, walk_id)
            if timeline.start_ts is None or ts < timeline.start_ts:
                timeline.start_ts = ts
                timeline.proc = record.get("proc", "")
        elif kind == "walk_finish":
            timeline = _walk(summary, walk_id)
            timeline.finish_ts = ts
            timeline.solved = bool(record.get("solved"))
            timeline.iterations = int(record.get("iterations", 0))
            timeline.wall_time = float(record.get("wall_time", 0.0))
        elif kind == "assign":
            summary.assigns.append(record)
            for assigned in record.get("walk_ids", ()):
                timeline = _walk(summary, assigned)
                if record.get("node") and not timeline.node:
                    timeline.node = record["node"]
        elif kind == "cancel_broadcast":
            if (
                summary.cancel_broadcast_ts is None
                or ts < summary.cancel_broadcast_ts
            ):
                summary.cancel_broadcast_ts = ts
        elif kind == "cancel_ack":
            summary.cancel_acks.append(record)
        elif kind == "first_solve":
            if summary.first_solve is None:
                summary.first_solve = record
        elif kind == "job_finish":
            if summary.finish_ts is None or ts > summary.finish_ts:
                summary.finish_ts = ts
            # several layers emit a finish for the same solve (client,
            # coordinator, per-node sub-jobs); the most decisive status
            # wins, so a late node-local "cancelled" (a loser sub-job)
            # cannot mask the job having been solved
            status = record.get("status", "")
            rank = _STATUS_RANK.get(status, 0)
            if rank >= _STATUS_RANK.get(summary.status, -1):
                summary.status = status
        elif kind == "restart":
            summary.restarts += 1
        elif kind == "reset":
            summary.resets += 1
        elif kind == "hedge":
            summary.hedges.append(record)
        elif kind == "elite_report":
            summary.elite_reports.append(record)
        elif kind == "elite_adopt":
            summary.elite_adopts.append(record)
        elif kind == "migration":
            summary.migrations.append(record)
        elif kind in ("failover_begin", "failover_complete"):
            summary.failovers.append(record)
        elif kind == "fault":
            summary.faults.append(record)
        elif kind == "span":
            summary.spans.append(record)
    return summary


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def _ms(seconds: float) -> str:
    return f"{seconds * 1e3:.1f}ms"


def render_timeline(
    records: list[dict[str, Any]], summary: TraceSummary
) -> str:
    """Chronological event listing, offsets relative to the submit."""
    origin = summary.submit_ts
    if origin is None:
        stamps = [r.get("ts", 0.0) for r in records if r.get("ts")]
        origin = min(stamps) if stamps else 0.0
    lines = [f"trace {summary.trace_id or '<untagged>'}"]
    for record in records:
        if summary.trace_id and record.get("trace_id") not in (
            "",
            summary.trace_id,
        ):
            continue
        kind = record.get("event", "?")
        if kind == "iteration":
            continue  # milestones are for metrics, not the timeline listing
        offset = record.get("ts", 0.0) - origin
        proc = record.get("proc", "?")
        detail = _describe(record)
        lines.append(f"  +{offset * 1e3:9.1f}ms  [{proc:>12}]  {detail}")
    return "\n".join(lines)


def _describe(record: dict[str, Any]) -> str:
    kind = record.get("event", "?")
    if kind == "job_submit":
        return (
            f"job_submit job={record.get('job_id')} "
            f"n_walkers={record.get('n_walkers')} "
            f"problem={record.get('problem') or '?'}"
        )
    if kind == "assign":
        return (
            f"assign job={record.get('job_id')} -> {record.get('node')} "
            f"walks={record.get('walk_ids')} gen={record.get('generation')}"
        )
    if kind == "job_dispatch":
        where = record.get("node") or f"worker {record.get('worker')}"
        return (
            f"dispatch job={record.get('job_id')} "
            f"walk={record.get('walk_id')} -> {where}"
        )
    if kind == "walk_start":
        return (
            f"walk_start walk={record.get('walk_id')} "
            f"cost={record.get('cost')}"
        )
    if kind == "walk_finish":
        verdict = "SOLVED" if record.get("solved") else "unsolved"
        return (
            f"walk_finish walk={record.get('walk_id')} {verdict} "
            f"iters={record.get('iterations')} "
            f"wall={_ms(record.get('wall_time', 0.0))}"
        )
    if kind == "first_solve":
        return (
            f"first_solve walk={record.get('walk_id')} "
            f"on {record.get('node') or '?'}"
        )
    if kind == "cancel_broadcast":
        return (
            f"cancel_broadcast job={record.get('job_id')} "
            f"-> {list(record.get('nodes', ()))}"
        )
    if kind == "cancel_ack":
        return (
            f"cancel_ack from {record.get('node')} "
            f"rtt={_ms(record.get('latency', 0.0))}"
        )
    if kind == "job_finish":
        return (
            f"job_finish job={record.get('job_id')} "
            f"status={record.get('status')} "
            f"latency={_ms(record.get('latency', 0.0))}"
        )
    if kind == "span":
        return (
            f"span {record.get('name')} {_ms(record.get('duration', 0.0))}"
        )
    if kind == "hedge":
        line = (
            f"hedge job={record.get('job_id')} walk={record.get('walk_id')} "
            f"{record.get('from_node') or '?'} -> {record.get('node')} "
            f"after {_ms(record.get('elapsed', 0.0))}"
        )
        if record.get("trigger"):
            line += (
                f" [{record['trigger']} > "
                f"{_ms(record.get('threshold', 0.0))}]"
            )
        return line
    if kind == "elite_report":
        return (
            f"elite_report island={record.get('island')} "
            f"round={record.get('round_index')} "
            f"cost={record.get('cost')} from {record.get('node') or '?'}"
        )
    if kind == "elite_adopt":
        return (
            f"elite_adopt walk={record.get('walk_id')} "
            f"island={record.get('island')} "
            f"cost {record.get('cost_before')} -> {record.get('cost_elite')} "
            f"@iter {record.get('iteration')}"
        )
    if kind == "migration":
        return (
            f"migration round={record.get('round_index')} "
            f"island {record.get('from_island')} -> "
            f"{record.get('to_island')} "
            f"cost={record.get('cost')} digest={record.get('digest')}"
        )
    if kind == "failover_begin":
        return (
            f"failover_begin leader={record.get('leader')} "
            f"standby={record.get('standby')} "
            f"reason={record.get('reason')}"
        )
    if kind == "failover_complete":
        return (
            f"failover_complete standby={record.get('standby')} "
            f"jobs_recovered={record.get('jobs_recovered')} "
            f"took {_ms(record.get('elapsed', 0.0))}"
        )
    if kind == "fault":
        detail = record.get("detail") or ""
        return (
            f"fault injected: {record.get('site')}/{record.get('action')}"
            + (f" ({detail})" if detail else "")
        )
    if kind == "restart":
        return f"restart #{record.get('restart_index')} walk={record.get('walk_id')}"
    if kind == "reset":
        return (
            f"reset walk={record.get('walk_id')} "
            f"iter={record.get('iteration')}"
        )
    return " ".join(
        f"{k}={v}"
        for k, v in record.items()
        if k not in ("ts", "proc", "trace_id")
    )


def render_report(summary: TraceSummary) -> str:
    """Latency-breakdown report: per-walk spans, dispatch overhead,
    cancel-propagation latency."""
    lines: list[str] = ["", "latency breakdown"]
    if summary.roundtrip is not None:
        lines.append(
            f"  end-to-end           {_ms(summary.roundtrip)} "
            f"(status {summary.status or '?'})"
        )
    overheads = summary.dispatch_overheads
    if overheads:
        lines.append(
            f"  dispatch overhead    min {_ms(overheads[0])}  "
            f"median {_ms(overheads[len(overheads) // 2])}  "
            f"max {_ms(overheads[-1])}  ({len(overheads)} walks)"
        )
    acks = summary.cancel_latencies
    if acks:
        lines.append(
            f"  cancel propagation   min {_ms(acks[0])}  "
            f"median {_ms(acks[len(acks) // 2])}  "
            f"max {_ms(acks[-1])}  ({len(acks)} acks)"
        )
    if summary.first_solve is not None and summary.submit_ts is not None:
        lines.append(
            f"  time to first solve  "
            f"{_ms(summary.first_solve.get('ts', 0.0) - summary.submit_ts)}"
            f" (walk {summary.first_solve.get('walk_id')} on "
            f"{summary.first_solve.get('node') or '?'})"
        )
    lines.append("")
    lines.append(f"per-walk spans ({len(summary.walks)} walks)")
    for walk_id in sorted(summary.walks):
        walk = summary.walks[walk_id]
        parts = [f"  walk {walk_id:3d}"]
        if walk.node:
            parts.append(f"on {walk.node:<10}")
        if walk.dispatch_overhead is not None:
            parts.append(f"dispatch {_ms(walk.dispatch_overhead):>8}")
        if walk.finish_ts is not None:
            verdict = "SOLVED" if walk.solved else "unsolved"
            parts.append(
                f"busy {_ms(walk.wall_time):>9} "
                f"iters {walk.iterations:>7} {verdict}"
            )
        elif walk.start_ts is not None:
            parts.append("started, no finish recorded (cancelled mid-walk)")
        else:
            parts.append("never started (cancelled before dispatch landed)")
        lines.append("  ".join(parts))
    if summary.restarts or summary.resets:
        lines.append("")
        lines.append(
            f"solver: {summary.restarts} restart(s), "
            f"{summary.resets} partial reset(s)"
        )
    if summary.hedges:
        lines.append("")
        lines.append(f"hedged re-dispatches ({len(summary.hedges)})")
        for hedge in summary.hedges:
            attribution = ""
            if hedge.get("trigger"):
                # why it fired: which rule tripped and what threshold the
                # observed elapsed time exceeded
                attribution = (
                    f" [{hedge['trigger']} > "
                    f"{_ms(hedge.get('threshold', 0.0))}]"
                )
            lines.append(
                f"  walk {hedge.get('walk_id')} "
                f"{hedge.get('from_node') or '?'} -> {hedge.get('node')} "
                f"after {_ms(hedge.get('elapsed', 0.0))}"
                + attribution
            )
    if summary.migrations or summary.elite_reports or summary.elite_adopts:
        lines.append("")
        lines.append(
            f"cooperative search: {len(summary.elite_reports)} elite "
            f"report(s), {len(summary.migrations)} migration(s), "
            f"{len(summary.elite_adopts)} adoption(s)"
        )
        for migration in summary.migrations:
            lines.append(
                f"  round {migration.get('round_index'):>3}  "
                f"island {migration.get('from_island')} -> "
                f"{migration.get('to_island')}  "
                f"cost {migration.get('cost')}  "
                f"digest {migration.get('digest')}"
            )
    if summary.failovers:
        lines.append("")
        completes = [
            f for f in summary.failovers if f.get("event") == "failover_complete"
        ]
        lines.append(
            f"coordinator failover ({len(completes)} takeover(s))"
        )
        for record in summary.failovers:
            if record.get("event") == "failover_begin":
                lines.append(
                    f"  leader {record.get('leader')} lost "
                    f"({record.get('reason')}), standby "
                    f"{record.get('standby')} taking over"
                )
            else:
                lines.append(
                    f"  promoted {record.get('standby')} in "
                    f"{_ms(record.get('elapsed', 0.0))}, "
                    f"{record.get('jobs_recovered')} job(s) recovered"
                )
    if summary.faults:
        lines.append("")
        lines.append(
            f"injected faults ({len(summary.faults)}): "
            + ", ".join(
                f"{f.get('site')}/{f.get('action')}" for f in summary.faults
            )
        )
    return "\n".join(lines)
