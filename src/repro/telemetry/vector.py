"""Vector-engine telemetry: per-lane counters from lock-step rounds.

The scalar solver emits through per-iteration callbacks; the vector engine
has no per-iteration seam (a round advances *all* lanes at once), so this
adapter hooks the engine's ``round_callback`` instead and samples the
per-lane iteration counters the engine already maintains as arrays.

Mirroring :func:`repro.telemetry.solver.solver_callbacks`, the factory
returns ``None`` when telemetry is off, so a telemetry-off vector run
carries no callback at all and the engine's hot loop skips the hook
entirely.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.telemetry.events import IterationMilestone, WalkFinish, WalkStart
from repro.telemetry.recorder import Recorder, get_recorder

__all__ = ["VectorTelemetry", "vector_telemetry"]


class VectorTelemetry:
    """Per-lane lifecycle events + sampled milestones for one vector run.

    ``walk_ids[lane]`` maps engine lanes to cluster-wide walk identities so
    merged traces line up with every other executor.  Three registry
    instruments aggregate across lanes:

    - ``vector.rounds`` — lock-step rounds executed;
    - ``vector.lane_iterations`` — total per-lane iterations (the sum of
      the engine's per-lane counters, comparable to ``solver.iterations``);
    - ``vector.lanes`` — lanes launched.
    """

    def __init__(
        self,
        recorder: Recorder,
        *,
        trace_id: str = "",
        job_id: int = -1,
        walk_ids: Optional[Sequence[int]] = None,
        milestone_every: int | None = None,
    ) -> None:
        self.recorder = recorder
        self.trace_id = trace_id
        self.job_id = job_id
        self.walk_ids = list(walk_ids) if walk_ids is not None else None
        self.milestone_every = (
            recorder.milestone_every
            if milestone_every is None
            else milestone_every
        )
        registry = recorder.registry
        self._rounds = registry.counter("vector.rounds")
        self._lane_iters = registry.counter("vector.lane_iterations")
        self._lanes = registry.counter("vector.lanes")
        self._started = False

    # ------------------------------------------------------------------
    def _walk_id(self, lane: int) -> int:
        if self.walk_ids is None:
            return lane
        return self.walk_ids[lane]

    def on_start(self, engine) -> None:
        """Emit one ``WalkStart`` per lane (call before ``engine.run()``)."""
        self._started = True
        self._lanes.inc(engine.k)
        for lane in range(engine.k):
            self.recorder.emit(
                WalkStart(
                    trace_id=self.trace_id,
                    job_id=self.job_id,
                    walk_id=self._walk_id(lane),
                    cost=float(engine.cost[lane]),
                )
            )

    def round_callback(self, engine) -> None:
        """Engine hook: count rounds, sample per-lane milestones."""
        self._rounds.inc()
        every = self.milestone_every
        if not every or engine.rounds % every:
            return None
        iterations = engine.iterations
        cost = engine.cost
        best = engine.best_cost
        for lane in map(int, engine.active.nonzero()[0]):
            self.recorder.emit(
                IterationMilestone(
                    trace_id=self.trace_id,
                    job_id=self.job_id,
                    walk_id=self._walk_id(lane),
                    iteration=int(iterations[lane]),
                    cost=float(cost[lane]),
                    best_cost=float(best[lane]),
                )
            )
        return None

    def on_finish(self, outcome) -> None:
        """Emit one ``WalkFinish`` per lane from a run outcome."""
        for lane, result in enumerate(outcome.walks):
            self._lane_iters.inc(result.stats.iterations)
            self.recorder.emit(
                WalkFinish(
                    trace_id=self.trace_id,
                    job_id=self.job_id,
                    walk_id=self._walk_id(lane),
                    solved=bool(result.solved),
                    cost=float(result.cost),
                    iterations=result.stats.iterations,
                    wall_time=result.stats.wall_time,
                )
            )


def vector_telemetry(
    recorder: Optional[Recorder] = None,
    *,
    trace_id: str = "",
    job_id: int = -1,
    walk_ids: Optional[Sequence[int]] = None,
    milestone_every: int | None = None,
) -> Optional[VectorTelemetry]:
    """The adapter to splice into a vector run: ``None`` when telemetry is
    off, so the engine runs with no round callback at all."""
    recorder = recorder if recorder is not None else get_recorder()
    if not recorder.enabled:
        return None
    return VectorTelemetry(
        recorder,
        trace_id=trace_id,
        job_id=job_id,
        walk_ids=walk_ids,
        milestone_every=milestone_every,
    )
