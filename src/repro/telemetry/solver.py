"""Solver-side telemetry: the callback that turns loop hooks into events.

:class:`TelemetryCallback` plugs into the existing
:class:`~repro.core.callbacks.CallbackList` seam of
:class:`~repro.core.solver.AdaptiveSearch` — the hot loop itself is not
modified.  ``on_iteration`` is the only per-iteration code and consists of
one modulo and one comparison when sampling is on; :func:`solver_callbacks`
returns an *empty list* when the recorder is disabled, so a telemetry-off
solve carries zero extra callbacks and executes the identical instruction
stream it did before this subsystem existed (the overhead-guard test in
``tests/telemetry/test_overhead.py`` enforces this).
"""

from __future__ import annotations

import time
from typing import Any, Optional

import numpy as np

from repro.telemetry.events import (
    IterationMilestone,
    ResetEvent,
    RestartEvent,
    WalkFinish,
    WalkStart,
)
from repro.telemetry.recorder import Recorder, get_recorder

__all__ = ["TelemetryCallback", "solver_callbacks"]


class TelemetryCallback:
    """Emits walk lifecycle events + sampled iteration milestones."""

    def __init__(
        self,
        recorder: Recorder,
        *,
        trace_id: str = "",
        job_id: int = -1,
        walk_id: int = -1,
        milestone_every: int | None = None,
    ) -> None:
        self.recorder = recorder
        self.trace_id = trace_id
        self.job_id = job_id
        self.walk_id = walk_id
        self.milestone_every = (
            recorder.milestone_every
            if milestone_every is None
            else milestone_every
        )
        self._started = 0.0
        self._last_iteration = 0
        self._hist = recorder.registry.histogram("solver.walk_time")
        self._iters = recorder.registry.counter("solver.iterations")
        self._restarts = recorder.registry.counter("solver.restarts")
        self._resets = recorder.registry.counter("solver.resets")

    # ------------------------------------------------------------------
    def on_start(self, config: np.ndarray, cost: float) -> None:
        self._started = time.perf_counter()
        self.recorder.emit(
            WalkStart(
                trace_id=self.trace_id,
                job_id=self.job_id,
                walk_id=self.walk_id,
                cost=float(cost),
            )
        )

    def on_iteration(self, info: Any) -> None:
        self._last_iteration = info.iteration
        every = self.milestone_every
        if every and info.iteration % every == 0:
            self.recorder.emit(
                IterationMilestone(
                    trace_id=self.trace_id,
                    job_id=self.job_id,
                    walk_id=self.walk_id,
                    iteration=info.iteration,
                    cost=float(info.cost),
                    best_cost=float(info.best_cost),
                )
            )

    def on_restart(self, restart_index: int, cost: float) -> None:
        self._restarts.inc()
        self.recorder.emit(
            RestartEvent(
                trace_id=self.trace_id,
                job_id=self.job_id,
                walk_id=self.walk_id,
                restart_index=restart_index,
                cost=float(cost),
            )
        )

    def on_reset(self, iteration: int, cost: float) -> None:
        self._resets.inc()
        self.recorder.emit(
            ResetEvent(
                trace_id=self.trace_id,
                job_id=self.job_id,
                walk_id=self.walk_id,
                iteration=iteration,
                cost=float(cost),
            )
        )

    def on_finish(self, solved: bool, cost: float) -> None:
        wall_time = (
            time.perf_counter() - self._started if self._started else 0.0
        )
        self._hist.observe(wall_time)
        self._iters.inc(self._last_iteration)
        self.recorder.emit(
            WalkFinish(
                trace_id=self.trace_id,
                job_id=self.job_id,
                walk_id=self.walk_id,
                solved=bool(solved),
                cost=float(cost),
                iterations=self._last_iteration,
                wall_time=wall_time,
            )
        )


def solver_callbacks(
    recorder: Optional[Recorder] = None,
    *,
    trace_id: str = "",
    job_id: int = -1,
    walk_id: int = -1,
    milestone_every: int | None = None,
) -> list[TelemetryCallback]:
    """The callbacks to splice into a solve: ``[]`` when telemetry is off.

    Returning an empty list (rather than a no-op callback) is the
    disable knob that matters: the solver's fan-out loop then has nothing
    extra to call per iteration.
    """
    recorder = recorder if recorder is not None else get_recorder()
    if not recorder.enabled:
        return []
    return [
        TelemetryCallback(
            recorder,
            trace_id=trace_id,
            job_id=job_id,
            walk_id=walk_id,
            milestone_every=milestone_every,
        )
    ]
