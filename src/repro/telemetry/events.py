"""Typed telemetry events and spans.

Every event is a frozen dataclass with a class-level ``kind`` tag; the
module keeps a registry mapping kinds back to classes so JSONL records
round-trip losslessly (:func:`event_to_record` / :func:`event_from_record`).

Common fields:

``ts``
    wall-clock (epoch) timestamp; ``0.0`` means "stamp me on emit" — the
    recorder fills it in so call sites never touch the clock themselves;
``trace_id``
    correlates all events of one distributed solve across processes
    (client, coordinator, node agents, pool workers);
``job_id`` / ``walk_id``
    cluster-scope identifiers where they apply (``-1`` = not applicable).

Spans are the duration-bearing counterpart: ``ts`` is the epoch *start*
and ``duration`` is measured on the monotonic clock, so a span is immune
to wall-clock steps while still sortable into one global timeline.
``parent_id`` links child spans to their parents, letting the ``repro
trace`` reconstruction nest dispatch inside submit inside the whole solve.

:class:`TraceContext` is the tiny picklable token that rides along with a
job through every layer (client frame → coordinator → assign frame →
agent → local Job → WalkTask → worker) so each layer can stamp its events
with the same ``trace_id``.
"""

from __future__ import annotations

import dataclasses
import uuid
from dataclasses import dataclass, field
from typing import Any, Optional, Type

from repro.errors import TelemetryError

__all__ = [
    "TelemetryEvent",
    "JobSubmit",
    "JobDispatch",
    "JobFinish",
    "WalkStart",
    "WalkFinish",
    "IterationMilestone",
    "RestartEvent",
    "ResetEvent",
    "AssignEvent",
    "CancelBroadcast",
    "CancelAck",
    "FirstSolve",
    "HedgeDispatch",
    "EliteReport",
    "EliteAdopt",
    "Migration",
    "FaultInjected",
    "FailoverBegin",
    "FailoverComplete",
    "Span",
    "TraceContext",
    "EVENT_KINDS",
    "new_trace_id",
    "new_span_id",
    "event_to_record",
    "event_from_record",
]


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id (one per distributed solve)."""
    return uuid.uuid4().hex[:16]


def new_span_id() -> str:
    """A fresh 12-hex-char span id."""
    return uuid.uuid4().hex[:12]


@dataclass(frozen=True, kw_only=True)
class TelemetryEvent:
    """Base of every typed event (never emitted itself)."""

    kind = "event"

    ts: float = 0.0
    trace_id: str = ""


@dataclass(frozen=True, kw_only=True)
class JobSubmit(TelemetryEvent):
    """A solve job entered the system (client or service edge)."""

    kind = "job_submit"

    job_id: int = -1
    n_walkers: int = 0
    problem: str = ""


@dataclass(frozen=True, kw_only=True)
class JobDispatch(TelemetryEvent):
    """One walk task handed to a concrete executor slot."""

    kind = "job_dispatch"

    job_id: int = -1
    walk_id: int = -1
    worker: int = -1
    node: str = ""


@dataclass(frozen=True, kw_only=True)
class JobFinish(TelemetryEvent):
    """A job completed (any terminal status)."""

    kind = "job_finish"

    job_id: int = -1
    status: str = ""
    latency: float = 0.0
    queue_wait: float = 0.0


@dataclass(frozen=True, kw_only=True)
class WalkStart(TelemetryEvent):
    """One Adaptive Search walk began iterating."""

    kind = "walk_start"

    job_id: int = -1
    walk_id: int = -1
    cost: float = 0.0


@dataclass(frozen=True, kw_only=True)
class WalkFinish(TelemetryEvent):
    """One walk terminated (solved, budget exhausted, or cancelled)."""

    kind = "walk_finish"

    job_id: int = -1
    walk_id: int = -1
    solved: bool = False
    cost: float = 0.0
    iterations: int = 0
    wall_time: float = 0.0


@dataclass(frozen=True, kw_only=True)
class IterationMilestone(TelemetryEvent):
    """Sampled snapshot of the hot loop (every N-th iteration)."""

    kind = "iteration"

    job_id: int = -1
    walk_id: int = -1
    iteration: int = 0
    cost: float = 0.0
    best_cost: float = 0.0


@dataclass(frozen=True, kw_only=True)
class RestartEvent(TelemetryEvent):
    """The solver restarted from a fresh configuration."""

    kind = "restart"

    job_id: int = -1
    walk_id: int = -1
    restart_index: int = 0
    cost: float = 0.0


@dataclass(frozen=True, kw_only=True)
class ResetEvent(TelemetryEvent):
    """The solver performed a partial reset."""

    kind = "reset"

    job_id: int = -1
    walk_id: int = -1
    iteration: int = 0
    cost: float = 0.0


@dataclass(frozen=True, kw_only=True)
class AssignEvent(TelemetryEvent):
    """The coordinator shipped a walk slice to a node."""

    kind = "assign"

    job_id: int = -1
    node: str = ""
    walk_ids: tuple[int, ...] = ()
    generation: int = 0


@dataclass(frozen=True, kw_only=True)
class CancelBroadcast(TelemetryEvent):
    """First-finisher-wins: cancel fanned out to slice-holding nodes."""

    kind = "cancel_broadcast"

    job_id: int = -1
    nodes: tuple[str, ...] = ()


@dataclass(frozen=True, kw_only=True)
class CancelAck(TelemetryEvent):
    """A node acknowledged a cancel; ``latency`` is the coordinator-measured
    round trip (both stamps on the coordinator's monotonic clock — no
    cross-host clock skew)."""

    kind = "cancel_ack"

    job_id: int = -1
    node: str = ""
    latency: float = 0.0


@dataclass(frozen=True, kw_only=True)
class FirstSolve(TelemetryEvent):
    """The cluster-wide winning walk reported in."""

    kind = "first_solve"

    job_id: int = -1
    walk_id: int = -1
    node: str = ""
    wall_time: float = 0.0


@dataclass(frozen=True, kw_only=True)
class HedgeDispatch(TelemetryEvent):
    """A straggling walk was hedged: a duplicate copy (same seed, same
    generation) dispatched to another node; the first copy to report wins
    and the loser is dropped as stale."""

    kind = "hedge"

    job_id: int = -1
    walk_id: int = -1
    node: str = ""
    from_node: str = ""
    elapsed: float = 0.0
    #: why the hedge fired: ``"quantile"`` (walk outlived the fitted
    #: runtime quantile) or ``"median_factor"`` (the fixed-multiplier
    #: rule).  Empty on records from before this field existed.
    trigger: str = ""
    #: the threshold (seconds) the walk's elapsed time exceeded
    threshold: float = 0.0


@dataclass(frozen=True, kw_only=True)
class EliteReport(TelemetryEvent):
    """An island reported its elite (cost, configuration) for one
    migration round (coordinator-side, protocol v6 ``elite_report``)."""

    kind = "elite_report"

    job_id: int = -1
    island: int = -1
    round_index: int = 0
    cost: float = 0.0
    node: str = ""


@dataclass(frozen=True, kw_only=True)
class EliteAdopt(TelemetryEvent):
    """A walker restarted from a pool elite (island-side): the walker's
    cost before the jump and the elite cost it adopted."""

    kind = "elite_adopt"

    job_id: int = -1
    walk_id: int = -1
    island: int = -1
    iteration: int = 0
    cost_before: float = 0.0
    cost_elite: float = 0.0


@dataclass(frozen=True, kw_only=True)
class Migration(TelemetryEvent):
    """The coordinator relayed one elite between two islands.  ``digest``
    is a short content hash of the migrating configuration, so two runs'
    migration logs can be compared for bit-identical cooperation."""

    kind = "migration"

    job_id: int = -1
    round_index: int = 0
    from_island: int = -1
    to_island: int = -1
    cost: float = 0.0
    digest: str = ""


@dataclass(frozen=True, kw_only=True)
class FaultInjected(TelemetryEvent):
    """The chaos layer injected one fault (site = frame/walk/node/
    coordinator) — lets a merged trace show *when* the failure happened
    relative to the recovery machinery reacting to it."""

    kind = "fault"

    site: str = ""
    action: str = ""
    detail: str = ""


@dataclass(frozen=True, kw_only=True)
class FailoverBegin(TelemetryEvent):
    """A hot standby detected leader failure and began its takeover
    (protocol v7): the leader it was tailing, its own serving address,
    and why it fired (``"lease-timeout"`` or ``"connection-lost"``)."""

    kind = "failover_begin"

    leader: str = ""
    standby: str = ""
    reason: str = ""


@dataclass(frozen=True, kw_only=True)
class FailoverComplete(TelemetryEvent):
    """The standby finished its takeover: mirrored journal replayed,
    generations bumped, and the promoted coordinator is serving.
    ``elapsed`` is detection-to-serving seconds."""

    kind = "failover_complete"

    standby: str = ""
    jobs_recovered: int = 0
    elapsed: float = 0.0


@dataclass(frozen=True, kw_only=True)
class Span(TelemetryEvent):
    """A named duration; ``ts`` is the epoch start time."""

    kind = "span"

    name: str = ""
    duration: float = 0.0
    span_id: str = ""
    parent_id: str = ""
    attrs: dict[str, Any] = field(default_factory=dict)


#: kind tag -> event class, for JSONL reconstruction
EVENT_KINDS: dict[str, Type[TelemetryEvent]] = {
    cls.kind: cls
    for cls in (
        JobSubmit, JobDispatch, JobFinish, WalkStart, WalkFinish,
        IterationMilestone, RestartEvent, ResetEvent, AssignEvent,
        CancelBroadcast, CancelAck, FirstSolve, HedgeDispatch,
        EliteReport, EliteAdopt, Migration, FaultInjected,
        FailoverBegin, FailoverComplete, Span,
    )
}


def event_to_record(event: TelemetryEvent, proc: str = "") -> dict[str, Any]:
    """Flatten an event into the JSONL record shape.

    Tuples become lists (JSON has no tuples); ``event_from_record``
    restores them from the dataclass field types.
    """
    record = dataclasses.asdict(event)
    record["event"] = event.kind
    if proc:
        record["proc"] = proc
    for key, value in record.items():
        if isinstance(value, tuple):
            record[key] = list(value)
    return record


def event_from_record(record: dict[str, Any]) -> TelemetryEvent:
    """Reconstruct the typed event from a JSONL record (strict)."""
    kind = record.get("event")
    cls = EVENT_KINDS.get(kind)  # type: ignore[arg-type]
    if cls is None:
        raise TelemetryError(f"unknown event kind {kind!r} in trace record")
    kwargs: dict[str, Any] = {}
    for f in dataclasses.fields(cls):
        if f.name not in record:
            continue
        value = record[f.name]
        if isinstance(value, list) and f.type.startswith("tuple"):
            value = tuple(value)
        kwargs[f.name] = value
    return cls(**kwargs)


@dataclass(frozen=True)
class TraceContext:
    """Picklable trace token carried through every layer of one solve."""

    trace_id: str
    job_id: int = -1
    walk_id: int = -1

    def for_walk(self, walk_id: int) -> "TraceContext":
        return TraceContext(self.trace_id, self.job_id, walk_id)

    def for_job(self, job_id: int) -> "TraceContext":
        return TraceContext(self.trace_id, job_id, self.walk_id)

    def to_wire(self) -> dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "job_id": self.job_id,
            "walk_id": self.walk_id,
        }

    @classmethod
    def from_wire(cls, data: Optional[dict[str, Any]]) -> Optional["TraceContext"]:
        if not data or not data.get("trace_id"):
            return None
        return cls(
            trace_id=data["trace_id"],
            job_id=int(data.get("job_id", -1)),
            walk_id=int(data.get("walk_id", -1)),
        )
