"""The unified metrics registry: counters, gauges, histograms.

One :class:`MetricsRegistry` per process (usually owned by the process's
:class:`~repro.telemetry.recorder.Recorder`) is the single home for every
numeric instrument in the system — solver counters, service throughput,
coordinator cancel latency.  :class:`~repro.service.metrics.MetricsSnapshot`
is a *view* over this registry, and node heartbeats / the ``repro trace``
report read the same instruments instead of three ad-hoc counter dicts.

Three instrument kinds:

``Counter``
    monotonically increasing total (float increments allowed, e.g. busy
    seconds);
``Gauge``
    a value that goes up and down (jobs in flight);
``Histogram``
    observation distribution with *both* fixed cumulative buckets (the
    Prometheus rendering and a cheap quantile estimate that never grows)
    and a bounded ring of raw observations for exact windowed p50/p95/p99
    — the window is what the legacy service metrics used, so snapshots
    stay numerically identical after the migration.

Every instrument carries its own lock; all operations are O(1) (the ring
is a ``deque(maxlen=...)``), so instruments are safe to touch from
scheduler threads, asyncio callbacks and the reaper simultaneously.
"""

from __future__ import annotations

import bisect
import threading
from collections import deque
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.errors import TelemetryError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
]

#: default histogram bucket upper bounds, tuned for latencies in seconds
#: (1 ms .. 1 min); observations above the last bound land in +Inf
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
    0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

#: default raw-observation window (matches the legacy service ring buffer)
DEFAULT_WINDOW = 16_384


class Counter:
    """A monotonically increasing total."""

    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise TelemetryError(
                f"counter {self.name} cannot decrease (inc by {amount})"
            )
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def to_json(self) -> float | int:
        value = self._value
        return int(value) if float(value).is_integer() else float(value)


class Gauge:
    """A value that can go up and down."""

    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    def set_max(self, value: float) -> None:
        """Raise the gauge to ``value`` if it is below (peak tracking)."""
        with self._lock:
            if value > self._value:
                self._value = float(value)

    @property
    def value(self) -> float:
        return self._value

    def to_json(self) -> float | int:
        value = self._value
        return int(value) if float(value).is_integer() else float(value)


class Histogram:
    """Observation distribution with buckets + an exact-quantile window.

    ``quantile(q)`` is computed from the raw-observation ring when it holds
    anything (exact over the retention window — identical to the legacy
    ``np.percentile`` over a bounded list), and interpolated from the
    cumulative buckets otherwise (``window=0`` disables retention for
    instruments that must stay O(1) in memory under unbounded load).
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        buckets: Sequence[float] | None = None,
        window: int = DEFAULT_WINDOW,
    ) -> None:
        if window < 0:
            raise TelemetryError(f"window must be >= 0, got {window}")
        bounds = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise TelemetryError(
                f"histogram {name} buckets must be strictly increasing"
            )
        self.name = name
        self._lock = threading.Lock()
        self.bounds = bounds
        # one count per bound plus the +Inf overflow bucket
        self._bucket_counts = [0] * (len(bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._window: deque[float] = deque(maxlen=window or 1)
        self._retain = window > 0

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            self._bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
            if self._retain:
                self._window.append(value)

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        """Mean over the retention window (all-time mean when window=0)."""
        with self._lock:
            if self._retain and self._window:
                return float(np.mean(self._window))
            return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (``q`` in [0, 1]); 0.0 with no observations."""
        if not 0.0 <= q <= 1.0:
            raise TelemetryError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            if self._retain and self._window:
                return float(np.percentile(np.asarray(self._window), q * 100))
            if self._count == 0:
                return 0.0
            return self._bucket_quantile(q)

    def _bucket_quantile(self, q: float) -> float:
        """Linear interpolation inside the first bucket whose cumulative
        count reaches ``q * count`` (the classic Prometheus estimate)."""
        rank = q * self._count
        cumulative = 0
        lower = 0.0
        for index, bucket_count in enumerate(self._bucket_counts):
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= rank:
                if index >= len(self.bounds):  # overflow bucket: no upper edge
                    return self.bounds[-1] if self.bounds else 0.0
                upper = self.bounds[index]
                if bucket_count == 0:
                    return upper
                fraction = (rank - previous) / bucket_count
                return lower + (upper - lower) * fraction
            if index < len(self.bounds):
                lower = self.bounds[index]
        return self.bounds[-1] if self.bounds else 0.0

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    def to_json(self) -> dict[str, float | int]:
        return {
            "count": self._count,
            "sum": float(self._sum),
            "mean": float(self.mean),
            "p50": float(self.p50),
            "p95": float(self.p95),
            "p99": float(self.p99),
        }


class MetricsRegistry:
    """Get-or-create home for every instrument in one process.

    Names are dotted (``service.latency``, ``net.cancel_latency``); the
    Prometheus rendering rewrites dots to underscores.  Asking for an
    existing name with a different instrument kind raises — a name means
    one thing everywhere.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    # ------------------------------------------------------------------
    def _get_or_create(self, name: str, factory, kind: str):
        if not name:
            raise TelemetryError("instrument name must be non-empty")
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if existing.kind != kind:
                    raise TelemetryError(
                        f"instrument {name!r} already registered as "
                        f"{existing.kind}, requested {kind}"
                    )
                return existing
            instrument = factory()
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, lambda: Counter(name), "counter")

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, lambda: Gauge(name), "gauge")

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] | None = None,
        window: int = DEFAULT_WINDOW,
    ) -> Histogram:
        return self._get_or_create(
            name, lambda: Histogram(name, buckets, window), "histogram"
        )

    # ------------------------------------------------------------------
    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._instruments)

    def get(self, name: str) -> Optional[Counter | Gauge | Histogram]:
        with self._lock:
            return self._instruments.get(name)

    def instruments(self) -> Iterable[Counter | Gauge | Histogram]:
        with self._lock:
            items = list(self._instruments.items())
        return [instrument for _, instrument in sorted(items)]

    def to_json(self) -> dict[str, float | int | dict]:
        """Flat JSON-safe dump: scalars for counters/gauges, summary dicts
        for histograms (the wire shape of heartbeat telemetry)."""
        return {
            instrument.name: instrument.to_json()
            for instrument in self.instruments()
        }

    def render_prometheus(self) -> str:
        """Prometheus text exposition of every instrument."""
        lines: list[str] = []
        for instrument in self.instruments():
            name = instrument.name.replace(".", "_").replace("-", "_")
            if isinstance(instrument, (Counter, Gauge)):
                lines.append(f"# TYPE {name} {instrument.kind}")
                lines.append(f"{name} {_format_value(instrument.value)}")
            else:
                lines.append(f"# TYPE {name} histogram")
                cumulative = 0
                for bound, count in zip(
                    instrument.bounds, instrument._bucket_counts
                ):
                    cumulative += count
                    lines.append(
                        f'{name}_bucket{{le="{_format_value(bound)}"}} '
                        f"{cumulative}"
                    )
                lines.append(
                    f'{name}_bucket{{le="+Inf"}} {instrument.count}'
                )
                lines.append(f"{name}_sum {_format_value(instrument.total)}")
                lines.append(f"{name}_count {instrument.count}")
        return "\n".join(lines) + ("\n" if lines else "")


def _format_value(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))
