"""Pluggable event sinks.

A sink receives flattened JSON-safe records (the output of
:func:`repro.telemetry.events.event_to_record`) and does something durable
with them.  Three implementations cover the use cases:

- :class:`RingBufferSink` — bounded in-memory ring; the worker-process
  default (records ship back to the scheduler through the pool outbox, so
  they must stay small and allocation-cheap);
- :class:`JsonlSink` — append-only JSON-Lines file, one record per line;
  the durable per-process trace format that ``repro trace`` merges;
- :class:`CompositeSink` — fan-out to several sinks.

All sinks are thread-safe: events may arrive from the scheduler thread,
asyncio callbacks and client threads at once.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from pathlib import Path
from typing import Any, Iterable

from repro.errors import TelemetryError

__all__ = ["RingBufferSink", "JsonlSink", "CompositeSink", "read_jsonl"]


class RingBufferSink:
    """Keeps the most recent ``capacity`` records in memory."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise TelemetryError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._records: deque[dict[str, Any]] = deque(maxlen=capacity)

    def write(self, record: dict[str, Any]) -> None:
        with self._lock:
            self._records.append(record)

    @property
    def records(self) -> list[dict[str, Any]]:
        with self._lock:
            return list(self._records)

    def drain(self) -> list[dict[str, Any]]:
        """Return and clear the buffered records (ship-and-forget)."""
        with self._lock:
            records = list(self._records)
            self._records.clear()
        return records

    def __len__(self) -> int:
        return len(self._records)

    def close(self) -> None:
        pass


class JsonlSink:
    """Appends one JSON object per line to a file (created eagerly)."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        try:
            self._fh = self.path.open("a", encoding="utf-8")
        except OSError as err:
            raise TelemetryError(
                f"cannot open trace file {self.path}: {err}"
            ) from None

    def write(self, record: dict[str, Any]) -> None:
        line = json.dumps(record, separators=(",", ":"), default=str)
        with self._lock:
            if self._fh.closed:
                return
            self._fh.write(line + "\n")
            self._fh.flush()

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.close()


class CompositeSink:
    """Fans every record out to several sinks."""

    def __init__(self, sinks: Iterable[Any]) -> None:
        self.sinks = list(sinks)

    def write(self, record: dict[str, Any]) -> None:
        for sink in self.sinks:
            sink.write(record)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


def read_jsonl(path: str | Path) -> list[dict[str, Any]]:
    """Load every record of one JSONL trace file (skips blank lines)."""
    path = Path(path)
    records: list[dict[str, Any]] = []
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as err:
        raise TelemetryError(f"cannot read trace file {path}: {err}") from None
    for line_no, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as err:
            raise TelemetryError(
                f"{path}:{line_no}: malformed trace record: {err}"
            ) from None
    return records
