"""The process-local telemetry recorder.

One :class:`Recorder` per process owns the event pipeline (typed events →
flattened records → sinks), the span helpers, and the process's
:class:`~repro.telemetry.metrics.MetricsRegistry`.  Everything funnels
through :meth:`Recorder.emit`, whose very first statement is the disabled
check — a disabled recorder costs one attribute load and one branch, and
hot paths are expected to guard with ``if recorder.enabled:`` so they pay
*nothing* when telemetry is off (the solver loop never even constructs the
event object).

The module-level default recorder (:func:`get_recorder` /
:func:`set_recorder` / :func:`configure`) is how layers find telemetry
without threading a recorder argument through every constructor: the
scheduler, the multi-walk driver and the CLI all fall back to it.  It
starts **disabled**, so an un-configured program pays the same near-zero
cost as before this subsystem existed.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterable, Iterator, Optional

from repro.telemetry.events import (
    Span,
    TelemetryEvent,
    event_to_record,
    new_span_id,
)
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.sinks import JsonlSink

__all__ = [
    "Recorder",
    "get_recorder",
    "set_recorder",
    "configure",
    "epoch_of_monotonic",
]


def epoch_of_monotonic(mono_ts: float) -> float:
    """Convert a ``time.monotonic()`` stamp to an (approximate) epoch time.

    Used when a duration was measured with monotonic stamps but the span
    must carry a wall-clock start so traces from different processes sort
    into one timeline.  The conversion is taken *now*, so convert promptly
    after measuring.
    """
    return time.time() - (time.monotonic() - mono_ts)


class Recorder:
    """Process-local event recorder + metrics registry.

    Parameters
    ----------
    enabled:
        master switch.  A disabled recorder drops every emit immediately;
        callers on hot paths should additionally guard event construction
        with :attr:`enabled`.
    sinks:
        record destinations (ring buffer, JSONL file, ...); a recorder
        with no sinks still drives its metrics registry.
    registry:
        the metrics registry to own; a fresh one by default.
    proc:
        process label stamped into every record (``"coordinator"``,
        ``"node-1"``, ``"worker-3"``...).
    milestone_every:
        solver iteration sampling period: 0 disables iteration milestone
        events entirely (restart/reset/start/finish events still flow).
    """

    def __init__(
        self,
        *,
        enabled: bool = True,
        sinks: Iterable[Any] = (),
        registry: MetricsRegistry | None = None,
        proc: str = "",
        milestone_every: int = 0,
    ) -> None:
        self.enabled = enabled
        self.sinks = list(sinks)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.proc = proc
        self.milestone_every = milestone_every
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # events
    # ------------------------------------------------------------------
    def emit(self, event: TelemetryEvent) -> None:
        """Stamp (if needed), flatten, and write one event to every sink."""
        if not self.enabled:
            return
        if event.ts == 0.0:
            # frozen dataclass: stamp via __setattr__ bypass is uglier than
            # rebuilding the record dict, so stamp the record instead
            record = event_to_record(event, self.proc)
            record["ts"] = time.time()
        else:
            record = event_to_record(event, self.proc)
        self._write(record)

    def ingest(self, records: Iterable[dict[str, Any]]) -> None:
        """Forward records produced by *another* recorder (e.g. shipped
        back from a pool worker) into this recorder's sinks verbatim."""
        if not self.enabled:
            return
        for record in records:
            self._write(dict(record))

    def _write(self, record: dict[str, Any]) -> None:
        for sink in self.sinks:
            sink.write(record)

    # ------------------------------------------------------------------
    # spans
    # ------------------------------------------------------------------
    @contextmanager
    def span(
        self,
        name: str,
        *,
        trace_id: str = "",
        parent_id: str = "",
        **attrs: Any,
    ) -> Iterator[str]:
        """Measure a block; yields the span id for children to parent on.

        The duration comes from ``perf_counter`` (monotonic, high
        resolution); ``ts`` is the wall-clock start.
        """
        span_id = new_span_id() if self.enabled else ""
        started_wall = time.time()
        started = time.perf_counter()
        try:
            yield span_id
        finally:
            if self.enabled:
                self.emit(
                    Span(
                        ts=started_wall,
                        trace_id=trace_id,
                        name=name,
                        duration=time.perf_counter() - started,
                        span_id=span_id,
                        parent_id=parent_id,
                        attrs=dict(attrs),
                    )
                )

    def emit_span(
        self,
        name: str,
        *,
        start: float,
        duration: float,
        trace_id: str = "",
        parent_id: str = "",
        **attrs: Any,
    ) -> None:
        """Record an externally measured duration (``start`` is epoch)."""
        if not self.enabled:
            return
        self.emit(
            Span(
                ts=start,
                trace_id=trace_id,
                name=name,
                duration=duration,
                span_id=new_span_id(),
                parent_id=parent_id,
                attrs=dict(attrs),
            )
        )

    # ------------------------------------------------------------------
    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


# ----------------------------------------------------------------------
# module-level default recorder
# ----------------------------------------------------------------------
_default_lock = threading.Lock()
_default_recorder = Recorder(enabled=False)


def get_recorder() -> Recorder:
    """The process default recorder (disabled until :func:`configure`)."""
    return _default_recorder


def set_recorder(recorder: Recorder) -> Recorder:
    """Install ``recorder`` as the process default; returns the previous."""
    global _default_recorder
    with _default_lock:
        previous = _default_recorder
        _default_recorder = recorder
    return previous


def configure(
    *,
    trace_dir: str | Path | None = None,
    proc: str = "main",
    enabled: bool = True,
    milestone_every: int = 0,
    extra_sinks: Iterable[Any] = (),
) -> Recorder:
    """Build and install a default recorder in one call.

    With ``trace_dir`` set, events append to ``<trace_dir>/<proc>.jsonl``
    — the per-process file layout that ``repro trace <dir>`` merges.
    """
    sinks: list[Any] = list(extra_sinks)
    if trace_dir is not None:
        sinks.append(JsonlSink(Path(trace_dir) / f"{proc}.jsonl"))
    recorder = Recorder(
        enabled=enabled,
        sinks=sinks,
        proc=proc,
        milestone_every=milestone_every,
    )
    set_recorder(recorder)
    return recorder
