"""Unified tracing & metrics across solver, pool, and cluster.

The telemetry subsystem gives every execution backend (inline, warm pool,
distributed cluster) one observability vocabulary:

- **events** (:mod:`repro.telemetry.events`) — typed, frozen dataclasses
  for lifecycle moments: job submit/dispatch/finish, walk start/finish,
  restarts/resets, iteration milestones, assign/cancel traffic;
- **spans** — named durations with parent ids, measured on monotonic
  clocks, stamped with wall-clock starts so a distributed solve merges
  into one timeline;
- **metrics** (:mod:`repro.telemetry.metrics`) — a per-process registry of
  counters, gauges and histograms (fixed buckets + exact-quantile window)
  that :class:`repro.service.metrics.MetricsSnapshot` is now a view over;
- **sinks** (:mod:`repro.telemetry.sinks`) — ring buffer, append-only
  JSONL, composite fan-out, plus Prometheus text rendering on the
  registry;
- **recorder** (:mod:`repro.telemetry.recorder`) — the process-local
  pipeline tying those together, with a module-level default that starts
  *disabled* so un-instrumented programs pay nothing.

``repro trace <dir>`` (see :mod:`repro.telemetry.timeline`) merges the
per-process JSONL files of a traced solve and prints the reconstructed
timeline plus latency breakdowns (dispatch overhead, cancel propagation,
per-walk busy time).
"""

from repro.telemetry.events import (
    AssignEvent,
    CancelAck,
    CancelBroadcast,
    EVENT_KINDS,
    FailoverBegin,
    FailoverComplete,
    FaultInjected,
    FirstSolve,
    HedgeDispatch,
    IterationMilestone,
    JobDispatch,
    JobFinish,
    JobSubmit,
    ResetEvent,
    RestartEvent,
    Span,
    TelemetryEvent,
    TraceContext,
    WalkFinish,
    WalkStart,
    event_from_record,
    event_to_record,
    new_span_id,
    new_trace_id,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.recorder import (
    Recorder,
    configure,
    epoch_of_monotonic,
    get_recorder,
    set_recorder,
)
from repro.telemetry.sinks import (
    CompositeSink,
    JsonlSink,
    RingBufferSink,
    read_jsonl,
)
from repro.telemetry.solver import TelemetryCallback, solver_callbacks
from repro.telemetry.vector import VectorTelemetry, vector_telemetry
from repro.telemetry.timeline import (
    TraceSummary,
    WalkTimeline,
    analyze_trace,
    load_trace,
    render_report,
    render_timeline,
)

__all__ = [
    # events
    "TelemetryEvent", "JobSubmit", "JobDispatch", "JobFinish",
    "WalkStart", "WalkFinish", "IterationMilestone", "RestartEvent",
    "ResetEvent", "AssignEvent", "CancelBroadcast", "CancelAck",
    "FirstSolve", "HedgeDispatch", "FaultInjected", "Span",
    "FailoverBegin", "FailoverComplete",
    "TraceContext", "EVENT_KINDS",
    "new_trace_id", "new_span_id", "event_to_record", "event_from_record",
    # metrics
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    # recorder
    "Recorder", "get_recorder", "set_recorder", "configure",
    "epoch_of_monotonic",
    # sinks
    "RingBufferSink", "JsonlSink", "CompositeSink", "read_jsonl",
    # solver glue
    "TelemetryCallback", "solver_callbacks",
    # vector glue
    "VectorTelemetry", "vector_telemetry",
    # timeline
    "TraceSummary", "WalkTimeline", "load_trace", "analyze_trace",
    "render_timeline", "render_report",
]
