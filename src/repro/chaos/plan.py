"""Seeded, deterministic fault plans.

A :class:`FaultPlan` is a seeded RNG plus a list of typed fault specs.
Production code never imports this module directly — it queries the
module-global hook in :mod:`repro.chaos.hooks`, which is ``None`` unless a
test or the ``repro chaos`` runner installed a plan (one attribute load and
one branch on the hot path, nothing else).

Determinism contract
--------------------
Every decision a plan makes is a pure function of ``(seed, query
sequence)``: probability draws come from one ``random.Random(seed)`` and
fire counters advance under a lock.  Replaying the same scenario with the
same seed therefore injects the *same fault sequence* — the property the
``tests/chaos`` matrix asserts — as long as the query sequence itself is
deterministic (faults with ``probability=1.0`` and explicit match fields
are immune even to query interleaving, which is why the named scenarios
use exact matches).

Fault vocabulary
----------------
:class:`FrameFault`
    drop / delay / corrupt / duplicate one matching protocol frame on the
    send side (checked in :mod:`repro.net.protocol`).
:class:`WalkFault`
    make one matching walk raise, hard-exit its worker process, or run
    slowed (checked at dispatch in the scheduler; the spec rides inside
    the :class:`~repro.service.worker.WalkTask` into the worker process,
    so it must stay picklable).
:class:`NodeFault`
    kill, partition, or stall one node after a delay (checked by the node
    agent's own loops — a partitioned agent keeps running but neither
    sends nor processes frames).
:class:`CoordinatorCrash`
    crash the coordinator at a lifecycle point (``submit`` / ``dispatch``
    / ``walk_result`` / ``finish``), dropping any unflushed journal tail —
    the in-process stand-in for ``kill -9``.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Any, Optional

from repro.errors import ChaosError

__all__ = [
    "FrameFault",
    "WalkFault",
    "NodeFault",
    "CoordinatorCrash",
    "FaultPlan",
    "fault_from_dict",
    "plan_from_dict",
]

_FRAME_ACTIONS = ("drop", "delay", "corrupt", "duplicate")
_WALK_ACTIONS = ("raise", "exit", "slow")
_NODE_ACTIONS = ("kill", "partition", "stall")
_CRASH_POINTS = ("submit", "dispatch", "walk_result", "finish")


@dataclass(frozen=True)
class FrameFault:
    """Tamper with protocol frames on the send side.

    ``message_type`` matches the frame's ``type`` field exactly (empty =
    any frame); ``skip_first`` lets that many matching frames through
    untouched before the fault becomes eligible, so a scenario can target
    e.g. "the second walk_result" deterministically.
    """

    action: str
    message_type: str = ""
    probability: float = 1.0
    max_count: int = 1
    delay: float = 0.05
    skip_first: int = 0

    def __post_init__(self) -> None:
        if self.action not in _FRAME_ACTIONS:
            raise ChaosError(
                f"unknown frame fault action {self.action!r} "
                f"(expected one of {_FRAME_ACTIONS})"
            )


@dataclass(frozen=True)
class WalkFault:
    """Make a walk misbehave inside its worker process.

    ``walk_id`` / ``job_id`` match the *cluster-scope* labels when the
    walk came through a coordinator, the local ids otherwise (-1 = any).
    ``iteration_delay`` is the per-iteration sleep for ``slow``;
    ``at_iteration`` is when ``raise`` / ``exit`` trigger (0 = before the
    first iteration).
    """

    action: str
    walk_id: int = -1
    job_id: int = -1
    probability: float = 1.0
    max_count: int = 1
    iteration_delay: float = 0.0
    at_iteration: int = 0

    def __post_init__(self) -> None:
        if self.action not in _WALK_ACTIONS:
            raise ChaosError(
                f"unknown walk fault action {self.action!r} "
                f"(expected one of {_WALK_ACTIONS})"
            )


@dataclass(frozen=True)
class NodeFault:
    """Degrade one node ``after`` seconds (from plan arming).

    ``kill`` — the agent aborts its connection and tears down (a crashed
    host); ``partition`` — the agent keeps running but neither sends nor
    processes frames for ``duration`` seconds; ``stall`` — heartbeats stop
    but walks keep running and reporting (a hung failure detector path).
    """

    action: str
    node: str = ""
    after: float = 0.0
    duration: float = float("inf")

    def __post_init__(self) -> None:
        if self.action not in _NODE_ACTIONS:
            raise ChaosError(
                f"unknown node fault action {self.action!r} "
                f"(expected one of {_NODE_ACTIONS})"
            )


@dataclass(frozen=True)
class CoordinatorCrash:
    """Crash the coordinator on the ``(skip_first+1)``-th hit of a point."""

    point: str
    skip_first: int = 0
    max_count: int = 1
    probability: float = 1.0

    def __post_init__(self) -> None:
        if self.point not in _CRASH_POINTS:
            raise ChaosError(
                f"unknown coordinator crash point {self.point!r} "
                f"(expected one of {_CRASH_POINTS})"
            )


class FaultPlan:
    """An ordered set of fault specs driven by one seeded RNG.

    Thread-safe: queries arrive from the scheduler thread, the asyncio
    loop thread, and (indirectly, via specs shipped in tasks) worker
    processes.  Only the query side lives here — *applying* a fault is the
    call site's job, so the plan never imports net/service code.
    """

    def __init__(
        self,
        faults: Any = (),
        *,
        seed: int = 0,
        name: str = "",
    ) -> None:
        self.faults: tuple[Any, ...] = tuple(faults)
        for fault in self.faults:
            if not isinstance(
                fault, (FrameFault, WalkFault, NodeFault, CoordinatorCrash)
            ):
                raise ChaosError(f"not a fault spec: {fault!r}")
        self.seed = int(seed)
        self.name = name
        self._rng = random.Random(self.seed)
        self._lock = threading.Lock()
        #: fault index -> times fired
        self._fired: dict[int, int] = {}
        #: fault index -> matching queries seen (drives skip_first)
        self._seen: dict[int, int] = {}
        #: node-fault index -> True once its transition was logged
        self._node_logged: set[int] = set()
        self._armed_at: float | None = None
        #: chronological record of every injected fault (the replay log
        #: the determinism tests compare across runs)
        self.log: list[dict[str, Any]] = []

    # ------------------------------------------------------------------
    def arm(self) -> "FaultPlan":
        """Start the plan's clock (idempotent; install() calls this)."""
        if self._armed_at is None:
            self._armed_at = time.monotonic()
        return self

    def elapsed(self) -> float:
        return 0.0 if self._armed_at is None else time.monotonic() - self._armed_at

    def _record(self, site: str, **detail: Any) -> None:
        self.log.append({"site": site, **detail})

    def _try_fire(self, index: int, fault: Any) -> bool:
        """Shared skip/probability/max_count gate (caller holds the lock)."""
        seen = self._seen.get(index, 0)
        self._seen[index] = seen + 1
        if seen < getattr(fault, "skip_first", 0):
            return False
        if self._fired.get(index, 0) >= fault.max_count:
            return False
        if fault.probability < 1.0 and self._rng.random() >= fault.probability:
            return False
        self._fired[index] = self._fired.get(index, 0) + 1
        return True

    # ------------------------------------------------------------------
    # queries (one per seam)
    # ------------------------------------------------------------------
    def frame_fault(self, message_type: str) -> Optional[FrameFault]:
        """The fault to apply to an outgoing frame, if any."""
        with self._lock:
            for index, fault in enumerate(self.faults):
                if not isinstance(fault, FrameFault):
                    continue
                if fault.message_type and fault.message_type != message_type:
                    continue
                if self._try_fire(index, fault):
                    self._record(
                        "frame", action=fault.action, type=message_type
                    )
                    return fault
        return None

    def walk_fault(
        self, walk_id: int, job_id: int = -1
    ) -> Optional[WalkFault]:
        """The fault this dispatch of ``walk_id`` should carry, if any."""
        with self._lock:
            for index, fault in enumerate(self.faults):
                if not isinstance(fault, WalkFault):
                    continue
                if fault.walk_id >= 0 and fault.walk_id != walk_id:
                    continue
                if fault.job_id >= 0 and fault.job_id != job_id:
                    continue
                if self._try_fire(index, fault):
                    self._record(
                        "walk",
                        action=fault.action,
                        walk_id=walk_id,
                        job_id=job_id,
                    )
                    return fault
        return None

    def node_state(self, node: str) -> str:
        """Current injected state of ``node``: ok / kill / partition / stall.

        Purely time-based (no RNG, no counters): the same wall-clock query
        window yields the same answer, and the transition is logged once.
        """
        now = self.elapsed()
        with self._lock:
            for index, fault in enumerate(self.faults):
                if not isinstance(fault, NodeFault):
                    continue
                if fault.node and fault.node != node:
                    continue
                if fault.after <= now < fault.after + fault.duration:
                    if index not in self._node_logged:
                        self._node_logged.add(index)
                        self._record(
                            "node", action=fault.action, node=node
                        )
                    return fault.action
        return "ok"

    def coordinator_crash(self, point: str) -> bool:
        """Should the coordinator crash at this lifecycle point?"""
        with self._lock:
            for index, fault in enumerate(self.faults):
                if not isinstance(fault, CoordinatorCrash):
                    continue
                if fault.point != point:
                    continue
                if self._try_fire(index, fault):
                    self._record("coordinator", action="crash", point=point)
                    return True
        return False

    def corrupt_frame(self, frame: bytes, header_size: int) -> bytes:
        """Flip one deterministic-random byte of the frame body."""
        if len(frame) <= header_size:
            return frame
        with self._lock:
            offset = self._rng.randrange(header_size, len(frame))
        corrupted = bytearray(frame)
        corrupted[offset] ^= 0xFF
        return bytes(corrupted)

    # ------------------------------------------------------------------
    def reset(self) -> "FaultPlan":
        """Forget all fire/skip state and re-seed the RNG (fresh replay)."""
        with self._lock:
            self._rng = random.Random(self.seed)
            self._fired.clear()
            self._seen.clear()
            self._node_logged.clear()
            self._armed_at = None
            self.log = []
        return self

    def reseeded(self, seed: int) -> "FaultPlan":
        """A fresh plan with the same faults under a different seed."""
        return FaultPlan(self.faults, seed=seed, name=self.name)

    def summary(self) -> str:
        kinds = ", ".join(type(f).__name__ for f in self.faults) or "none"
        return (
            f"FaultPlan({self.name or 'anonymous'}, seed={self.seed}, "
            f"faults=[{kinds}], injected={len(self.log)})"
        )


# ----------------------------------------------------------------------
# JSON scenario files (the `repro chaos --file` surface)
# ----------------------------------------------------------------------
_FAULT_TYPES = {
    "frame": FrameFault,
    "walk": WalkFault,
    "node": NodeFault,
    "coordinator_crash": CoordinatorCrash,
}


def fault_from_dict(data: dict[str, Any]) -> Any:
    """Build one fault spec from ``{"kind": ..., **fields}``."""
    if not isinstance(data, dict) or "kind" not in data:
        raise ChaosError(f"fault spec must be an object with a 'kind': {data!r}")
    fields = dict(data)
    kind = fields.pop("kind")
    cls = _FAULT_TYPES.get(kind)
    if cls is None:
        raise ChaosError(
            f"unknown fault kind {kind!r} "
            f"(expected one of {sorted(_FAULT_TYPES)})"
        )
    if "duration" in fields and fields["duration"] is None:
        fields["duration"] = float("inf")
    try:
        return cls(**fields)
    except TypeError as err:
        raise ChaosError(f"bad {kind} fault spec: {err}") from None


def plan_from_dict(data: dict[str, Any]) -> FaultPlan:
    """Build a plan from ``{"seed": ..., "name": ..., "faults": [...]}``."""
    if not isinstance(data, dict):
        raise ChaosError(f"fault plan must be an object, got {data!r}")
    return FaultPlan(
        [fault_from_dict(f) for f in data.get("faults", [])],
        seed=int(data.get("seed", 0)),
        name=str(data.get("name", "")),
    )
