"""The process-global chaos hook.

Production seams never hold a plan reference; they ask this module.  The
cost when chaos is off — the only case that matters for performance — is
one module-attribute load and one ``is None`` branch (see
``benchmarks/bench_chaos_overhead.py``, which gates exactly that).

Only one plan can be active per process at a time: fault injection is a
whole-process mode, not a per-object feature, mirroring how a real fault
(a dying host, a flaky NIC) is not scoped to one connection either.
In-process harnesses (:class:`~repro.net.testing.LocalCluster`) install
the plan on start and uninstall on stop; the :func:`chaos` context manager
does the same for hand-rolled tests.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.chaos.plan import FaultPlan

__all__ = ["install", "uninstall", "active", "chaos"]

_active: Optional[FaultPlan] = None


def install(plan: FaultPlan) -> FaultPlan:
    """Arm ``plan`` and make it the process-wide active plan."""
    global _active
    _active = plan.arm()
    return plan


def uninstall() -> None:
    """Deactivate fault injection (idempotent)."""
    global _active
    _active = None


def active() -> Optional[FaultPlan]:
    """The installed plan, or ``None`` — the one hot-path query."""
    return _active


@contextmanager
def chaos(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Install ``plan`` for the duration of a ``with`` block."""
    install(plan)
    try:
        yield plan
    finally:
        uninstall()
