"""Seeded, deterministic fault injection for the parallel / distributed
solver stack.

The package has three layers:

``repro.chaos.plan``
    :class:`FaultPlan` — a seeded schedule of typed fault specs
    (:class:`FrameFault`, :class:`WalkFault`, :class:`NodeFault`,
    :class:`CoordinatorCrash`).  Every injection decision is a pure
    function of the plan seed and the query sequence, so a scenario
    replays identically from the same seed.

``repro.chaos.hooks``
    the process-global injection point the hot paths consult.  When no
    plan is installed the hook is one attribute load and an ``is None``
    branch — dormant chaos costs nothing (gated by
    ``benchmarks/bench_chaos_overhead.py``).

``repro.chaos.scenarios`` / ``repro.chaos.runner``
    named end-to-end failure drills (worker crash, corrupt frame, node
    partition, coordinator crash mid-job, straggler hedge) replayed
    against a :class:`~repro.net.testing.LocalCluster` by seed —
    ``repro chaos <name>`` on the command line, ``tests/chaos/`` in CI.
"""

from repro.chaos import hooks
from repro.chaos.plan import (
    CoordinatorCrash,
    FaultPlan,
    FrameFault,
    NodeFault,
    WalkFault,
    fault_from_dict,
    plan_from_dict,
)
from repro.chaos.runner import (
    ScenarioReport,
    run_all,
    run_custom,
    run_scenario,
)
from repro.chaos.scenarios import SCENARIO_NAMES, build_plan
from repro.errors import ChaosError

__all__ = [
    "ChaosError",
    "CoordinatorCrash",
    "FaultPlan",
    "FrameFault",
    "NodeFault",
    "SCENARIO_NAMES",
    "ScenarioReport",
    "WalkFault",
    "build_plan",
    "fault_from_dict",
    "hooks",
    "plan_from_dict",
    "run_all",
    "run_custom",
    "run_scenario",
]
