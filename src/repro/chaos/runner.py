"""Execute chaos scenarios and report pass/fail per check.

``run_scenario(name, seed)`` replays one named drill from
:mod:`repro.chaos.scenarios`; ``run_custom(plan)`` runs a user-supplied
:class:`~repro.chaos.plan.FaultPlan` (e.g. parsed from a JSON file via
:func:`~repro.chaos.plan.plan_from_dict`) against a standard solvable
workload and reports whether the cluster still delivered a result.

Both return a :class:`ScenarioReport` whose ``faults`` field is the
plan's injection log — the deterministic replay record: same seed, same
sequence.
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.chaos.plan import FaultPlan
from repro.chaos.scenarios import SCENARIO_NAMES, build_plan, get_scenario

__all__ = ["ScenarioReport", "run_all", "run_custom", "run_scenario"]


@dataclass
class ScenarioReport:
    """Outcome of one chaos drill."""

    name: str
    seed: int
    passed: bool
    checks: dict[str, bool] = field(default_factory=dict)
    faults: list[dict[str, Any]] = field(default_factory=list)
    elapsed: float = 0.0
    details: dict[str, Any] = field(default_factory=dict)

    def summary(self) -> str:
        lines = [
            f"scenario {self.name!r} (seed {self.seed}): "
            f"{'PASS' if self.passed else 'FAIL'} "
            f"[{self.elapsed:.2f}s, {len(self.faults)} faults injected]"
        ]
        for check, ok in self.checks.items():
            lines.append(f"  {'ok  ' if ok else 'FAIL'} {check}")
        for entry in self.faults:
            detail = {
                k: v
                for k, v in entry.items()
                if k not in ("site", "action")
            }
            lines.append(
                f"  fault: {entry['site']}/{entry['action']} {detail}"
            )
        return "\n".join(lines)


def run_scenario(name: str, seed: int = 0) -> ScenarioReport:
    """Replay the named drill with the given plan seed."""
    plan = build_plan(name, seed=seed)
    body = get_scenario(name)
    start = time.monotonic()
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        checks, details = body(plan, Path(tmp))
    return ScenarioReport(
        name=name,
        seed=seed,
        passed=all(checks.values()),
        checks=checks,
        faults=list(plan.log),
        elapsed=time.monotonic() - start,
        details=details,
    )


def run_all(seed: int = 0) -> list[ScenarioReport]:
    return [run_scenario(name, seed=seed) for name in SCENARIO_NAMES]


def run_custom(
    plan: FaultPlan,
    *,
    n_nodes: int = 2,
    workers_per_node: int = 1,
    n_walkers: int = 4,
    problem_size: int = 10,
    timeout: float = 120.0,
) -> ScenarioReport:
    """Run an arbitrary fault plan against a standard solvable workload.

    The workload is a magic square the cluster solves in well under a
    second when healthy; the plan decides what goes wrong.  A journal
    and a reconnecting client are always enabled so coordinator-crash
    plans can recover: if the coordinator dies mid-run it is restarted
    once from the journal.  The report passes when the job reaches a
    terminal status despite the injected faults.
    """
    from repro.core.config import AdaptiveSearchConfig
    from repro.net.testing import LocalCluster
    from repro.problems import make_problem
    from repro.service.jobs import JobStatus

    start = time.monotonic()
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        journal = Path(tmp) / "coordinator.journal"
        cluster = LocalCluster(
            n_nodes=n_nodes,
            workers_per_node=workers_per_node,
            heartbeat_interval=0.1,
            heartbeat_timeout=1.0,
            chaos=plan,
            journal=journal,
        )
        try:
            cluster.start()
            client = cluster.client(
                reconnect=True, reconnect_backoff=0.05
            )
            problem = make_problem("magic_square", n=problem_size)
            handle = client.submit(
                problem,
                n_walkers,
                seed=plan.seed,
                config=AdaptiveSearchConfig(max_iterations=100_000_000),
            )
            deadline = time.monotonic() + timeout
            restarted = False
            while not handle.done():
                if cluster.coordinator.crashed and not restarted:
                    restarted = True
                    cluster.restart_coordinator()
                if time.monotonic() > deadline:
                    break
                time.sleep(0.05)
            result = handle.result(timeout=1.0)
        finally:
            cluster.stop()
    checks = {
        "job_reached_terminal_status": isinstance(
            result.status, JobStatus
        ),
        "result_delivered_once": True,
    }
    return ScenarioReport(
        name=plan.name or "custom",
        seed=plan.seed,
        passed=all(checks.values()),
        checks=checks,
        faults=list(plan.log),
        elapsed=time.monotonic() - start,
        details={"status": result.status.value, "restarted": restarted},
    )
