"""Named failure drills — each a small cluster workload plus a seeded
:class:`~repro.chaos.plan.FaultPlan` that injects exactly one failure
mode, with pass/fail checks asserting the stack recovered the way the
failure model says it must.

Every scenario is deterministic in the plan's injection sequence: the
same seed produces the same ``plan.log`` (which faults fired, where).
Wall-clock timings naturally vary, but the *decisions* replay.

The drills cover the failure matrix end to end:

``worker-crash``
    a pool worker hard-exits mid-walk (``os._exit``); the node-local
    scheduler respawns the worker and retries the walk — the job solves.
``corrupt-frame``
    a walk-result frame is bit-flipped on the wire; protocol CRC rejects
    it, the coordinator drops the connection, the node is declared lost
    and its walks re-dispatch — the job solves on the survivor.
``node-partition``
    a node stops heartbeating (partition, not crash — its pool keeps
    burning CPU); the failure detector declares it dead and re-dispatches
    — the surviving node wins.
``coordinator-crash-mid-job``
    the coordinator dies (``kill -9`` semantics: no goodbye, no final
    fsync) on the first walk result; a fresh coordinator replays the
    write-ahead journal, re-dispatches the in-flight job, and the
    reconnecting client collects the result via its idempotent
    ``client_key`` — exactly one winner.
``leader-failover``
    the leader coordinator dies mid-job with a hot standby attached; the
    standby detects the loss, replays its mirrored journal, and promotes
    itself on its pre-announced port; agents and the client re-home via
    their ordered address lists and the job finishes with exactly one
    winner — no resubmission, with ``FailoverComplete`` in the trace.
``straggler-hedge``
    one walk runs ~10x slower than its siblings; the coordinator hedges
    a clean copy onto another node and the job finishes far below the
    straggler's floor, with the hedge visible in the merged trace.
``coop-partition``
    the first few ``elite_push`` migration frames of a cooperative job
    are dropped on the wire; the islands time out their migration rounds
    and keep searching independently — the job still solves, and the
    result's coop summary attributes the lost migrations.

Scenario functions lazily import ``repro.net.testing`` — the protocol
module imports this package for its frame-fault hook, so a top-level
import here would be circular.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any, Callable

from repro.chaos.plan import (
    CoordinatorCrash,
    FaultPlan,
    FrameFault,
    NodeFault,
    WalkFault,
)
from repro.core.config import AdaptiveSearchConfig
from repro.errors import ChaosError

__all__ = ["SCENARIO_NAMES", "build_plan", "get_scenario"]

# one walk is slowed to this many seconds *per iteration*; with the
# iteration budget below, its no-hedge completion floor is
# STRAGGLER_ITERATIONS * STRAGGLER_DELAY seconds of pure sleep.
STRAGGLER_DELAY = 0.01
STRAGGLER_ITERATIONS = 1500

# a generous per-walk budget for solvable workloads: first finisher wins
# long before any walk exhausts it.
_BIG = AdaptiveSearchConfig(max_iterations=100_000_000)


def build_plan(name: str, seed: int = 0) -> FaultPlan:
    """The fault plan a named scenario injects, reseeded to ``seed``.

    Exposed separately from the run so determinism can be asserted on
    the plan alone (same seed, same query sequence, same log) without
    booting a cluster.
    """
    if name == "worker-crash":
        faults = [WalkFault("exit", walk_id=0)]
    elif name == "corrupt-frame":
        faults = [FrameFault("corrupt", message_type="walk_result")]
    elif name == "node-partition":
        faults = [NodeFault("partition", node="node-0")]
    elif name == "coordinator-crash-mid-job":
        faults = [CoordinatorCrash("walk_result")]
    elif name == "leader-failover":
        # same kill point as coordinator-crash-mid-job; recovery runs
        # through the hot standby instead of a manual restart
        faults = [CoordinatorCrash("walk_result")]
    elif name == "straggler-hedge":
        faults = [
            WalkFault("slow", walk_id=3, iteration_delay=STRAGGLER_DELAY)
        ]
    elif name == "coop-partition":
        # drop the first two full migration rounds of a two-island job
        # (one elite_push per island per round); later rounds go through
        faults = [
            FrameFault("drop", message_type="elite_push", max_count=4)
        ]
    else:
        raise ChaosError(
            f"unknown chaos scenario {name!r}; known: "
            f"{', '.join(SCENARIO_NAMES)}"
        )
    return FaultPlan(faults, seed=seed, name=name)


def _problem(n: int):
    from repro.problems import make_problem

    return make_problem("magic_square", n=n)


# ----------------------------------------------------------------------
# scenario bodies: each returns (checks, details); the runner wraps them
# in a ScenarioReport.  ``workdir`` is a scenario-private temp directory.


def _run_worker_crash(
    plan: FaultPlan, workdir: Path
) -> tuple[dict[str, bool], dict[str, Any]]:
    from repro.net.testing import LocalCluster
    from repro.service.jobs import JobStatus

    with LocalCluster(
        n_nodes=1,
        workers_per_node=2,
        heartbeat_interval=0.1,
        heartbeat_timeout=2.0,
        chaos=plan,
    ) as cluster:
        client = cluster.client()
        problem = _problem(10)
        result = client.submit(problem, 2, seed=7, config=_BIG).result(
            timeout=120
        )
    fired = [e for e in plan.log if e["site"] == "walk"]
    return (
        {
            "solved": result.status is JobStatus.SOLVED,
            "valid_solution": result.best_config is not None
            and bool(problem.is_solution(result.best_config)),
            "worker_killed": any(
                e["action"] == "exit" for e in fired
            ),
        },
        {"cost": result.best_cost, "faults_fired": len(plan.log)},
    )


def _run_corrupt_frame(
    plan: FaultPlan, workdir: Path
) -> tuple[dict[str, bool], dict[str, Any]]:
    from repro.net.testing import LocalCluster
    from repro.service.jobs import JobStatus

    with LocalCluster(
        n_nodes=2,
        workers_per_node=1,
        heartbeat_interval=0.1,
        heartbeat_timeout=1.0,
        chaos=plan,
    ) as cluster:
        client = cluster.client()
        problem = _problem(10)
        result = client.submit(problem, 2, seed=3, config=_BIG).result(
            timeout=120
        )
        counters = dict(cluster.coordinator.counters)
    fired = [e for e in plan.log if e["site"] == "frame"]
    return (
        {
            "solved": result.status is JobStatus.SOLVED,
            "frame_corrupted": any(
                e["action"] == "corrupt" for e in fired
            ),
            "sender_dropped": counters.get("nodes_lost", 0) >= 1,
            "walks_redispatched": counters.get("redispatches", 0) >= 1,
        },
        {"counters": counters},
    )


def _run_node_partition(
    plan: FaultPlan, workdir: Path
) -> tuple[dict[str, bool], dict[str, Any]]:
    from repro.net.testing import LocalCluster
    from repro.service.jobs import JobStatus

    # node-0 is partitioned from t=0: it registers and accepts walks,
    # but its heartbeats and results never reach the coordinator.  The
    # job is submitted while node-0 is the only node, so it can only
    # complete via dead-node detection + re-dispatch onto node-1, which
    # joins after the walks are already stuck behind the partition.
    with LocalCluster(
        n_nodes=1,
        workers_per_node=2,
        heartbeat_interval=0.1,
        heartbeat_timeout=1.0,
        chaos=plan,
    ) as cluster:
        client = cluster.client()
        problem = _problem(10)
        handle = client.submit(problem, 2, seed=2, config=_BIG)
        cluster.add_agent()  # node-1, the healthy survivor
        result = handle.result(timeout=300)
        counters = dict(cluster.coordinator.counters)
        survivors = cluster.live_node_names()
    return (
        {
            "solved": result.status is JobStatus.SOLVED,
            "partitioned_node_declared_dead": counters.get(
                "nodes_lost", 0
            )
            >= 1,
            "survivor_won": result.winner_node == "node-1",
            "partition_fired": any(
                e["site"] == "node" and e["action"] == "partition"
                for e in plan.log
            ),
        },
        {"counters": counters, "survivors": survivors},
    )


def _run_coordinator_crash(
    plan: FaultPlan, workdir: Path
) -> tuple[dict[str, bool], dict[str, Any]]:
    from repro.net.testing import LocalCluster
    from repro.service.jobs import JobStatus

    journal = workdir / "coordinator.journal"
    cluster = LocalCluster(
        n_nodes=2,
        workers_per_node=1,
        heartbeat_interval=0.1,
        heartbeat_timeout=1.0,
        chaos=plan,
        journal=journal,
    )
    try:
        cluster.start()
        client = cluster.client(reconnect=True, reconnect_backoff=0.05)
        problem = _problem(10)
        handle = client.submit(problem, 2, seed=5, config=_BIG)
        # the plan kills the coordinator when the first walk result
        # arrives; wait for the crash, then restart from the journal.
        deadline = time.monotonic() + 60.0
        while (
            not cluster.coordinator.crashed
            and time.monotonic() < deadline
        ):
            time.sleep(0.02)
        crashed = cluster.coordinator.crashed
        cluster.restart_coordinator()
        result = handle.result(timeout=120)
        counters = dict(cluster.coordinator.counters)
        reconnects = client.reconnects
    finally:
        cluster.stop()
    return (
        {
            "coordinator_crashed": crashed,
            "solved_after_restart": result.status is JobStatus.SOLVED,
            "job_recovered_from_journal": counters.get(
                "recovered_jobs", 0
            )
            >= 1,
            "client_reconnected": reconnects >= 1,
            "journal_survived": journal.exists(),
        },
        {"counters": counters, "reconnects": reconnects},
    )


def _run_leader_failover(
    plan: FaultPlan, workdir: Path
) -> tuple[dict[str, bool], dict[str, Any]]:
    from repro.net.testing import LocalCluster
    from repro.service.jobs import JobStatus
    from repro.telemetry.timeline import analyze_trace, load_trace

    journal = workdir / "coordinator.journal"
    trace_dir = workdir / "trace"
    cluster = LocalCluster(
        n_nodes=2,
        workers_per_node=1,
        heartbeat_interval=0.1,
        heartbeat_timeout=1.0,
        chaos=plan,
        journal=journal,
        trace_dir=trace_dir,
        standby=True,
        lease_timeout=1.0,
    )
    try:
        cluster.start()
        client = cluster.client(reconnect_backoff=0.05)
        problem = _problem(10)
        handle = client.submit(problem, 2, seed=5, config=_BIG)
        # the plan kills the leader on the first walk result; the standby
        # notices the dropped replication stream and takes over on its
        # own — unlike coordinator-crash-mid-job, nobody restarts
        # anything by hand here.
        deadline = time.monotonic() + 60.0
        while (
            not cluster.coordinator.crashed
            and time.monotonic() < deadline
        ):
            time.sleep(0.02)
        crashed = cluster.coordinator.crashed
        standby = cluster.standby
        cluster.promote_standby(timeout=30.0)
        result = handle.result(timeout=120)
        counters = dict(cluster.coordinator.counters)
        reconnects = client.reconnects
        rehomed = sum(1 for agent in cluster.agents if agent.reconnects)
        failover_elapsed = standby.failover_elapsed
    finally:
        cluster.stop()
    summary = analyze_trace(load_trace(trace_dir))
    completes = [
        f
        for f in summary.failovers
        if f.get("event") == "failover_complete"
    ]
    return (
        {
            "leader_crashed": crashed,
            "standby_promoted": standby.promoted.is_set(),
            "solved_after_failover": result.status is JobStatus.SOLVED,
            # one winner: the promoted coordinator recovered the job from
            # its mirror and finished it exactly once (client_key dedup)
            "exactly_one_winner": counters.get("jobs_solved", 0) == 1,
            "job_recovered_from_mirror": counters.get("recovered_jobs", 0)
            >= 1,
            "client_rehomed": reconnects >= 1,
            "agents_rehomed": rehomed >= 1,
            "failover_in_trace": len(completes) >= 1,
        },
        {
            "counters": counters,
            "reconnects": reconnects,
            "agents_rehomed": rehomed,
            "failover_elapsed": round(failover_elapsed, 3),
            "promote_reason": standby.promote_reason,
        },
    )


def _run_straggler_hedge(
    plan: FaultPlan, workdir: Path
) -> tuple[dict[str, bool], dict[str, Any]]:
    from repro.net.testing import LocalCluster
    from repro.telemetry.timeline import analyze_trace, load_trace

    trace_dir = workdir / "trace"
    # budget-capped walks on a board too big to solve in the budget:
    # every walk runs its full budget, so the slowed walk *is* the
    # completion bottleneck unless the coordinator hedges around it.
    config = AdaptiveSearchConfig(max_iterations=STRAGGLER_ITERATIONS)
    no_hedge_floor = STRAGGLER_ITERATIONS * STRAGGLER_DELAY
    start = time.monotonic()
    with LocalCluster(
        n_nodes=2,
        workers_per_node=2,
        heartbeat_interval=0.1,
        heartbeat_timeout=5.0,
        chaos=plan,
        hedge_factor=3.0,
        trace_dir=trace_dir,
    ) as cluster:
        client = cluster.client()
        problem = _problem(30)
        result = client.submit(problem, 4, seed=1, config=config).result(
            timeout=120
        )
        counters = dict(cluster.coordinator.counters)
    wall = time.monotonic() - start
    summary = analyze_trace(load_trace(trace_dir))
    return (
        {
            "job_completed": len(result.walks) == 4,
            "hedged": counters.get("hedges", 0) >= 1,
            # without a hedge the job cannot finish before the slowed
            # walk sleeps through its full budget — beating that floor
            # proves the hedge beat the no-hedge wall-clock.
            "beat_no_hedge_floor": wall < no_hedge_floor,
            "hedge_in_trace": len(summary.hedges) >= 1,
            "slowdown_fired": any(
                e["site"] == "walk" and e["action"] == "slow"
                for e in plan.log
            ),
        },
        {
            "wall": round(wall, 3),
            "no_hedge_floor": no_hedge_floor,
            "counters": counters,
            "hedge_events": summary.hedges,
        },
    )


def _run_coop_partition(
    plan: FaultPlan, workdir: Path
) -> tuple[dict[str, bool], dict[str, Any]]:
    from repro.coop import CoopConfig
    from repro.net.testing import LocalCluster
    from repro.service.jobs import JobStatus

    # two islands on two nodes; the plan drops the first 4 elite_push
    # frames (= 2 full ring rounds), so both islands sit out their
    # migration_timeout at least twice and count the rounds as lost.
    coop = CoopConfig(
        topology="ring",
        report_interval=16,
        migration_timeout=0.2,
    )
    with LocalCluster(
        n_nodes=2,
        workers_per_node=2,
        heartbeat_interval=0.1,
        heartbeat_timeout=5.0,
        chaos=plan,
    ) as cluster:
        client = cluster.client()
        problem = _problem(10)
        result = client.submit(
            problem, 4, seed=11, config=_BIG, coop=coop
        ).result(timeout=120)
        counters = dict(cluster.coordinator.counters)
    coop_stats = result.coop or {}
    dropped = [
        e
        for e in plan.log
        if e["site"] == "frame" and e["action"] == "drop"
    ]
    return (
        {
            "solved": result.status is JobStatus.SOLVED,
            "valid_solution": result.best_config is not None
            and bool(problem.is_solution(result.best_config)),
            "migrations_dropped": len(dropped) >= 1,
            # degradation accounting: the winner island's timed-out
            # rounds surface in the result's coop summary
            "loss_attributed": coop_stats.get("migrations_lost", 0) >= 1,
        },
        {
            "coop": coop_stats,
            "counters": counters,
            "drops_fired": len(dropped),
        },
    )


_SCENARIOS: dict[
    str, Callable[[FaultPlan, Path], tuple[dict[str, bool], dict[str, Any]]]
] = {
    "worker-crash": _run_worker_crash,
    "corrupt-frame": _run_corrupt_frame,
    "node-partition": _run_node_partition,
    "coordinator-crash-mid-job": _run_coordinator_crash,
    "leader-failover": _run_leader_failover,
    "straggler-hedge": _run_straggler_hedge,
    "coop-partition": _run_coop_partition,
}

SCENARIO_NAMES: tuple[str, ...] = tuple(_SCENARIOS)


def get_scenario(
    name: str,
) -> Callable[[FaultPlan, Path], tuple[dict[str, bool], dict[str, Any]]]:
    try:
        return _SCENARIOS[name]
    except KeyError:
        raise ChaosError(
            f"unknown chaos scenario {name!r}; known: "
            f"{', '.join(SCENARIO_NAMES)}"
        ) from None
