"""The "alpha" cryptarithm from the C adaptive-search distribution.

Assign the values ``1..26`` to the letters ``a..z`` (a permutation) so that
the letter-sums of twenty music words match given totals, e.g.
``b+a+l+l+e+t = 45``.  A classic linear-equation CSP with a single solution.

Cost = sum over equations of ``|lhs - rhs|``.  The incremental state keeps
the residual vector ``A @ values - rhs``; swapping two letters shifts every
residual by ``(count_i - count_j) * (v_j - v_i)``, so the all-``j`` delta
vector is one small matrix operation.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.errors import ProblemError
from repro.problems.base import Problem, WalkState
from repro.problems.registry import register_problem

__all__ = ["AlphaProblem", "AlphaState", "ALPHA_EQUATIONS"]

#: (word, total) pairs of the classic instance
ALPHA_EQUATIONS: tuple[tuple[str, int], ...] = (
    ("ballet", 45),
    ("cello", 43),
    ("concert", 74),
    ("flute", 30),
    ("fugue", 50),
    ("glee", 66),
    ("jazz", 58),
    ("lyre", 47),
    ("oboe", 53),
    ("opera", 65),
    ("polka", 59),
    ("quartet", 50),
    ("saxophone", 134),
    ("scale", 51),
    ("solo", 37),
    ("song", 61),
    ("soprano", 82),
    ("theme", 72),
    ("violin", 100),
    ("waltz", 34),
)


class AlphaState(WalkState):
    """Walk state caching the residual of every equation."""

    __slots__ = ("residuals",)

    def __init__(self, config: np.ndarray, cost: float, residuals: np.ndarray) -> None:
        super().__init__(config, cost)
        self.residuals = residuals


@register_problem("alpha")
class AlphaProblem(Problem):
    """The 26-letter music cryptarithm (values are a permutation of 1..26)."""

    family = "alpha"
    value_base = 1

    def __init__(
        self, equations: tuple[tuple[str, int], ...] = ALPHA_EQUATIONS
    ) -> None:
        if not equations:
            raise ProblemError("alpha needs at least one equation")
        self.equations = tuple(equations)
        n_eq = len(self.equations)
        self._matrix = np.zeros((n_eq, 26), dtype=np.int64)
        self._rhs = np.zeros(n_eq, dtype=np.int64)
        for row, (word, total) in enumerate(self.equations):
            for ch in word.lower():
                if not "a" <= ch <= "z":
                    raise ProblemError(f"word {word!r} contains non-letter {ch!r}")
                self._matrix[row, ord(ch) - ord("a")] += 1
            self._rhs[row] = total

    @property
    def size(self) -> int:
        return 26

    @property
    def name(self) -> str:
        return f"{self.family}-{len(self.equations)}eq"

    def spec(self) -> Mapping[str, Any]:
        return {"family": self.family, "equations": len(self.equations)}

    def default_solver_parameters(self) -> dict[str, Any]:
        return {
            "freeze_loc_min": 5,
            "reset_limit": 5,
            "reset_fraction": 0.25,
            "prob_select_loc_min": 0.5,
            "restart_limit": 10**9,
        }

    # ------------------------------------------------------------------
    def _residuals(self, config: np.ndarray) -> np.ndarray:
        return self._matrix @ config - self._rhs

    def cost(self, config: np.ndarray) -> float:
        config = np.asarray(config, dtype=np.int64)
        return float(np.abs(self._residuals(config)).sum())

    # ------------------------------------------------------------------
    def init_state(self, config: np.ndarray) -> AlphaState:
        self.check_configuration(config)
        cfg = np.array(config, dtype=np.int64, copy=True)
        res = self._residuals(cfg)
        return AlphaState(cfg, float(np.abs(res).sum()), res)

    def swap_deltas(self, state: AlphaState, i: int) -> np.ndarray:
        """Residual shift for every candidate swap, one matrix op."""
        cfg = state.config
        # coeff difference per equation and candidate letter j
        coeff_diff = self._matrix[:, i : i + 1] - self._matrix  # (n_eq, 26)
        value_diff = (cfg - cfg[i]).astype(np.int64)  # v_j - v_i per j
        new_res = state.residuals[:, None] + coeff_diff * value_diff[None, :]
        new_cost = np.abs(new_res).sum(axis=0).astype(np.float64)
        deltas = new_cost - state.cost
        deltas[i] = 0.0
        return deltas

    def swap_delta(self, state: AlphaState, i: int, j: int) -> float:
        if i == j:
            return 0.0
        coeff_diff = self._matrix[:, i] - self._matrix[:, j]
        dv = int(state.config[j] - state.config[i])
        new_res = state.residuals + coeff_diff * dv
        return float(np.abs(new_res).sum() - state.cost)

    def apply_swap(self, state: AlphaState, i: int, j: int) -> None:
        if i == j:
            return
        coeff_diff = self._matrix[:, i] - self._matrix[:, j]
        dv = int(state.config[j] - state.config[i])
        state.residuals += coeff_diff * dv
        cfg = state.config
        cfg[i], cfg[j] = cfg[j], cfg[i]
        state.cost = float(np.abs(state.residuals).sum())

    def variable_errors(self, state: AlphaState) -> np.ndarray:
        """Letters inherit |residual| of the equations they appear in."""
        abs_res = np.abs(state.residuals).astype(np.float64)
        return (self._matrix != 0).astype(np.float64).T @ abs_res

    # ------------------------------------------------------------------
    def assignment_table(self, config: np.ndarray) -> dict[str, int]:
        """Letter -> value mapping for display."""
        return {chr(ord("a") + k): int(config[k]) for k in range(26)}
