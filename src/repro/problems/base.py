"""The problem protocol consumed by the solvers.

A :class:`Problem` is an immutable description of one instance (size,
constants, precomputed tables).  Per-walk mutable data lives in a
:class:`WalkState` created by :meth:`Problem.init_state`; the solver drives
the walk exclusively through the protocol below, so problems are free to
cache whatever makes their deltas incremental.

The contract mirrors the C adaptive-search library's benchmark plug-in API
(``Cost_Of_Solution``, ``Cost_On_Swap``, ``Executed_Swap``,
``Cost_If_Swap`` ...), translated to vectorized numpy:

``cost(config)``
    stateless full evaluation — the reference semantics.
``init_state(config)``
    build incremental caches for a walk starting at ``config``.
``swap_deltas(state, i)``
    cost change of swapping position ``i`` with *every* position ``j``
    (vector of length ``n``; entry ``i`` is 0).  The hot call.
``apply_swap(state, i, j)``
    commit a swap, updating config, cost and caches incrementally.
``variable_errors(state)``
    per-variable error projection driving worst-variable selection.

Default implementations fall back to full re-evaluation so a new problem is
correct from day one and can be made incremental afterwards; property tests
in ``tests/problems`` assert incremental ≡ reference on random states.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Mapping

import numpy as np

from repro.csp.model import Model
from repro.csp.permutation import check_permutation, random_partial_reset
from repro.errors import ProblemError
from repro.util.rng import SeedLike, as_generator

__all__ = ["WalkState", "Problem", "ModelProblem"]


class WalkState:
    """Mutable search state of one walk.

    Attributes
    ----------
    config:
        current configuration (int64 vector, owned by the state).
    cost:
        current total cost, kept consistent by ``apply_swap``.

    Problems subclass this to add caches (row sums, difference counts, ...).
    """

    __slots__ = ("config", "cost")

    def __init__(self, config: np.ndarray, cost: float) -> None:
        self.config = config
        self.cost = cost

    def copy_config(self) -> np.ndarray:
        return self.config.copy()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(cost={self.cost}, n={len(self.config)})"


class Problem(ABC):
    """One benchmark instance; see module docstring for the protocol."""

    #: short family name, e.g. ``"costas"`` (set by subclasses)
    family: str = "problem"
    #: permutation base value (configs are permutations of base..base+n-1)
    value_base: int = 0

    @property
    @abstractmethod
    def size(self) -> int:
        """Number of decision variables ``n``."""

    @property
    def name(self) -> str:
        """Unique human-readable instance name, e.g. ``costas-12``."""
        return f"{self.family}-{self.size}"

    def spec(self) -> Mapping[str, Any]:
        """Instance parameters (used for cache keys and reports)."""
        return {"family": self.family, "size": self.size}

    # ------------------------------------------------------------------
    # reference (stateless) semantics
    # ------------------------------------------------------------------
    @abstractmethod
    def cost(self, config: np.ndarray) -> float:
        """Full cost evaluation; 0 iff ``config`` solves the instance."""

    def is_solution(self, config: np.ndarray) -> bool:
        return self.cost(config) == 0

    def random_configuration(self, seed: SeedLike = None) -> np.ndarray:
        """Uniform random permutation of the value range."""
        rng = as_generator(seed)
        return rng.permutation(self.size).astype(np.int64) + self.value_base

    def check_configuration(self, config: np.ndarray) -> None:
        """Validate a configuration; raise :class:`ProblemError` if invalid."""
        arr = np.asarray(config)
        if arr.shape != (self.size,):
            raise ProblemError(
                f"{self.name}: configuration has shape {arr.shape}, "
                f"expected ({self.size},)"
            )
        check_permutation(arr, base=self.value_base)

    # ------------------------------------------------------------------
    # incremental walk protocol (override for speed)
    # ------------------------------------------------------------------
    def init_state(self, config: np.ndarray) -> WalkState:
        self.check_configuration(config)
        cfg = np.array(config, dtype=np.int64, copy=True)
        return WalkState(cfg, self.cost(cfg))

    def swap_delta(self, state: WalkState, i: int, j: int) -> float:
        """Cost change of swapping positions ``i`` and ``j`` (not applied)."""
        if i == j:
            return 0.0
        cfg = state.config
        cfg[i], cfg[j] = cfg[j], cfg[i]
        try:
            new_cost = self.cost(cfg)
        finally:
            cfg[i], cfg[j] = cfg[j], cfg[i]
        return float(new_cost - state.cost)

    def swap_deltas(self, state: WalkState, i: int) -> np.ndarray:
        """Deltas of swapping ``i`` with every position (entry ``i`` = 0)."""
        n = self.size
        deltas = np.zeros(n, dtype=np.float64)
        for j in range(n):
            if j != i:
                deltas[j] = self.swap_delta(state, i, j)
        return deltas

    def apply_swap(self, state: WalkState, i: int, j: int) -> None:
        """Commit the swap; default recomputes cost from scratch."""
        cfg = state.config
        cfg[i], cfg[j] = cfg[j], cfg[i]
        state.cost = self.cost(cfg)

    @abstractmethod
    def variable_errors(self, state: WalkState) -> np.ndarray:
        """Non-negative per-variable errors; all zero iff cost is zero."""

    def partial_reset(
        self, state: WalkState, fraction: float, rng: np.random.Generator
    ) -> None:
        """Perturb the walk (C library reset): random swaps, then re-sync."""
        random_partial_reset(state.config, fraction, rng)
        self.resync_state(state)

    def resync_state(self, state: WalkState) -> None:
        """Rebuild caches after an external modification of ``state.config``.

        The default rebuilds the state object in place via ``init_state``;
        problems with heavy caches may override with something cheaper.
        """
        fresh = self.init_state(state.config)
        state.config = fresh.config
        state.cost = fresh.cost
        for klass in type(fresh).__mro__:
            for slot in getattr(klass, "__slots__", ()):
                if slot not in ("config", "cost"):
                    setattr(state, slot, getattr(fresh, slot))

    # ------------------------------------------------------------------
    # solver tuning
    # ------------------------------------------------------------------
    def default_solver_parameters(self) -> dict[str, Any]:
        """Per-problem tuning (mirrors the per-benchmark defaults of the C
        library).  Keys match :class:`repro.core.config.AdaptiveSearchConfig`
        fields; the solver merges them under any explicit user settings."""
        return {}

    def __repr__(self) -> str:
        params = ", ".join(f"{k}={v!r}" for k, v in self.spec().items())
        return f"{type(self).__name__}({params})"


class ModelWalkState(WalkState):
    """Walk state for :class:`ModelProblem`: adds the per-constraint error
    cache that the model's incremental swap kernels are built on."""

    __slots__ = ("constraint_errors",)

    def __init__(
        self, config: np.ndarray, cost: float, constraint_errors: np.ndarray
    ) -> None:
        super().__init__(config, cost)
        self.constraint_errors = constraint_errors


class ModelProblem(Problem):
    """Adapter exposing a declarative :class:`~repro.csp.model.Model` (with a
    single permutation array) through the problem protocol.

    The walk protocol is incremental: the state caches every constraint's
    current error, swap deltas re-evaluate only constraints incident to the
    swapped positions through the vectorized
    :meth:`~repro.csp.constraints.Constraint.swap_errors` kernels, and
    committed swaps refresh just the touched cache entries.  Declarative
    models therefore run within a constant factor of the hand-written
    incremental problems instead of paying a full-model evaluation per
    candidate move.
    """

    family = "model"

    def __init__(
        self,
        model: Model,
        array_name: str | None = None,
        *,
        solver_defaults: Mapping[str, Any] | None = None,
    ) -> None:
        if model.n_variables == 0:
            raise ProblemError("model has no variables")
        if array_name is None:
            if len(model.arrays) != 1:
                raise ProblemError(
                    "model has several arrays; pass array_name explicitly"
                )
            array = model.arrays[0]
        else:
            matches = [a for a in model.arrays if a.name == array_name]
            if not matches:
                raise ProblemError(f"model has no array named {array_name!r}")
            array = matches[0]
        if not model.is_permutation(array):
            raise ProblemError(
                f"array {array.name!r} must be declared a permutation "
                "(ModelProblem explores by swaps)"
            )
        if array.n != model.n_variables:
            raise ProblemError(
                "ModelProblem currently supports models whose permutation "
                "array covers all variables"
            )
        self.model = model
        self.array = array
        self._base = int(array.domain.values()[0])
        vals = array.domain.values()
        if not np.array_equal(vals, np.arange(self._base, self._base + array.n)):
            raise ProblemError(
                "permutation array domain must be a contiguous integer range"
            )
        self._solver_defaults = dict(solver_defaults or {})

    def default_solver_parameters(self) -> dict[str, Any]:
        return dict(self._solver_defaults)

    @property
    def value_base(self) -> int:  # type: ignore[override]
        return self._base

    @property
    def size(self) -> int:
        return self.array.n

    @property
    def name(self) -> str:
        return f"model:{self.model.name}"

    def spec(self) -> Mapping[str, Any]:
        return {
            "family": self.family,
            "model": self.model.name,
            "size": self.size,
        }

    def cost(self, config: np.ndarray) -> float:
        return self.model.cost(np.asarray(config, dtype=np.int64))

    # ------------------------------------------------------------------
    # incremental walk protocol, backed by the model's swap kernels
    # ------------------------------------------------------------------
    def init_state(self, config: np.ndarray) -> ModelWalkState:
        self.check_configuration(config)
        cfg = np.array(config, dtype=np.int64, copy=True)
        errors = self.model.constraint_errors(cfg)
        return ModelWalkState(cfg, float(errors.sum()), errors)

    def swap_delta(self, state: ModelWalkState, i: int, j: int) -> float:
        return self.model.swap_cost_delta(
            state.config, state.constraint_errors, i, j
        )

    def swap_deltas(self, state: ModelWalkState, i: int) -> np.ndarray:
        return self.model.swap_cost_deltas(
            state.config, state.constraint_errors, i
        )

    def apply_swap(self, state: ModelWalkState, i: int, j: int) -> None:
        self.model.apply_swap_update(
            state.config, state.constraint_errors, i, j
        )
        state.cost = float(state.constraint_errors.sum())

    def variable_errors(self, state: WalkState) -> np.ndarray:
        cached = getattr(state, "constraint_errors", None)
        return self.model.variable_errors(state.config, cached)
