"""The value-move problem protocol (non-permutation CSPs).

The C adaptive-search library supports two move modes: permutation
problems explore by *swaps* (:class:`repro.problems.base.Problem`), general
CSPs by *changing one variable's value* within its domain.  This module is
the value-mode counterpart of the swap protocol, consumed by
:class:`repro.core.value_solver.ValueAdaptiveSearch`:

``domain_values(var)``
    the candidate values of one variable (including its current value).
``value_deltas(state, var)``
    cost change of assigning each candidate value (aligned with
    ``domain_values``; the entry for the current value is 0).
``apply_assign(state, var, value)``
    commit an assignment, updating cost and caches incrementally.

Defaults fall back to full re-evaluation, so a declaratively modelled
problem (:class:`ValueModelProblem`) works out of the box.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Mapping

import numpy as np

from repro.csp.model import Model
from repro.errors import ProblemError
from repro.problems.base import WalkState
from repro.util.rng import SeedLike, as_generator

__all__ = ["ValueProblem", "ValueModelProblem"]


class ValueProblem(ABC):
    """One CSP instance explored by single-variable value changes."""

    family: str = "value_problem"

    @property
    @abstractmethod
    def size(self) -> int:
        """Number of decision variables."""

    @property
    def name(self) -> str:
        return f"{self.family}-{self.size}"

    def spec(self) -> Mapping[str, Any]:
        return {"family": self.family, "size": self.size}

    # ------------------------------------------------------------------
    @abstractmethod
    def domain_values(self, var: int) -> np.ndarray:
        """Candidate values of ``var`` (sorted int64, fresh array)."""

    @abstractmethod
    def cost(self, config: np.ndarray) -> float:
        """Full cost evaluation; 0 iff ``config`` solves the instance."""

    def is_solution(self, config: np.ndarray) -> bool:
        return self.cost(config) == 0

    def random_configuration(self, seed: SeedLike = None) -> np.ndarray:
        rng = as_generator(seed)
        out = np.empty(self.size, dtype=np.int64)
        for var in range(self.size):
            values = self.domain_values(var)
            out[var] = values[rng.integers(0, len(values))]
        return out

    def check_configuration(self, config: np.ndarray) -> None:
        arr = np.asarray(config)
        if arr.shape != (self.size,):
            raise ProblemError(
                f"{self.name}: configuration has shape {arr.shape}, "
                f"expected ({self.size},)"
            )
        for var in range(self.size):
            if int(arr[var]) not in self.domain_values(var):
                raise ProblemError(
                    f"{self.name}: value {arr[var]} outside domain of "
                    f"variable {var}"
                )

    # ------------------------------------------------------------------
    def init_state(self, config: np.ndarray) -> WalkState:
        self.check_configuration(config)
        cfg = np.array(config, dtype=np.int64, copy=True)
        return WalkState(cfg, self.cost(cfg))

    def value_deltas(self, state: WalkState, var: int) -> np.ndarray:
        """Cost deltas of assigning each domain value to ``var``."""
        values = self.domain_values(var)
        current = int(state.config[var])
        deltas = np.zeros(len(values), dtype=np.float64)
        cfg = state.config
        for idx, value in enumerate(values.tolist()):
            if value == current:
                continue
            cfg[var] = value
            deltas[idx] = self.cost(cfg) - state.cost
        cfg[var] = current
        return deltas

    def apply_assign(self, state: WalkState, var: int, value: int) -> None:
        state.config[var] = value
        state.cost = self.cost(state.config)

    @abstractmethod
    def variable_errors(self, state: WalkState) -> np.ndarray:
        """Non-negative per-variable errors; all zero iff cost is zero."""

    def partial_reset(
        self, state: WalkState, fraction: float, rng: np.random.Generator
    ) -> None:
        """Reassign ~``fraction`` of the variables uniformly at random."""
        if not 0.0 < fraction <= 1.0:
            raise ProblemError(f"reset fraction must be in (0, 1], got {fraction}")
        n = self.size
        count = max(1, int(round(fraction * n)))
        chosen = rng.choice(n, size=count, replace=False)
        for var in chosen.tolist():
            values = self.domain_values(var)
            state.config[var] = values[rng.integers(0, len(values))]
        self.resync_state(state)

    def resync_state(self, state: WalkState) -> None:
        fresh = self.init_state(state.config)
        state.config = fresh.config
        state.cost = fresh.cost
        for klass in type(fresh).__mro__:
            for slot in getattr(klass, "__slots__", ()):
                if slot not in ("config", "cost"):
                    setattr(state, slot, getattr(fresh, slot))

    def default_solver_parameters(self) -> dict[str, Any]:
        return {}

    def __repr__(self) -> str:
        params = ", ".join(f"{k}={v!r}" for k, v in self.spec().items())
        return f"{type(self).__name__}({params})"


class ValueModelProblem(ValueProblem):
    """Any declarative :class:`~repro.csp.model.Model` as a value problem.

    Unlike :class:`repro.problems.base.ModelProblem`, no permutation
    structure is required: every variable moves freely within its array's
    domain.  Evaluation is non-incremental (model recomputation).
    """

    family = "value_model"

    def __init__(self, model: Model) -> None:
        if model.n_variables == 0:
            raise ProblemError("model has no variables")
        self.model = model
        self._domains: list[np.ndarray] = []
        for array in model.arrays:
            values = array.domain.values()
            self._domains.extend([values] * array.n)

    @property
    def size(self) -> int:
        return self.model.n_variables

    @property
    def name(self) -> str:
        return f"value_model:{self.model.name}"

    def spec(self) -> Mapping[str, Any]:
        return {
            "family": self.family,
            "model": self.model.name,
            "size": self.size,
        }

    def domain_values(self, var: int) -> np.ndarray:
        return self._domains[var].copy()

    def cost(self, config: np.ndarray) -> float:
        return self.model.cost(np.asarray(config, dtype=np.int64))

    def variable_errors(self, state: WalkState) -> np.ndarray:
        return self.model.variable_errors(state.config)

    def random_configuration(self, seed: SeedLike = None) -> np.ndarray:
        return self.model.random_assignment(seed)
