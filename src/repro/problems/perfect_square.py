"""Perfect Square placement (CSPLib prob009).

Pack a given multiset of squares into a master rectangle exactly (no overlap,
no empty cell).  The classic instance is the order-21 simple perfect squared
square: 21 squares of distinct sizes tiling a 112 x 112 master.

Local-search formulation
------------------------
The C benchmark drives placement coordinates directly; for the permutation
engine we use the standard *placement-order* encoding from strip-packing
local search: the configuration is a permutation of the square indices, and a
deterministic **lowest-gap decoder** converts it to a packing:

1. maintain the skyline (per-column filled height);
2. find the lowest skyline level, leftmost gap (maximal run of columns at
   that level);
3. if the next square fits the gap width, place it flush at the gap's left
   edge; otherwise the gap can never be filled — raise it to the lower of
   its two neighbouring levels and count the raised cells as *waste*;
4. cost = waste + area overflowing the master's top edge.

For an exact tiling, ordering its squares by (y, x) of their bottom-left
corner makes the decoder reconstruct the tiling, so zero-cost permutations
exist iff the instance is packable, and cost 0 certifies a perfect packing
(area conservation: no waste and no overflow forces every cell covered).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

import numpy as np

from repro.errors import ProblemError
from repro.problems.base import Problem, WalkState
from repro.problems.registry import register_problem

__all__ = [
    "SquarePackingInstance",
    "PerfectSquareProblem",
    "PerfectSquareState",
    "Placement",
]

#: the order-21 simple perfect squared square (side 112), Duijvestijn 1978
CLASSIC21_SIZES = (50, 42, 37, 35, 33, 29, 27, 25, 24, 19, 18, 17, 16, 15, 11, 9, 8, 7, 6, 4, 2)
#: Moron's 32x33 squared rectangle (order 9)
MORON_SIZES = (18, 15, 14, 10, 9, 8, 7, 4, 1)


@dataclass(frozen=True)
class SquarePackingInstance:
    """A packing instance: master ``width x height`` and square sizes."""

    width: int
    height: int
    sizes: tuple[int, ...]
    name: str = "custom"

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ProblemError(
                f"master rectangle must be positive, got {self.width}x{self.height}"
            )
        if not self.sizes:
            raise ProblemError("instance needs at least one square")
        if any(s <= 0 for s in self.sizes):
            raise ProblemError(f"square sizes must be positive: {self.sizes}")
        if max(self.sizes) > min(self.width, self.height):
            raise ProblemError(
                f"square of size {max(self.sizes)} cannot fit the "
                f"{self.width}x{self.height} master"
            )
        area = sum(s * s for s in self.sizes)
        if area != self.width * self.height:
            raise ProblemError(
                f"square areas sum to {area} but master area is "
                f"{self.width * self.height}; exact packing impossible"
            )

    @classmethod
    def classic21(cls) -> "SquarePackingInstance":
        """Order-21 perfect squared square, side 112."""
        return cls(112, 112, CLASSIC21_SIZES, name="classic21")

    @classmethod
    def moron(cls) -> "SquarePackingInstance":
        """Moron's 32x33 squared rectangle (order 9) — a small instance."""
        return cls(33, 32, MORON_SIZES, name="moron")

    @classmethod
    def grid(cls, k: int, s: int = 1) -> "SquarePackingInstance":
        """``k*k`` equal squares of side ``s`` tiling a ``(k*s)^2`` master."""
        if k <= 0 or s <= 0:
            raise ProblemError(f"grid instance needs k, s > 0, got {k}, {s}")
        return cls(k * s, k * s, (s,) * (k * k), name=f"grid{k}x{s}")


@dataclass
class Placement:
    """Where one square ended up, in decoder order."""

    square: int  # index into instance.sizes
    x: int
    y: int
    size: int
    overflow: int  # area of this square above the master's top edge


@dataclass
class _DecodeResult:
    cost: float
    waste: float
    overflow: float
    placements: list[Placement] = field(default_factory=list)
    per_square_error: np.ndarray | None = None


class PerfectSquareState(WalkState):
    """Walk state caching the latest decode of the configuration."""

    __slots__ = ("decode",)

    def __init__(self, config: np.ndarray, decode: _DecodeResult) -> None:
        super().__init__(config, decode.cost)
        self.decode = decode


@register_problem("perfect_square")
class PerfectSquareProblem(Problem):
    """Perfect square/rectangle packing via permutation + lowest-gap decoder."""

    family = "perfect_square"

    def __init__(self, instance: SquarePackingInstance | str | None = None) -> None:
        if instance is None or instance == "moron":
            instance = SquarePackingInstance.moron()
        elif instance == "classic21":
            instance = SquarePackingInstance.classic21()
        elif isinstance(instance, str):
            raise ProblemError(
                f"unknown named instance {instance!r}; use 'moron', 'classic21' "
                "or pass a SquarePackingInstance"
            )
        self.instance = instance
        self._sizes = np.asarray(instance.sizes, dtype=np.int64)

    @property
    def size(self) -> int:
        return len(self.instance.sizes)

    @property
    def name(self) -> str:
        return f"{self.family}-{self.instance.name}"

    def spec(self) -> Mapping[str, Any]:
        return {
            "family": self.family,
            "instance": self.instance.name,
            "width": self.instance.width,
            "height": self.instance.height,
            "order": len(self.instance.sizes),
        }

    def default_solver_parameters(self) -> dict[str, Any]:
        n = self.size
        return {
            "freeze_loc_min": 5,
            "reset_limit": max(2, n // 2),
            "reset_fraction": 0.4,
            "prob_select_loc_min": 0.5,
            # decoder landscapes benefit from restarts
            "restart_limit": 1000,
        }

    # ------------------------------------------------------------------
    # decoder
    # ------------------------------------------------------------------
    def decode(self, config: np.ndarray) -> _DecodeResult:
        """Run the lowest-gap decoder; see module docstring."""
        inst = self.instance
        W, H = inst.width, inst.height
        heights = np.zeros(W, dtype=np.int64)
        waste = 0
        n = self.size
        per_square = np.zeros(n, dtype=np.float64)
        placements: list[Placement] = []
        for pos in range(n):
            sq = int(config[pos])
            s = int(self._sizes[sq])
            # fill unusable gaps until the square fits the lowest one
            while True:
                y = int(heights.min())
                x0 = int(np.argmin(heights))
                x1 = x0
                while x1 < W and heights[x1] == y:
                    x1 += 1
                gap = x1 - x0
                if s <= gap:
                    break
                left = int(heights[x0 - 1]) if x0 > 0 else None
                right = int(heights[x1]) if x1 < W else None
                if left is None and right is None:
                    raise ProblemError(
                        f"square {s} wider than master width {W}"
                    )  # pragma: no cover - instance validation prevents this
                new_h = min(v for v in (left, right) if v is not None)
                waste += gap * (new_h - y)
                per_square[sq] += gap * (new_h - y)
                heights[x0:x1] = new_h
            over = max(0, y + s - H) * s
            per_square[sq] += over
            heights[x0 : x0 + s] = y + s
            placements.append(Placement(square=sq, x=x0, y=y, size=s, overflow=over))
        overflow = float(sum(p.overflow for p in placements))
        cost = float(waste) + overflow
        return _DecodeResult(
            cost=cost,
            waste=float(waste),
            overflow=overflow,
            placements=placements,
            per_square_error=per_square,
        )

    # ------------------------------------------------------------------
    # problem protocol
    # ------------------------------------------------------------------
    def cost(self, config: np.ndarray) -> float:
        config = np.asarray(config, dtype=np.int64)
        return self.decode(config).cost

    def init_state(self, config: np.ndarray) -> PerfectSquareState:
        self.check_configuration(config)
        cfg = np.array(config, dtype=np.int64, copy=True)
        return PerfectSquareState(cfg, self.decode(cfg))

    def apply_swap(self, state: PerfectSquareState, i: int, j: int) -> None:
        cfg = state.config
        cfg[i], cfg[j] = cfg[j], cfg[i]
        state.decode = self.decode(cfg)
        state.cost = state.decode.cost

    def variable_errors(self, state: PerfectSquareState) -> np.ndarray:
        """Error of position ``i`` = waste+overflow charged to its square."""
        per_square = state.decode.per_square_error
        assert per_square is not None
        return per_square[state.config]

    def resync_state(self, state: PerfectSquareState) -> None:
        state.decode = self.decode(state.config)
        state.cost = state.decode.cost

    # ------------------------------------------------------------------
    def render(self, config: np.ndarray) -> str:
        """ASCII occupancy grid of the decoded packing (letters per square)."""
        inst = self.instance
        decode = self.decode(np.asarray(config, dtype=np.int64))
        grid = [["." for _ in range(inst.width)] for _ in range(inst.height)]
        glyphs = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
        for p in decode.placements:
            glyph = glyphs[p.square % len(glyphs)]
            for yy in range(p.y, min(p.y + p.size, inst.height)):
                for xx in range(p.x, p.x + p.size):
                    grid[yy][xx] = glyph
        return "\n".join("".join(row) for row in reversed(grid))
