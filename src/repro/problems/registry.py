"""Problem registry: build benchmark instances by name.

The harness and benchmarks refer to problems by family name + parameters
(e.g. ``make_problem("costas", n=12)``), so experiment definitions stay
declarative and cacheable.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import ProblemError
from repro.problems.base import Problem

__all__ = ["register_problem", "make_problem", "available_problems"]

_REGISTRY: dict[str, Callable[..., Problem]] = {}


def register_problem(name: str) -> Callable[[Callable[..., Problem]], Callable[..., Problem]]:
    """Class/factory decorator registering a problem family under ``name``."""

    def decorator(factory: Callable[..., Problem]) -> Callable[..., Problem]:
        if name in _REGISTRY:
            raise ProblemError(f"problem family {name!r} already registered")
        _REGISTRY[name] = factory
        return factory

    return decorator


def make_problem(name: str, /, **params: Any) -> Problem:
    """Instantiate a registered problem family.

    >>> make_problem("costas", n=10).name
    'costas-10'
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "(none)"
        raise ProblemError(
            f"unknown problem family {name!r}; registered families: {known}"
        ) from None
    return factory(**params)


def available_problems() -> list[str]:
    """Sorted names of all registered problem families."""
    return sorted(_REGISTRY)
