"""Magic Square (CSPLib prob019).

Place ``1 .. n*n`` in an ``n x n`` grid so that every row, column and the two
main diagonals sum to the magic constant ``M = n(n^2+1)/2``.

Permutation model: the configuration is a permutation of ``1..n*n`` laid out
row-major.  Cost = sum of ``|line_sum - M|`` over the ``2n + 2`` lines — the
error function of the C ``magic-square.c`` benchmark.

Incremental state caches the ``2n + 2`` line sums; a swap touches at most two
rows, two columns and the diagonals, so deltas are O(1) and the all-``j``
delta vector is fully vectorized.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.errors import ProblemError
from repro.problems.base import Problem, WalkState
from repro.problems.registry import register_problem

__all__ = ["MagicSquareProblem", "MagicSquareState"]


class MagicSquareState(WalkState):
    """Walk state with cached row/column/diagonal sums."""

    __slots__ = ("row_sums", "col_sums", "diag_sum", "anti_sum")

    def __init__(
        self,
        config: np.ndarray,
        cost: float,
        row_sums: np.ndarray,
        col_sums: np.ndarray,
        diag_sum: int,
        anti_sum: int,
    ) -> None:
        super().__init__(config, cost)
        self.row_sums = row_sums
        self.col_sums = col_sums
        self.diag_sum = diag_sum
        self.anti_sum = anti_sum


@register_problem("magic_square")
class MagicSquareProblem(Problem):
    """Magic square of order ``n`` (``n*n`` variables)."""

    family = "magic_square"
    value_base = 1

    def __init__(self, n: int = 10) -> None:
        if n < 3:
            raise ProblemError(f"magic_square needs n >= 3, got {n}")
        self._order = int(n)
        self._n_cells = n * n
        self.magic_constant = n * (n * n + 1) // 2
        cells = np.arange(self._n_cells)
        self._rows = cells // n  # row index of each cell
        self._cols = cells % n
        self._on_diag = self._rows == self._cols
        self._on_anti = (self._rows + self._cols) == n - 1

    # ------------------------------------------------------------------
    @property
    def order(self) -> int:
        """Side length ``n`` of the square."""
        return self._order

    @property
    def size(self) -> int:
        return self._n_cells

    @property
    def name(self) -> str:
        return f"{self.family}-{self._order}"

    def spec(self) -> Mapping[str, Any]:
        return {"family": self.family, "n": self._order}

    def default_solver_parameters(self) -> dict[str, Any]:
        # tuned on orders 5..10 (see benchmarks/bench_abl_tuning.py)
        n2 = self._n_cells
        return {
            "freeze_loc_min": 5,
            "reset_limit": max(5, n2 // 8),
            "reset_fraction": 0.25,
            "prob_select_loc_min": 0.5,
            "restart_limit": 10**9,
        }

    # ------------------------------------------------------------------
    # reference semantics
    # ------------------------------------------------------------------
    def _line_sums(self, config: np.ndarray) -> tuple[np.ndarray, np.ndarray, int, int]:
        n = self._order
        grid = config.reshape(n, n)
        return (
            grid.sum(axis=1),
            grid.sum(axis=0),
            int(np.trace(grid)),
            int(np.trace(np.fliplr(grid))),
        )

    def cost(self, config: np.ndarray) -> float:
        config = np.asarray(config, dtype=np.int64)
        rows, cols, diag, anti = self._line_sums(config)
        m = self.magic_constant
        return float(
            np.abs(rows - m).sum()
            + np.abs(cols - m).sum()
            + abs(diag - m)
            + abs(anti - m)
        )

    # ------------------------------------------------------------------
    # incremental protocol
    # ------------------------------------------------------------------
    def init_state(self, config: np.ndarray) -> MagicSquareState:
        self.check_configuration(config)
        cfg = np.array(config, dtype=np.int64, copy=True)
        rows, cols, diag, anti = self._line_sums(cfg)
        cost = self.cost(cfg)
        return MagicSquareState(cfg, cost, rows, cols, diag, anti)

    def swap_deltas(self, state: MagicSquareState, i: int) -> np.ndarray:
        """Vectorized deltas of swapping cell ``i`` with every cell ``j``."""
        cfg = state.config
        m = self.magic_constant
        vi = cfg[i]
        dv = cfg - vi  # value gained by cell i's lines, lost by j's lines
        ri, ci = int(self._rows[i]), int(self._cols[i])

        rs, cs = state.row_sums, state.col_sums
        # current absolute errors of every line
        row_err = np.abs(rs - m)
        col_err = np.abs(cs - m)

        same_row = self._rows == ri
        same_col = self._cols == ci

        # row of i gains dv unless j is in the same row
        d_row_i = np.where(same_row, 0, np.abs(rs[ri] + dv - m) - row_err[ri])
        d_row_j = np.where(
            same_row, 0, np.abs(rs[self._rows] - dv - m) - row_err[self._rows]
        )
        d_col_i = np.where(same_col, 0, np.abs(cs[ci] + dv - m) - col_err[ci])
        d_col_j = np.where(
            same_col, 0, np.abs(cs[self._cols] - dv - m) - col_err[self._cols]
        )

        diag_err = abs(state.diag_sum - m)
        anti_err = abs(state.anti_sum - m)
        i_diag, i_anti = bool(self._on_diag[i]), bool(self._on_anti[i])
        # net change of each diagonal's sum per candidate j
        diag_change = (np.int64(i_diag) - self._on_diag.astype(np.int64)) * dv
        anti_change = (np.int64(i_anti) - self._on_anti.astype(np.int64)) * dv
        d_diag = np.abs(state.diag_sum + diag_change - m) - diag_err
        d_anti = np.abs(state.anti_sum + anti_change - m) - anti_err

        deltas = (d_row_i + d_row_j + d_col_i + d_col_j + d_diag + d_anti).astype(
            np.float64
        )
        deltas[i] = 0.0
        return deltas

    def swap_delta(self, state: MagicSquareState, i: int, j: int) -> float:
        if i == j:
            return 0.0
        return float(self.swap_deltas(state, i)[j])

    def apply_swap(self, state: MagicSquareState, i: int, j: int) -> None:
        if i == j:
            return
        delta = self.swap_delta(state, i, j)
        cfg = state.config
        dv = int(cfg[j] - cfg[i])
        ri, ci = int(self._rows[i]), int(self._cols[i])
        rj, cj = int(self._rows[j]), int(self._cols[j])
        if ri != rj:
            state.row_sums[ri] += dv
            state.row_sums[rj] -= dv
        if ci != cj:
            state.col_sums[ci] += dv
            state.col_sums[cj] -= dv
        state.diag_sum += dv * (int(self._on_diag[i]) - int(self._on_diag[j]))
        state.anti_sum += dv * (int(self._on_anti[i]) - int(self._on_anti[j]))
        cfg[i], cfg[j] = cfg[j], cfg[i]
        state.cost += delta

    def variable_errors(self, state: MagicSquareState) -> np.ndarray:
        """Each cell inherits the absolute errors of the lines through it."""
        m = self.magic_constant
        row_err = np.abs(state.row_sums - m).astype(np.float64)
        col_err = np.abs(state.col_sums - m).astype(np.float64)
        errors = row_err[self._rows] + col_err[self._cols]
        errors += np.where(self._on_diag, abs(state.diag_sum - m), 0)
        errors += np.where(self._on_anti, abs(state.anti_sum - m), 0)
        return errors

    # ------------------------------------------------------------------
    def render(self, config: np.ndarray) -> str:
        n = self._order
        grid = np.asarray(config).reshape(n, n)
        width = len(str(n * n))
        return "\n".join(
            " ".join(str(v).rjust(width) for v in row) for row in grid.tolist()
        )
