"""The Costas Array Problem (CAP).

A Costas array of order ``n`` is an ``n x n`` grid with one mark per row and
column such that the ``n(n-1)/2`` displacement vectors between marks are all
distinct.  As in the paper we use the permutation model: configuration
``p[0..n-1]`` gives the row of the mark in each column, and the Costas
property requires, for every column distance ``d``, that the differences
``p[i+d] - p[i]`` are pairwise distinct.

Cost function (the one used by the C ``costas.c`` benchmark, up to constant
factors): for every distance ``d`` and difference value ``v`` occurring
``c > 1`` times, add ``c - 1``.  Zero iff the permutation is a Costas array.

Implementation note: this is the solver's hottest problem (the paper's CAP
runs dominate the evaluation), and its swap neighbourhood touches only
O(n) difference pairs, each a scalar bucket update — a regime where numpy's
per-call overhead on tiny arrays loses badly.  The incremental state is
therefore plain Python (nested count lists, precomputed pair tuples); the
numpy interface (``config`` vector) is kept in sync for the generic
protocol.  ``tests/problems`` asserts equivalence with the reference
vectorized cost.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.errors import ProblemError
from repro.problems.base import Problem, WalkState
from repro.problems.registry import register_problem

__all__ = ["CostasProblem", "CostasState"]


class CostasState(WalkState):
    """Walk state with the per-distance difference-count table.

    ``counts[d][v + n - 1]`` is the number of pairs at column distance ``d``
    whose difference equals ``v``; ``values`` mirrors ``config`` as a plain
    Python list for fast scalar access in the hot path.
    """

    __slots__ = ("counts", "values")

    def __init__(
        self,
        config: np.ndarray,
        cost: float,
        counts: list[list[int]],
        values: list[int],
    ) -> None:
        super().__init__(config, cost)
        self.counts = counts
        self.values = values


@register_problem("costas")
class CostasProblem(Problem):
    """Costas Array Problem of order ``n``."""

    family = "costas"

    def __init__(self, n: int = 12) -> None:
        if n < 2:
            raise ProblemError(f"costas needs n >= 2, got {n}")
        self._n = int(n)
        # all ordered index pairs (a, b) with b > a, as plain tuples
        self._pairs: list[tuple[int, int, int]] = [
            (a, a + d, d) for d in range(1, n) for a in range(n - d)
        ]
        # pairs touching column k, excluding nothing
        self._touch: list[list[tuple[int, int, int]]] = [
            [p for p in self._pairs if p[0] == k or p[1] == k] for k in range(n)
        ]
        # vectorized pair tables for the reference cost / error projection
        self._pair_a = np.asarray([p[0] for p in self._pairs], dtype=np.int64)
        self._pair_b = np.asarray([p[1] for p in self._pairs], dtype=np.int64)
        self._pair_d = self._pair_b - self._pair_a

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return self._n

    def spec(self) -> Mapping[str, Any]:
        return {"family": self.family, "n": self._n}

    def default_solver_parameters(self) -> dict[str, Any]:
        # tuned on n = 9..14 (see benchmarks/bench_abl_tuning.py)
        n = self._n
        return {
            "freeze_loc_min": 3,
            "reset_limit": max(2, n // 4),
            "reset_fraction": 0.25,
            "prob_select_loc_min": 0.5,
            "restart_limit": 10**9,
        }

    # ------------------------------------------------------------------
    # reference semantics (vectorized, stateless)
    # ------------------------------------------------------------------
    def _count_table(self, config: np.ndarray) -> np.ndarray:
        n = self._n
        counts = np.zeros((n, 2 * n - 1), dtype=np.int64)
        diffs = config[self._pair_b] - config[self._pair_a] + n - 1
        np.add.at(counts, (self._pair_d, diffs), 1)
        return counts

    @staticmethod
    def _cost_from_counts(counts: np.ndarray) -> float:
        return float(np.maximum(counts - 1, 0).sum())

    def cost(self, config: np.ndarray) -> float:
        config = np.asarray(config, dtype=np.int64)
        return self._cost_from_counts(self._count_table(config))

    # ------------------------------------------------------------------
    # incremental protocol (pure-Python hot path)
    # ------------------------------------------------------------------
    def init_state(self, config: np.ndarray) -> CostasState:
        self.check_configuration(config)
        cfg = np.array(config, dtype=np.int64, copy=True)
        values = [int(v) for v in cfg]
        n = self._n
        off = n - 1
        counts = [[0] * (2 * n - 1) for _ in range(n)]
        cost = 0
        for a, b, d in self._pairs:
            v = values[b] - values[a] + off
            row = counts[d]
            if row[v]:
                cost += 1
            row[v] += 1
        return CostasState(cfg, float(cost), counts, values)

    def _swap_events(
        self, state: CostasState, i: int, j: int
    ) -> list[tuple[int, int, int]]:
        """(d, old_bucket, new_bucket) for every pair whose difference moves."""
        values = state.values
        off = self._n - 1
        vi = values[i]
        vj = values[j]
        dv = vj - vi
        events: list[tuple[int, int, int]] = []
        for a, b, d in self._touch[i]:
            if a == j or b == j:
                continue  # the (i, j) pair is handled below
            old = values[b] - values[a]
            new = old - dv if a == i else old + dv
            if old != new:
                events.append((d, old + off, new + off))
        for a, b, d in self._touch[j]:
            if a == i or b == i:
                continue
            old = values[b] - values[a]
            new = old + dv if a == j else old - dv
            if old != new:
                events.append((d, old + off, new + off))
        a, b = (i, j) if i < j else (j, i)
        old = values[b] - values[a]
        if old != -old:
            events.append((b - a, old + off, -old + off))
        return events

    def swap_delta(self, state: CostasState, i: int, j: int) -> float:
        if i == j:
            return 0.0
        counts = state.counts
        events = self._swap_events(state, i, j)
        delta = 0
        for d, ov, nv in events:
            row = counts[d]
            c = row[ov]
            if c > 1:
                delta -= 1
            row[ov] = c - 1
            c = row[nv]
            if c >= 1:
                delta += 1
            row[nv] = c + 1
        # roll back (this was only a probe)
        for d, ov, nv in events:
            row = counts[d]
            row[ov] += 1
            row[nv] -= 1
        return float(delta)

    def swap_deltas(self, state: CostasState, i: int) -> np.ndarray:
        deltas = np.zeros(self._n, dtype=np.float64)
        swap_delta = self.swap_delta
        for j in range(self._n):
            if j != i:
                deltas[j] = swap_delta(state, i, j)
        return deltas

    def apply_swap(self, state: CostasState, i: int, j: int) -> None:
        if i == j:
            return
        counts = state.counts
        events = self._swap_events(state, i, j)
        delta = 0
        for d, ov, nv in events:
            row = counts[d]
            c = row[ov]
            if c > 1:
                delta -= 1
            row[ov] = c - 1
            c = row[nv]
            if c >= 1:
                delta += 1
            row[nv] = c + 1
        values = state.values
        values[i], values[j] = values[j], values[i]
        cfg = state.config
        cfg[i], cfg[j] = cfg[j], cfg[i]
        state.cost += delta

    def variable_errors(self, state: CostasState) -> np.ndarray:
        n = self._n
        off = n - 1
        values = state.values
        counts = state.counts
        errors = [0.0] * n
        for a, b, d in self._pairs:
            if counts[d][values[b] - values[a] + off] > 1:
                errors[a] += 1.0
                errors[b] += 1.0
        return np.asarray(errors)

    # ------------------------------------------------------------------
    def render(self, config: np.ndarray) -> str:
        """ASCII picture of the marks (rows printed top-down)."""
        n = self._n
        rows = []
        for r in range(n):
            rows.append(" ".join("X" if config[c] == r else "." for c in range(n)))
        return "\n".join(rows)
