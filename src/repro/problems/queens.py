"""N-Queens in the permutation model (from the C adaptive-search suite).

``p[i]`` is the row of the queen in column ``i``; rows/columns are conflict-
free by construction, so the cost counts diagonal attacks: for each
diagonal (``p[i] - i`` constant) and anti-diagonal (``p[i] + i`` constant)
holding ``c > 1`` queens, add ``c - 1``.

Not part of the paper's evaluation; used by tests and the baseline ablation
(the classic easy target for min-conflicts).
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.errors import ProblemError
from repro.problems.base import Problem, WalkState
from repro.problems.registry import register_problem

__all__ = ["QueensProblem", "QueensState"]


class QueensState(WalkState):
    """Walk state caching queens-per-diagonal counts."""

    __slots__ = ("diag_counts", "anti_counts")

    def __init__(
        self,
        config: np.ndarray,
        cost: float,
        diag_counts: np.ndarray,
        anti_counts: np.ndarray,
    ) -> None:
        super().__init__(config, cost)
        #: ``diag_counts[p[i] - i + n - 1]`` — queens per "down" diagonal
        self.diag_counts = diag_counts
        #: ``anti_counts[p[i] + i]`` — queens per "up" diagonal
        self.anti_counts = anti_counts


@register_problem("queens")
class QueensProblem(Problem):
    """N-Queens of order ``n``."""

    family = "queens"

    def __init__(self, n: int = 50) -> None:
        if n < 4:
            raise ProblemError(f"queens needs n >= 4, got {n}")
        self._n = int(n)
        self._idx = np.arange(self._n, dtype=np.int64)

    @property
    def size(self) -> int:
        return self._n

    def spec(self) -> Mapping[str, Any]:
        return {"family": self.family, "n": self._n}

    def default_solver_parameters(self) -> dict[str, Any]:
        return {
            "freeze_loc_min": 2,
            "reset_limit": max(2, self._n // 10),
            "reset_fraction": 0.1,
            "prob_select_loc_min": 0.33,
            "restart_limit": 10**9,
        }

    # ------------------------------------------------------------------
    def _tables(self, config: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        n = self._n
        diag = np.zeros(2 * n - 1, dtype=np.int64)
        anti = np.zeros(2 * n - 1, dtype=np.int64)
        np.add.at(diag, config - self._idx + n - 1, 1)
        np.add.at(anti, config + self._idx, 1)
        return diag, anti

    @staticmethod
    def _cost_from_tables(diag: np.ndarray, anti: np.ndarray) -> float:
        return float(
            np.maximum(diag - 1, 0).sum() + np.maximum(anti - 1, 0).sum()
        )

    def cost(self, config: np.ndarray) -> float:
        config = np.asarray(config, dtype=np.int64)
        return self._cost_from_tables(*self._tables(config))

    # ------------------------------------------------------------------
    def init_state(self, config: np.ndarray) -> QueensState:
        self.check_configuration(config)
        cfg = np.array(config, dtype=np.int64, copy=True)
        diag, anti = self._tables(cfg)
        return QueensState(cfg, self._cost_from_tables(diag, anti), diag, anti)

    def swap_delta(self, state: QueensState, i: int, j: int) -> float:
        if i == j:
            return 0.0
        cfg = state.config
        n = self._n
        diag, anti = state.diag_counts, state.anti_counts
        vi, vj = int(cfg[i]), int(cfg[j])
        removals = (
            (diag, vi - i + n - 1),
            (diag, vj - j + n - 1),
            (anti, vi + i),
            (anti, vj + j),
        )
        additions = (
            (diag, vj - i + n - 1),
            (diag, vi - j + n - 1),
            (anti, vj + i),
            (anti, vi + j),
        )
        delta = 0.0
        touched: list[tuple[np.ndarray, int, int]] = []
        for table, idx in removals:
            c = table[idx]
            if c > 1:
                delta -= 1.0
            table[idx] = c - 1
            touched.append((table, idx, -1))
        for table, idx in additions:
            c = table[idx]
            if c >= 1:
                delta += 1.0
            table[idx] = c + 1
            touched.append((table, idx, +1))
        for table, idx, change in reversed(touched):
            table[idx] -= change
        return delta

    def swap_deltas(self, state: QueensState, i: int) -> np.ndarray:
        deltas = np.zeros(self._n, dtype=np.float64)
        for j in range(self._n):
            if j != i:
                deltas[j] = self.swap_delta(state, i, j)
        return deltas

    def apply_swap(self, state: QueensState, i: int, j: int) -> None:
        if i == j:
            return
        delta = self.swap_delta(state, i, j)
        cfg = state.config
        n = self._n
        vi, vj = int(cfg[i]), int(cfg[j])
        state.diag_counts[vi - i + n - 1] -= 1
        state.diag_counts[vj - j + n - 1] -= 1
        state.diag_counts[vj - i + n - 1] += 1
        state.diag_counts[vi - j + n - 1] += 1
        state.anti_counts[vi + i] -= 1
        state.anti_counts[vj + j] -= 1
        state.anti_counts[vj + i] += 1
        state.anti_counts[vi + j] += 1
        cfg[i], cfg[j] = vj, vi
        state.cost += delta

    def variable_errors(self, state: QueensState) -> np.ndarray:
        n = self._n
        cfg = state.config
        diag_c = state.diag_counts[cfg - self._idx + n - 1]
        anti_c = state.anti_counts[cfg + self._idx]
        return (np.maximum(diag_c - 1, 0) + np.maximum(anti_c - 1, 0)).astype(
            np.float64
        )

    def attacked_pairs(self, config: np.ndarray) -> int:
        """Number of attacking queen pairs (an alternative metric)."""
        config = np.asarray(config, dtype=np.int64)
        diag, anti = self._tables(config)
        pairs = (diag * (diag - 1) // 2).sum() + (anti * (anti - 1) // 2).sum()
        return int(pairs)
