"""Number Partitioning (CSPLib prob049), from the C adaptive-search suite.

Split ``1..N`` (``N`` a multiple of 4) into two halves of ``N/2`` numbers
with equal sums and equal sums of squares.  Permutation model: the first
``N/2`` positions form set A.

Cost (as in the C ``partit.c`` benchmark, up to scaling): ``|sum(A) -
sum(B)| + |sumsq(A) - sumsq(B)|``.  Only swaps across the half boundary
change anything; incremental state keeps set A's sum and sum of squares.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.errors import ProblemError
from repro.problems.base import Problem, WalkState
from repro.problems.registry import register_problem

__all__ = ["PartitionProblem", "PartitionState"]


class PartitionState(WalkState):
    """Walk state caching set A's sum and sum of squares."""

    __slots__ = ("sum_a", "sumsq_a")

    def __init__(
        self, config: np.ndarray, cost: float, sum_a: int, sumsq_a: int
    ) -> None:
        super().__init__(config, cost)
        self.sum_a = sum_a
        self.sumsq_a = sumsq_a


@register_problem("partition")
class PartitionProblem(Problem):
    """Balanced two-way partition of ``1..n`` with equal sums and square sums."""

    family = "partition"
    value_base = 1

    def __init__(self, n: int = 40) -> None:
        if n < 8 or n % 4 != 0:
            raise ProblemError(
                f"partition needs n >= 8 with n % 4 == 0 (else unsolvable), got {n}"
            )
        self._n = int(n)
        self.half = self._n // 2
        self.target_sum = self._n * (self._n + 1) // 4
        self.target_sumsq = self._n * (self._n + 1) * (2 * self._n + 1) // 12

    @property
    def size(self) -> int:
        return self._n

    def spec(self) -> Mapping[str, Any]:
        return {"family": self.family, "n": self._n}

    def default_solver_parameters(self) -> dict[str, Any]:
        # the end-game needs strong shakes: small reset_limit with a large
        # reset_fraction turns resets into the main escape mechanism.
        return {
            "freeze_loc_min": 12,
            "reset_limit": 3,
            "reset_fraction": 0.8,
            "prob_select_loc_min": 0.3,
            "restart_limit": 10**9,
        }

    # ------------------------------------------------------------------
    def _half_sums(self, config: np.ndarray) -> tuple[int, int]:
        a = config[: self.half]
        return int(a.sum()), int((a * a).sum())

    def _cost_from_sums(self, sum_a: int, sumsq_a: int) -> float:
        # |sumA - sumB| = |2*sumA - total|; same for squares
        d_sum = abs(2 * sum_a - 2 * self.target_sum)
        d_sq = abs(2 * sumsq_a - 2 * self.target_sumsq)
        return float(d_sum + d_sq)

    def cost(self, config: np.ndarray) -> float:
        config = np.asarray(config, dtype=np.int64)
        return self._cost_from_sums(*self._half_sums(config))

    # ------------------------------------------------------------------
    def init_state(self, config: np.ndarray) -> PartitionState:
        self.check_configuration(config)
        cfg = np.array(config, dtype=np.int64, copy=True)
        sum_a, sumsq_a = self._half_sums(cfg)
        return PartitionState(cfg, self._cost_from_sums(sum_a, sumsq_a), sum_a, sumsq_a)

    def swap_deltas(self, state: PartitionState, i: int) -> np.ndarray:
        """Vectorized deltas; swaps within one half are free (delta 0)."""
        cfg = state.config
        n = self._n
        in_a_i = i < self.half
        in_a = np.arange(n) < self.half
        cross = in_a != in_a_i
        vi = int(cfg[i])
        # value entering A minus value leaving A, per candidate j
        gain = np.where(in_a_i, cfg - vi, vi - cfg)
        gain_sq = np.where(in_a_i, cfg * cfg - vi * vi, vi * vi - cfg * cfg)
        new_sum = state.sum_a + np.where(cross, gain, 0)
        new_sq = state.sumsq_a + np.where(cross, gain_sq, 0)
        new_cost = np.abs(2 * new_sum - 2 * self.target_sum) + np.abs(
            2 * new_sq - 2 * self.target_sumsq
        )
        deltas = new_cost.astype(np.float64) - state.cost
        deltas[i] = 0.0
        return deltas

    def swap_delta(self, state: PartitionState, i: int, j: int) -> float:
        if i == j:
            return 0.0
        return float(self.swap_deltas(state, i)[j])

    def apply_swap(self, state: PartitionState, i: int, j: int) -> None:
        if i == j:
            return
        cfg = state.config
        in_a_i, in_a_j = i < self.half, j < self.half
        vi, vj = int(cfg[i]), int(cfg[j])
        if in_a_i != in_a_j:
            leaving, entering = (vi, vj) if in_a_i else (vj, vi)
            state.sum_a += entering - leaving
            state.sumsq_a += entering * entering - leaving * leaving
        cfg[i], cfg[j] = vj, vi
        state.cost = self._cost_from_sums(state.sum_a, state.sumsq_a)

    def variable_errors(self, state: PartitionState) -> np.ndarray:
        """Larger values on the too-heavy side look worse.

        When set A is too heavy, its large members are the natural culprits
        (and symmetrically for B); weight each position by its value so the
        solver attacks high-leverage numbers first.  All-zero iff solved.
        """
        if state.cost == 0:
            return np.zeros(self._n, dtype=np.float64)
        cfg = state.config.astype(np.float64)
        in_a = np.arange(self._n) < self.half
        imbalance = (state.sum_a - self.target_sum) + (
            state.sumsq_a - self.target_sumsq
        )
        heavy_a = imbalance >= 0
        heavy_side = in_a if heavy_a else ~in_a
        errors = np.where(heavy_side, cfg, np.max(cfg) - cfg + 1)
        return errors

    # ------------------------------------------------------------------
    def partition_sets(self, config: np.ndarray) -> tuple[list[int], list[int]]:
        """The two number sets (sorted) encoded by ``config``."""
        cfg = np.asarray(config, dtype=np.int64)
        return (
            sorted(cfg[: self.half].tolist()),
            sorted(cfg[self.half :].tolist()),
        )
