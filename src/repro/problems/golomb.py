"""Golomb Ruler (CSPLib prob006) — a value-mode benchmark.

Place ``order`` marks on a ruler of length ``length`` (positions in
``0..length``) such that all pairwise distances are distinct.  A *perfect*
search instance fixes ``length`` at the known optimum (e.g. 6 for 4 marks,
11 for 5, 17 for 6, 25 for 7) and asks for a zero-cost placement.

This is not one of the paper's benchmarks; it exists to exercise the
value-move engine (:class:`repro.core.value_solver.ValueAdaptiveSearch`) on
a problem that genuinely is not a permutation — the C library models it the
same way.

Model: variables are the marks' positions; marks 0 is pinned to position 0
by a singleton domain (symmetry breaking).  Cost: for every distance
occurring ``c > 1`` times among the ``order*(order-1)/2`` pairwise
distances, add ``c - 1``; coinciding marks (distance 0) additionally count
as duplicates of each other.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.errors import ProblemError
from repro.problems.base import WalkState
from repro.problems.registry import register_problem
from repro.problems.value_base import ValueProblem

__all__ = ["GolombRulerProblem", "OPTIMAL_LENGTHS"]

#: optimal ruler lengths per mark count (OEIS A003022)
OPTIMAL_LENGTHS = {2: 1, 3: 3, 4: 6, 5: 11, 6: 17, 7: 25, 8: 34, 9: 44, 10: 55}


class GolombState(WalkState):
    """Walk state caching distance-occurrence counts."""

    __slots__ = ("counts",)

    def __init__(self, config: np.ndarray, cost: float, counts: np.ndarray) -> None:
        super().__init__(config, cost)
        #: ``counts[d]`` = pairs at distance ``d`` (``d = 0`` means collision)
        self.counts = counts


@register_problem("golomb")
class GolombRulerProblem(ValueProblem):
    """Golomb ruler with ``order`` marks on a ruler of length ``length``."""

    family = "golomb"

    def __init__(self, order: int = 5, length: int | None = None) -> None:
        if order < 2:
            raise ProblemError(f"golomb needs order >= 2, got {order}")
        if length is None:
            if order not in OPTIMAL_LENGTHS:
                raise ProblemError(
                    f"no stored optimal length for order {order}; pass length="
                )
            length = OPTIMAL_LENGTHS[order]
        if length < order - 1:
            raise ProblemError(
                f"length {length} cannot host {order} distinct marks"
            )
        self.order = int(order)
        self.length = int(length)

    @property
    def size(self) -> int:
        return self.order

    @property
    def name(self) -> str:
        return f"{self.family}-{self.order}x{self.length}"

    def spec(self) -> Mapping[str, Any]:
        return {"family": self.family, "order": self.order, "length": self.length}

    def default_solver_parameters(self) -> dict[str, Any]:
        return {
            "freeze_loc_min": 2,
            "reset_limit": max(2, self.order // 2),
            "reset_fraction": 0.5,
            "prob_select_loc_min": 0.5,
            "restart_limit": 10**9,
        }

    # ------------------------------------------------------------------
    def domain_values(self, var: int) -> np.ndarray:
        if var == 0:
            return np.zeros(1, dtype=np.int64)  # symmetry break: mark at 0
        return np.arange(0, self.length + 1, dtype=np.int64)

    # ------------------------------------------------------------------
    def _count_table(self, config: np.ndarray) -> np.ndarray:
        counts = np.zeros(self.length + 1, dtype=np.int64)
        for i in range(self.order):
            for j in range(i + 1, self.order):
                counts[abs(int(config[i]) - int(config[j]))] += 1
        return counts

    def _cost_from_counts(self, counts: np.ndarray) -> float:
        # distance 0 = coinciding marks: every such pair is a violation
        dup = int(np.maximum(counts[1:] - 1, 0).sum())
        return float(dup + int(counts[0]) * 2)

    def cost(self, config: np.ndarray) -> float:
        config = np.asarray(config, dtype=np.int64)
        return self._cost_from_counts(self._count_table(config))

    # ------------------------------------------------------------------
    def init_state(self, config: np.ndarray) -> GolombState:
        self.check_configuration(config)
        cfg = np.array(config, dtype=np.int64, copy=True)
        counts = self._count_table(cfg)
        return GolombState(cfg, self._cost_from_counts(counts), counts)

    def value_deltas(self, state: GolombState, var: int) -> np.ndarray:
        values = self.domain_values(var)
        current = int(state.config[var])
        counts = state.counts
        others = [int(v) for i, v in enumerate(state.config) if i != var]

        # removing var's current distances
        base_counts = counts.copy()
        removed_cost = 0.0
        for other in others:
            d = abs(current - other)
            c = base_counts[d]
            if d == 0:
                removed_cost -= 2
            elif c > 1:
                removed_cost -= 1
            base_counts[d] = c - 1

        deltas = np.zeros(len(values), dtype=np.float64)
        for idx, value in enumerate(values.tolist()):
            if value == current:
                continue
            delta = removed_cost
            touched: list[int] = []
            for other in others:
                d = abs(value - other)
                c = base_counts[d]
                if d == 0:
                    delta += 2
                elif c >= 1:
                    delta += 1
                base_counts[d] = c + 1
                touched.append(d)
            for d in touched:
                base_counts[d] -= 1
            deltas[idx] = delta
        return deltas

    def apply_assign(self, state: GolombState, var: int, value: int) -> None:
        current = int(state.config[var])
        if value == current:
            return
        counts = state.counts
        delta = 0.0
        for i, other in enumerate(state.config.tolist()):
            if i == var:
                continue
            d_old = abs(current - other)
            c = counts[d_old]
            if d_old == 0:
                delta -= 2
            elif c > 1:
                delta -= 1
            counts[d_old] = c - 1
            d_new = abs(value - other)
            c = counts[d_new]
            if d_new == 0:
                delta += 2
            elif c >= 1:
                delta += 1
            counts[d_new] = c + 1
        state.config[var] = value
        state.cost += delta

    def variable_errors(self, state: GolombState) -> np.ndarray:
        errors = np.zeros(self.order, dtype=np.float64)
        cfg = state.config.tolist()
        counts = state.counts
        for i in range(self.order):
            for j in range(i + 1, self.order):
                d = abs(cfg[i] - cfg[j])
                if d == 0 or counts[d] > 1:
                    errors[i] += 1.0
                    errors[j] += 1.0
        return errors

    # ------------------------------------------------------------------
    def marks(self, config: np.ndarray) -> list[int]:
        """Sorted mark positions."""
        return sorted(int(v) for v in config)
