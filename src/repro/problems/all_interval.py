"""All Interval Series (CSPLib prob007).

Find a permutation ``p`` of ``0 .. n-1`` such that the absolute differences
between adjacent elements ``|p[i+1] - p[i]|`` are all distinct (hence a
permutation of ``1 .. n-1``).

Cost: for every difference value occurring ``c > 1`` times among the ``n-1``
adjacent differences, add ``c - 1``; zero iff the series is all-interval.
A swap of two positions only changes the (at most four) differences adjacent
to them, so deltas are O(1).
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.errors import ProblemError
from repro.problems.base import Problem, WalkState
from repro.problems.registry import register_problem

__all__ = ["AllIntervalProblem", "AllIntervalState"]


class AllIntervalState(WalkState):
    """Walk state caching difference-value occurrence counts."""

    __slots__ = ("counts",)

    def __init__(self, config: np.ndarray, cost: float, counts: np.ndarray) -> None:
        super().__init__(config, cost)
        #: ``counts[v]`` = occurrences of absolute difference ``v`` (0 unused)
        self.counts = counts


@register_problem("all_interval")
class AllIntervalProblem(Problem):
    """All Interval Series of order ``n``."""

    family = "all_interval"

    def __init__(self, n: int = 14) -> None:
        if n < 2:
            raise ProblemError(f"all_interval needs n >= 2, got {n}")
        self._n = int(n)

    @property
    def size(self) -> int:
        return self._n

    def spec(self) -> Mapping[str, Any]:
        return {"family": self.family, "n": self._n}

    def default_solver_parameters(self) -> dict[str, Any]:
        # tuned on n = 12..20 (see benchmarks/bench_abl_tuning.py); plateaus
        # dominate this landscape so half of local-min moves are accepted.
        n = self._n
        return {
            "freeze_loc_min": 5,
            "reset_limit": max(4, n // 2),
            "reset_fraction": 0.25,
            "prob_select_loc_min": 0.5,
            "restart_limit": 10**9,
        }

    # ------------------------------------------------------------------
    def _count_table(self, config: np.ndarray) -> np.ndarray:
        counts = np.zeros(self._n, dtype=np.int64)
        diffs = np.abs(np.diff(config))
        np.add.at(counts, diffs, 1)
        return counts

    @staticmethod
    def _cost_from_counts(counts: np.ndarray) -> float:
        return float(np.maximum(counts - 1, 0).sum())

    def cost(self, config: np.ndarray) -> float:
        config = np.asarray(config, dtype=np.int64)
        return self._cost_from_counts(self._count_table(config))

    # ------------------------------------------------------------------
    def init_state(self, config: np.ndarray) -> AllIntervalState:
        self.check_configuration(config)
        cfg = np.array(config, dtype=np.int64, copy=True)
        counts = self._count_table(cfg)
        return AllIntervalState(cfg, self._cost_from_counts(counts), counts)

    def _affected_diff_positions(self, i: int, j: int) -> list[int]:
        """Indices d such that diff d (between positions d and d+1) changes."""
        candidates = {i - 1, i, j - 1, j}
        return sorted(d for d in candidates if 0 <= d < self._n - 1)

    def swap_delta(self, state: AllIntervalState, i: int, j: int) -> float:
        if i == j:
            return 0.0
        cfg = state.config
        counts = state.counts
        positions = self._affected_diff_positions(i, j)

        def value_at(k: int, swapped: bool) -> int:
            if swapped:
                if k == i:
                    return int(cfg[j])
                if k == j:
                    return int(cfg[i])
            return int(cfg[k])

        delta = 0.0
        touched: list[tuple[int, int]] = []
        for d in positions:
            ov = abs(value_at(d + 1, False) - value_at(d, False))
            nv = abs(value_at(d + 1, True) - value_at(d, True))
            if ov == nv:
                continue
            c = counts[ov]
            if c > 1:
                delta -= 1.0
            counts[ov] = c - 1
            touched.append((ov, -1))
            c = counts[nv]
            if c >= 1:
                delta += 1.0
            counts[nv] = c + 1
            touched.append((nv, +1))
        for v, change in reversed(touched):
            counts[v] -= change
        return delta

    def swap_deltas(self, state: AllIntervalState, i: int) -> np.ndarray:
        deltas = np.zeros(self._n, dtype=np.float64)
        for j in range(self._n):
            if j != i:
                deltas[j] = self.swap_delta(state, i, j)
        return deltas

    def apply_swap(self, state: AllIntervalState, i: int, j: int) -> None:
        if i == j:
            return
        delta = self.swap_delta(state, i, j)
        cfg = state.config
        counts = state.counts
        positions = self._affected_diff_positions(i, j)
        old = [abs(int(cfg[d + 1]) - int(cfg[d])) for d in positions]
        cfg[i], cfg[j] = cfg[j], cfg[i]
        new = [abs(int(cfg[d + 1]) - int(cfg[d])) for d in positions]
        for ov, nv in zip(old, new):
            counts[ov] -= 1
            counts[nv] += 1
        state.cost += delta

    def variable_errors(self, state: AllIntervalState) -> np.ndarray:
        """A position is erroneous when an adjacent difference is duplicated."""
        cfg = state.config
        diffs = np.abs(np.diff(cfg))
        dup = (state.counts[diffs] > 1).astype(np.float64)
        errors = np.zeros(self._n, dtype=np.float64)
        errors[:-1] += dup
        errors[1:] += dup
        return errors

    # ------------------------------------------------------------------
    def series_differences(self, config: np.ndarray) -> np.ndarray:
        """The adjacent absolute differences of a configuration."""
        return np.abs(np.diff(np.asarray(config, dtype=np.int64)))
