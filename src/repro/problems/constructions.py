"""Known-solution constructions for the benchmark problems.

Closed-form solutions serve two purposes:

- **paper-scale validation**: the cost functions can be checked at the
  paper's instance sizes (a Welch Costas array of order 22, a 100x100
  magic square) without running any search;
- **test oracles**: property tests start walks from known solutions.

Constructions implemented:

- :func:`welch_costas` — the Welch construction: for a prime ``p`` and a
  primitive root ``g`` of ``p``, the sequence ``g^1, g^2, ..., g^(p-1)``
  (mod ``p``) is a Costas permutation of order ``p - 1``.  This covers the
  paper's CAP orders 18 (p=19) and 22 (p=23).
- :func:`siamese_magic_square` — the Siamese method for odd orders.
- :func:`doubly_even_magic_square` — the complement-pattern construction
  for orders divisible by 4.
- :func:`magic_square` — dispatcher for any order except the impossible
  singly-even ones not covered here (n ≡ 2 mod 4 uses LUX; out of scope).
- :func:`zigzag_all_interval` — the lo/hi zig-zag all-interval series.
- :func:`explicit_queens` — the classical explicit n-queens solutions.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ProblemError

__all__ = [
    "is_prime",
    "primitive_root",
    "welch_costas",
    "siamese_magic_square",
    "doubly_even_magic_square",
    "magic_square",
    "zigzag_all_interval",
    "explicit_queens",
]


def is_prime(p: int) -> bool:
    """Deterministic trial-division primality (fine for table sizes)."""
    if p < 2:
        return False
    if p < 4:
        return True
    if p % 2 == 0:
        return False
    f = 3
    while f * f <= p:
        if p % f == 0:
            return False
        f += 2
    return True


def primitive_root(p: int) -> int:
    """Smallest primitive root modulo a prime ``p``."""
    if not is_prime(p):
        raise ProblemError(f"{p} is not prime")
    if p == 2:
        return 1
    phi = p - 1
    # distinct prime factors of phi
    factors = []
    m = phi
    f = 2
    while f * f <= m:
        if m % f == 0:
            factors.append(f)
            while m % f == 0:
                m //= f
        f += 1
    if m > 1:
        factors.append(m)
    for g in range(2, p):
        if all(pow(g, phi // q, p) != 1 for q in factors):
            return g
    raise ProblemError(f"no primitive root found for {p}")  # pragma: no cover


def welch_costas(order: int) -> np.ndarray:
    """A Costas permutation of ``order`` via the Welch construction.

    Requires ``order + 1`` prime.  Returns a 0-based permutation suitable
    for :class:`repro.problems.costas.CostasProblem` (``p[i]`` = row of the
    mark in column ``i``).
    """
    p = order + 1
    if not is_prime(p):
        raise ProblemError(
            f"Welch construction needs order + 1 prime; {p} is not prime"
        )
    g = primitive_root(p)
    # g^1 .. g^(p-1) mod p is a permutation of 1 .. p-1
    seq = np.empty(order, dtype=np.int64)
    value = 1
    for i in range(order):
        value = (value * g) % p
        seq[i] = value
    return seq - 1  # to 0-based rows


def siamese_magic_square(n: int) -> np.ndarray:
    """Odd-order magic square (Siamese / de la Loubère method), row-major."""
    if n < 3 or n % 2 == 0:
        raise ProblemError(f"Siamese method needs odd n >= 3, got {n}")
    grid = np.zeros((n, n), dtype=np.int64)
    row, col = 0, n // 2
    for value in range(1, n * n + 1):
        grid[row, col] = value
        new_row, new_col = (row - 1) % n, (col + 1) % n
        if grid[new_row, new_col]:
            new_row, new_col = (row + 1) % n, col
        row, col = new_row, new_col
    return grid.reshape(-1)


def doubly_even_magic_square(n: int) -> np.ndarray:
    """Magic square for ``n`` divisible by 4 (complement pattern), row-major."""
    if n < 4 or n % 4 != 0:
        raise ProblemError(f"doubly-even construction needs 4 | n, got {n}")
    grid = np.arange(1, n * n + 1, dtype=np.int64).reshape(n, n)
    rows = np.arange(n).reshape(-1, 1) % 4
    cols = np.arange(n).reshape(1, -1) % 4
    # complement cells where both (row mod 4) and (col mod 4) are in
    # {0, 3} or both in {1, 2}
    edge_r = (rows == 0) | (rows == 3)
    edge_c = (cols == 0) | (cols == 3)
    mask = (edge_r & edge_c) | (~edge_r & ~edge_c)
    grid[mask] = n * n + 1 - grid[mask]
    return grid.reshape(-1)


def magic_square(n: int) -> np.ndarray:
    """A magic square of order ``n`` (odd or doubly-even), row-major."""
    if n % 2 == 1:
        return siamese_magic_square(n)
    if n % 4 == 0:
        return doubly_even_magic_square(n)
    raise ProblemError(
        f"singly-even order {n} not supported (needs the LUX method)"
    )


def zigzag_all_interval(n: int) -> np.ndarray:
    """All-interval series by the lo/hi zig-zag construction."""
    if n < 2:
        raise ProblemError(f"all-interval needs n >= 2, got {n}")
    out = np.empty(n, dtype=np.int64)
    lo, hi = 0, n - 1
    for idx in range(n):
        if idx % 2 == 0:
            out[idx] = lo
            lo += 1
        else:
            out[idx] = hi
            hi -= 1
    return out


def explicit_queens(n: int) -> np.ndarray:
    """A closed-form n-queens solution (classical construction).

    Valid for every ``n >= 4`` (Hoffman-Loessi-Moore style case analysis
    on ``n mod 6``).  Returns ``p`` with ``p[col] = row``.
    """
    if n < 4:
        raise ProblemError(f"n-queens needs n >= 4, got {n}")
    if n % 2 == 1:
        # odd n: solve n-1 and put the extra queen in the far corner
        base = explicit_queens(n - 1)
        return np.concatenate([base, np.asarray([n - 1], dtype=np.int64)])
    if n % 6 != 2:
        # simple even case: rows 1,3,5,... then 0,2,4,... (0-based)
        rows = list(range(1, n, 2)) + list(range(0, n, 2))
        return np.asarray(rows, dtype=np.int64)
    # even n ≡ 2 (mod 6): Hoffman-Loessi-Moore case-2 placement
    cols = [0] * (n + 1)  # 1-based: column of the queen in each row
    half = n // 2
    for i in range(1, half + 1):
        shift = (2 * (i - 1) + half - 1) % n
        cols[i] = 1 + shift
        cols[n + 1 - i] = n - shift
    perm = np.zeros(n, dtype=np.int64)  # perm[col] = row, 0-based
    for row in range(1, n + 1):
        perm[cols[row] - 1] = row - 1
    return perm
