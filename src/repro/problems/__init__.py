"""Benchmark problems from the paper and from the C adaptive-search suite.

The paper evaluates four benchmarks:

- ``all_interval`` — All Interval Series, CSPLib prob007
- ``perfect_square`` — Perfect Square placement, CSPLib prob009
- ``magic_square`` — Magic Square, CSPLib prob019
- ``costas`` — the Costas Array Problem (CAP)

The original C distribution additionally ships ``queens``, ``alpha``,
``langford`` and ``partition`` (CSPLib prob049), which we include for extra
tests and ablation benchmarks.

Each problem implements the incremental walk-state protocol of
:class:`repro.problems.base.Problem`: vectorized swap deltas, O(1)-ish swap
application, and per-variable error projection.
"""

from repro.problems.base import ModelProblem, ModelWalkState, Problem, WalkState
from repro.problems.value_base import ValueModelProblem, ValueProblem
from repro.problems.declarative import (
    declarative_all_interval,
    declarative_magic_square,
    declarative_queens,
)
from repro.problems.golomb import GolombRulerProblem
from repro.problems.registry import available_problems, make_problem, register_problem
from repro.problems.costas import CostasProblem
from repro.problems.magic_square import MagicSquareProblem
from repro.problems.all_interval import AllIntervalProblem
from repro.problems.perfect_square import PerfectSquareProblem, SquarePackingInstance
from repro.problems.queens import QueensProblem
from repro.problems.alpha import AlphaProblem
from repro.problems.langford import LangfordProblem
from repro.problems.partition import PartitionProblem

__all__ = [
    "Problem",
    "WalkState",
    "ModelProblem",
    "ModelWalkState",
    "declarative_magic_square",
    "declarative_queens",
    "declarative_all_interval",
    "ValueProblem",
    "ValueModelProblem",
    "GolombRulerProblem",
    "make_problem",
    "register_problem",
    "available_problems",
    "CostasProblem",
    "MagicSquareProblem",
    "AllIntervalProblem",
    "PerfectSquareProblem",
    "SquarePackingInstance",
    "QueensProblem",
    "AlphaProblem",
    "LangfordProblem",
    "PartitionProblem",
]
