"""Langford's problem L(s, n) (CSPLib prob024).

Arrange ``s`` occurrences of each number ``1..n`` in a sequence of length
``s*n`` such that consecutive occurrences of ``k`` are exactly ``k+1``
positions apart (``k`` other numbers between them).  ``s = 2`` is the
classic pairing problem the C ``langford.c`` benchmark ships.

Permutation model: the configuration maps occurrence index to sequence
position — occurrences ``s*k .. s*k+s-1`` belong to number ``k+1``.  Error
of number ``m``: the sum over its consecutive (sorted) occurrence positions
of ``|gap - (m+1)|``; cost is the sum over numbers.  A swap touches at most
two numbers, so deltas are O(s log s).

For ``s = 2`` solutions exist iff ``n ≡ 0 or 3 (mod 4)`` (enforced by
default); for higher multiplicities existence is sparse (e.g. ``L(3, n)``
needs ``n ≡ 0, 1, 8`` mod 9-ish families) and is not checked — pass
whatever instance you want to probe.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.errors import ProblemError
from repro.problems.base import Problem, WalkState
from repro.problems.registry import register_problem

__all__ = ["LangfordProblem", "LangfordState"]


class LangfordState(WalkState):
    """Walk state caching the per-number error."""

    __slots__ = ("number_errors",)

    def __init__(
        self, config: np.ndarray, cost: float, number_errors: np.ndarray
    ) -> None:
        super().__init__(config, cost)
        self.number_errors = number_errors


@register_problem("langford")
class LangfordProblem(Problem):
    """Langford sequence L(s, n); ``s * n`` variables."""

    family = "langford"

    def __init__(
        self, n: int = 8, s: int = 2, require_solvable: bool = True
    ) -> None:
        if n < 1:
            raise ProblemError(f"langford needs n >= 1, got {n}")
        if s < 2:
            raise ProblemError(f"langford needs s >= 2 occurrences, got {s}")
        if s == 2 and require_solvable and n % 4 not in (0, 3):
            raise ProblemError(
                f"L(2, {n}) has no solution (need n % 4 in {{0, 3}}); "
                "pass require_solvable=False to build it anyway"
            )
        self._n = int(n)
        self._s = int(s)

    @property
    def order(self) -> int:
        """The number of values ``n`` (the instance has ``s*n`` variables)."""
        return self._n

    @property
    def multiplicity(self) -> int:
        """Occurrences per number ``s``."""
        return self._s

    @property
    def size(self) -> int:
        return self._s * self._n

    @property
    def name(self) -> str:
        if self._s == 2:
            return f"{self.family}-{self._n}"
        return f"{self.family}-L({self._s},{self._n})"

    def spec(self) -> Mapping[str, Any]:
        return {"family": self.family, "n": self._n, "s": self._s}

    def default_solver_parameters(self) -> dict[str, Any]:
        return {
            "freeze_loc_min": 2,
            "reset_limit": max(1, self._n // 2),
            "reset_fraction": 0.3,
            "prob_select_loc_min": 0.5,
            "restart_limit": 10**9,
        }

    # ------------------------------------------------------------------
    def _error_of_positions(self, positions: np.ndarray, number: int) -> float:
        """Error of 0-based ``number`` given its occurrence positions."""
        ordered = np.sort(positions)
        required = number + 2
        return float(np.abs(np.diff(ordered) - required).sum())

    def _number_errors(self, config: np.ndarray) -> np.ndarray:
        grouped = config.reshape(self._n, self._s)
        ordered = np.sort(grouped, axis=1)
        required = (np.arange(self._n) + 2).reshape(-1, 1)
        return np.abs(np.diff(ordered, axis=1) - required).sum(axis=1).astype(
            np.float64
        )

    def cost(self, config: np.ndarray) -> float:
        config = np.asarray(config, dtype=np.int64)
        return float(self._number_errors(config).sum())

    # ------------------------------------------------------------------
    def init_state(self, config: np.ndarray) -> LangfordState:
        self.check_configuration(config)
        cfg = np.array(config, dtype=np.int64, copy=True)
        errors = self._number_errors(cfg)
        return LangfordState(cfg, float(errors.sum()), errors)

    def _error_of(self, cfg: np.ndarray, number: int) -> float:
        s = self._s
        return self._error_of_positions(cfg[s * number : s * number + s], number)

    def swap_delta(self, state: LangfordState, i: int, j: int) -> float:
        if i == j:
            return 0.0
        ni, nj = i // self._s, j // self._s
        if ni == nj:
            return 0.0  # swapping a number's own occurrences changes nothing
        cfg = state.config
        cfg[i], cfg[j] = cfg[j], cfg[i]
        delta = (
            self._error_of(cfg, ni)
            - float(state.number_errors[ni])
            + self._error_of(cfg, nj)
            - float(state.number_errors[nj])
        )
        cfg[i], cfg[j] = cfg[j], cfg[i]
        return delta

    def swap_deltas(self, state: LangfordState, i: int) -> np.ndarray:
        deltas = np.zeros(self.size, dtype=np.float64)
        for j in range(self.size):
            if j != i:
                deltas[j] = self.swap_delta(state, i, j)
        return deltas

    def apply_swap(self, state: LangfordState, i: int, j: int) -> None:
        if i == j:
            return
        cfg = state.config
        cfg[i], cfg[j] = cfg[j], cfg[i]
        for number in {i // self._s, j // self._s}:
            old = float(state.number_errors[number])
            new = self._error_of(cfg, number)
            state.number_errors[number] = new
            state.cost += new - old

    def variable_errors(self, state: LangfordState) -> np.ndarray:
        """All occurrences of a number inherit its error."""
        return np.repeat(state.number_errors, self._s)

    # ------------------------------------------------------------------
    def sequence(self, config: np.ndarray) -> list[int]:
        """The sequence of numbers (1-based) in position order."""
        seq = [0] * self.size
        for occ in range(self.size):
            seq[int(config[occ])] = occ // self._s + 1
        return seq
