"""Declarative (model-defined) counterparts of benchmark problems.

These build the benchmarks purely from :class:`~repro.csp.model.Model`
constraints and expose them through :class:`~repro.problems.base.ModelProblem`
— no hand-written incremental cost code.  They exist to exercise and
regression-guard the incremental model-evaluation path (CSR incidence index,
vectorized ``swap_errors`` kernels, per-constraint error cache) against the
native implementations: same landscape, generic evaluation machinery.

Registered families (``make_problem``):

``magic_square_model``
    prob019 as ``2n + 2`` unit-coefficient :class:`LinearConstraint` rows.
``queens_model``
    n-queens as pairwise :class:`AbsoluteDifference` diagonal constraints
    (columns are all-different by permutation structure) — a dense binary
    constraint network stressing the incidence index.
``all_interval_model``
    prob007 via a single :class:`FunctionalConstraint` counting duplicate
    neighbour differences — exercises the correct-by-default ``swap_errors``
    fallback for black-box constraints.
"""

from __future__ import annotations

import numpy as np

from repro.csp.constraints import FunctionalConstraint, LinearConstraint
from repro.csp.domain import IntegerDomain
from repro.csp.global_constraints import AbsoluteDifference
from repro.csp.model import Model
from repro.errors import ProblemError
from repro.problems.base import ModelProblem
from repro.problems.registry import register_problem

__all__ = [
    "declarative_magic_square",
    "declarative_queens",
    "declarative_all_interval",
]


@register_problem("magic_square_model")
def declarative_magic_square(n: int = 4) -> ModelProblem:
    """Magic square as a permutation array plus ``2n + 2`` sum equations."""
    if n < 3:
        raise ProblemError(f"magic_square_model needs n >= 3, got {n}")
    model = Model(f"magic-{n}")
    cells = model.add_array("cell", n * n, IntegerDomain(1, n * n))
    model.declare_permutation(cells)
    magic = n * (n * n + 1) // 2
    ones = [1.0] * n
    for r in range(n):
        model.add_constraint(
            LinearConstraint(
                [r * n + c for c in range(n)], ones, "==", magic, name=f"row{r}"
            )
        )
    for c in range(n):
        model.add_constraint(
            LinearConstraint(
                [r * n + c for r in range(n)], ones, "==", magic, name=f"col{c}"
            )
        )
    model.add_constraint(
        LinearConstraint(
            [i * n + i for i in range(n)], ones, "==", magic, name="diag"
        )
    )
    model.add_constraint(
        LinearConstraint(
            [i * n + (n - 1 - i) for i in range(n)], ones, "==", magic, name="anti"
        )
    )
    # same tuning as the native MagicSquareProblem: identical landscape
    return ModelProblem(
        model,
        solver_defaults={
            "freeze_loc_min": 5,
            "reset_limit": max(5, n * n // 8),
            "reset_fraction": 0.25,
            "prob_select_loc_min": 0.5,
            "restart_limit": 10**9,
        },
    )


@register_problem("queens_model")
def declarative_queens(n: int = 8) -> ModelProblem:
    """n-queens: rows are a permutation, diagonals are |x_i - x_j| != |i - j|."""
    if n < 4:
        raise ProblemError(f"queens_model needs n >= 4, got {n}")
    model = Model(f"queens-{n}")
    rows = model.add_array("row", n, IntegerDomain(0, n - 1))
    model.declare_permutation(rows)
    for i in range(n):
        for j in range(i + 1, n):
            model.add_constraint(
                AbsoluteDifference(i, j, "!=", j - i, name=f"diag{i}_{j}")
            )
    # same tuning as the native QueensProblem
    return ModelProblem(
        model,
        solver_defaults={
            "freeze_loc_min": 2,
            "reset_limit": max(2, n // 10),
            "reset_fraction": 0.1,
            "prob_select_loc_min": 0.33,
            "restart_limit": 10**9,
        },
    )


@register_problem("all_interval_model")
def declarative_all_interval(n: int = 8) -> ModelProblem:
    """All-interval series via a black-box duplicate-difference counter.

    Deliberately modelled with one :class:`FunctionalConstraint` over the
    whole series, so the generic ``swap_errors`` fallback path (swap,
    re-evaluate, swap back) stays under test alongside the vectorized
    kernels.
    """
    if n < 3:
        raise ProblemError(f"all_interval_model needs n >= 3, got {n}")
    model = Model(f"all-interval-{n}")
    series = model.add_array("s", n, IntegerDomain(0, n - 1))
    model.declare_permutation(series)

    def duplicate_differences(values: np.ndarray) -> float:
        diffs = np.abs(np.diff(values))
        return float(diffs.size - np.unique(diffs).size)

    model.add_constraint(
        FunctionalConstraint(
            list(range(n)), duplicate_differences, name="distinct-diffs"
        )
    )
    # same tuning as the native AllIntervalProblem
    return ModelProblem(
        model,
        solver_defaults={
            "freeze_loc_min": 5,
            "reset_limit": max(4, n // 2),
            "reset_fraction": 0.25,
            "prob_select_loc_min": 0.5,
            "restart_limit": 10**9,
        },
    )
