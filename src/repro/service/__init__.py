"""Persistent warm-worker pool and concurrent solve-job scheduler.

The paper's independent multi-walk scheme assumes ``k`` dedicated engines
already sitting on cores; the plain process executor instead cold-spawns
``k`` processes per ``solve()`` call.  This package makes the engines
long-lived and the walker count a per-request scheduling decision:

- :class:`WorkerPool` — processes spawned once, each problem serialized to
  each worker once, walk tasks fed over per-worker queues;
- :class:`Job` / :class:`JobResult` — one solve request with seed, walker
  count, priority, deadline and a crash :class:`RetryPolicy`;
- :class:`SolverService` — multiplexes many concurrent jobs over the
  shared pool with per-job first-finisher-wins cancellation (generation
  tokens, so one job's win never kills another job's walks), queueing when
  jobs outnumber workers, retry-with-backoff on worker crashes, and
  deadline enforcement;
- :class:`ServiceMetrics` / :class:`MetricsSnapshot` — throughput, latency
  percentiles, queue wait, worker utilization, crash/retry counts.

Quickstart::

    from repro import make_problem
    from repro.service import SolverService

    with SolverService(n_workers=4) as service:
        handles = [
            service.submit(make_problem("costas", n=9), n_walkers=4, seed=s)
            for s in range(8)
        ]
        for handle in handles:
            print(handle.result().summary())
        print(service.snapshot().summary())
"""

from repro.service.batch import (
    JobSpec,
    build_jobs,
    format_results_table,
    load_jobs_file,
    run_specs,
)
from repro.service.jobs import Job, JobResult, JobStatus, RetryPolicy
from repro.service.metrics import MetricsSnapshot, ServiceMetrics
from repro.service.pool import CancelToken, WorkerPool
from repro.service.scheduler import JobHandle, SolverService
from repro.service.worker import GenerationCancelCallback, WalkTask

__all__ = [
    "CancelToken",
    "GenerationCancelCallback",
    "Job",
    "JobHandle",
    "JobResult",
    "JobSpec",
    "JobStatus",
    "MetricsSnapshot",
    "RetryPolicy",
    "ServiceMetrics",
    "SolverService",
    "WalkTask",
    "WorkerPool",
    "build_jobs",
    "format_results_table",
    "load_jobs_file",
    "run_specs",
]
