"""Persistent warm-worker pool.

``WorkerPool`` owns ``n_workers`` long-lived processes that are spawned
**once** and then fed walk tasks over per-worker inbox queues; results come
back on one shared outbox queue.  Compared with the cold process executor
(spawn ``k`` processes per solve, pickle the problem ``k`` times, tear
everything down), the pool amortizes process start-up and problem
serialization across an arbitrary number of jobs — the paper's model of
``k`` dedicated engines already sitting on cores.

The pool is mechanism only: it knows about processes, queues, problems and
cancel slots.  Policy (which task runs where and when, retries, deadlines)
lives in :class:`repro.service.scheduler.SolverService`.

Cancellation tokens
-------------------
The pool carries a fixed shared array of *cancel generations* (int64, one
entry per slot).  ``acquire_slot`` hands out ``(slot, generation)`` pairs
with strictly increasing generations per slot; ``cancel`` raises the slot's
shared entry to the token's generation.  Walks compare their token against
the shared entry (see :mod:`repro.service.worker`), so cancelling one job
can never affect the slot's next tenant.
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
import time
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import ParallelError
from repro.parallel.shm import SharedProblemStore
from repro.problems.base import Problem
from repro.service.worker import WalkTask, service_worker_main

__all__ = ["WorkerPool", "CancelToken"]


@dataclass(frozen=True)
class CancelToken:
    """A job's handle on one cancel slot (see module docstring)."""

    slot: int
    generation: int


@dataclass
class _WorkerHandle:
    """Parent-side bookkeeping for one worker process."""

    worker_id: int
    process: Any
    inbox: Any
    #: problem ids already shipped to this worker process
    known_problems: set[int] = field(default_factory=set)
    #: lifetime respawn count (for metrics / debugging)
    incarnation: int = 0


class WorkerPool:
    """A fixed-size pool of persistent solver workers.

    Parameters
    ----------
    n_workers:
        worker processes kept alive for the pool's lifetime.
    mp_context:
        multiprocessing start method (``None`` = platform default).
    cancel_slots:
        how many jobs can hold cancel tokens simultaneously; the scheduler
        queues jobs beyond this (64 is far above any sane concurrent-job
        count for a pool this size).
    """

    def __init__(
        self,
        n_workers: int,
        *,
        mp_context: str | None = None,
        cancel_slots: int = 64,
        use_shared_memory: bool = True,
    ) -> None:
        if n_workers < 1:
            raise ParallelError(f"n_workers must be >= 1, got {n_workers}")
        if cancel_slots < 1:
            raise ParallelError(
                f"cancel_slots must be >= 1, got {cancel_slots}"
            )
        self.n_workers = n_workers
        self._ctx = mp.get_context(mp_context)
        self._cancel_generations = self._ctx.RawArray("q", cancel_slots)
        #: per-worker iteration counters, written by the walks themselves
        #: (see GenerationCancelCallback) — the straggler detector's feed
        self.progress = self._ctx.RawArray("q", n_workers)
        self._free_slots = list(range(cancel_slots - 1, -1, -1))
        self._slot_generations = [0] * cancel_slots
        self.outbox: Any = self._ctx.Queue()
        self._problems: dict[int, Problem] = {}
        #: the exact inbox message shipped for each problem, built once at
        #: registration: a shared-memory manifest when available, else the
        #: problem pickled a single time — respawns and late workers reuse
        #: it instead of re-serializing (and the manifest is ~200 bytes)
        self._problem_msgs: dict[int, tuple] = {}
        self._problem_ids: dict[int, int] = {}  # id(problem) -> problem_id
        self._next_problem_id = 0
        self._shm_store = SharedProblemStore() if use_shared_memory else None
        self._workers: dict[int, _WorkerHandle] = {}
        self._closed = False
        for worker_id in range(n_workers):
            self._workers[worker_id] = self._spawn(worker_id)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, worker_id: int, incarnation: int = 0) -> _WorkerHandle:
        inbox = self._ctx.Queue()
        process = self._ctx.Process(
            target=service_worker_main,
            args=(
                worker_id, inbox, self.outbox, self._cancel_generations,
                self.progress,
            ),
            daemon=True,
            name=f"repro-service-worker-{worker_id}",
        )
        process.start()
        return _WorkerHandle(
            worker_id=worker_id,
            process=process,
            inbox=inbox,
            incarnation=incarnation,
        )

    def respawn(self, worker_id: int) -> None:
        """Replace a dead worker with a fresh process.

        The new process receives every registered problem again before any
        task, preserving the inbox-FIFO invariant that a problem always
        arrives before tasks referencing it.
        """
        self._check_open()
        old = self._workers[worker_id]
        if old.process.is_alive():  # pragma: no cover - defensive
            old.process.terminate()
        old.process.join(timeout=5.0)
        # the dead worker's inbox may hold queued messages; abandon it
        old.inbox.close()
        old.inbox.cancel_join_thread()
        self.progress[worker_id] = 0
        handle = self._spawn(worker_id, incarnation=old.incarnation + 1)
        self._workers[worker_id] = handle
        # reuse the registration-time payloads: nothing is re-pickled on a
        # respawn, and shared-memory problems re-ship as manifests only
        for problem_id, message in sorted(self._problem_msgs.items()):
            handle.inbox.put(message)
            handle.known_problems.add(problem_id)

    def shutdown(self, timeout: float = 10.0) -> None:
        """Stop every worker and release the queues (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for handle in self._workers.values():
            if handle.process.is_alive():
                try:
                    handle.inbox.put(("shutdown",))
                except (ValueError, OSError):  # pragma: no cover
                    pass
        deadline = time.monotonic() + timeout
        for handle in self._workers.values():
            remaining = max(0.1, deadline - time.monotonic())
            handle.process.join(timeout=remaining)
        for handle in self._workers.values():
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=5.0)
        for handle in self._workers.values():
            handle.inbox.close()
            handle.inbox.cancel_join_thread()
        self.outbox.close()
        self.outbox.cancel_join_thread()
        if self._shm_store is not None:
            # workers are gone; unlinking now cannot strand an attachment
            self._shm_store.close()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.shutdown()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.shutdown(timeout=1.0)
        except Exception:
            pass

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def worker_ids(self) -> list[int]:
        return sorted(self._workers)

    def is_alive(self, worker_id: int) -> bool:
        return self._workers[worker_id].process.is_alive()

    def live_processes(self) -> list[Any]:
        """Worker processes currently alive (empty after a clean shutdown)."""
        return [
            h.process for h in self._workers.values() if h.process.is_alive()
        ]

    def worker_pids(self) -> list[int]:
        """OS pids of the live worker processes (ops/debugging surface:
        ``repro service --pid-file`` writes these so an operator — or the
        signal-cleanup test — can verify the children were reaped)."""
        return [p.pid for p in self.live_processes() if p.pid is not None]

    def incarnation(self, worker_id: int) -> int:
        """How many times this worker slot has been respawned."""
        return self._workers[worker_id].incarnation

    # ------------------------------------------------------------------
    # problems
    # ------------------------------------------------------------------
    def register_problem(self, problem: Problem) -> int:
        """Idempotently register ``problem``; returns its pool-wide id.

        The pool keeps a strong reference, so ``id(problem)`` based
        deduplication is stable: submitting the same object repeatedly
        reuses the already-shipped copy in every worker.
        """
        self._check_open()
        existing = self._problem_ids.get(id(problem))
        if existing is not None:
            return existing
        # serialize exactly once, in the caller's frame, so a pickle error
        # surfaces here with the offending type named — not asynchronously
        # in the queue feeder thread as a crash-retry loop.  Preferred
        # form: a shared-memory manifest (workers attach, zero copies);
        # fallback: the pickled bytes, cached for respawns.
        message: tuple
        if self._shm_store is not None:
            try:
                manifest = self._shm_store.publish(problem)
                message = ("problem_shm", self._next_problem_id, manifest)
            except OSError:  # pragma: no cover - no usable /dev/shm
                self._shm_store = None
                message = ()
        if self._shm_store is None:
            try:
                payload = pickle.dumps(
                    problem, protocol=pickle.HIGHEST_PROTOCOL
                )
            except Exception as err:
                raise ParallelError(
                    f"problem {type(problem).__name__!r} is not picklable "
                    f"and cannot be shipped to pool workers: {err}"
                ) from err
            message = ("problem_bytes", self._next_problem_id, payload)
        problem_id = self._next_problem_id
        self._next_problem_id += 1
        self._problems[problem_id] = problem
        self._problem_msgs[problem_id] = message
        self._problem_ids[id(problem)] = problem_id
        for handle in self._workers.values():
            handle.inbox.put(message)
            handle.known_problems.add(problem_id)
        return problem_id

    # ------------------------------------------------------------------
    # tasks and cancellation
    # ------------------------------------------------------------------
    def send_task(self, worker_id: int, task: WalkTask) -> None:
        self._check_open()
        self._workers[worker_id].inbox.put(("walk", task))

    def acquire_slot(self) -> Optional[CancelToken]:
        """Take a cancel slot, or ``None`` when all are in use."""
        self._check_open()
        if not self._free_slots:
            return None
        slot = self._free_slots.pop()
        self._slot_generations[slot] += 1
        return CancelToken(slot=slot, generation=self._slot_generations[slot])

    def release_slot(self, token: CancelToken) -> None:
        """Return a slot to the free list.

        Safe even while stale walks of the token's job are still draining:
        the next ``acquire_slot`` on this slot bumps the generation past
        every cancel ever issued for previous tenants.
        """
        self._free_slots.append(token.slot)

    def cancel(self, token: CancelToken) -> None:
        """Cancel every in-flight walk holding ``token`` (idempotent)."""
        if self._cancel_generations[token.slot] < token.generation:
            self._cancel_generations[token.slot] = token.generation

    def is_cancelled(self, token: CancelToken) -> bool:
        return self._cancel_generations[token.slot] >= token.generation

    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise ParallelError("worker pool is shut down")
