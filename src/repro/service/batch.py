"""Batch front-end: jobs files and result tables for ``repro service``.

A jobs file is JSON — either a list of job objects or ``{"jobs": [...]}``:

.. code-block:: json

    [
      {"family": "costas", "params": {"n": 9}, "walkers": 4, "seed": 1},
      {"family": "magic_square", "params": {"n": 5}, "repeat": 4,
       "priority": 1, "deadline": 30.0}
    ]

``repeat`` expands one spec into that many identical jobs (seeds shift by
the repeat index so the copies are independent).  Specs of the same family
and parameters share one :class:`Problem` instance, so the pool serializes
each distinct instance to each worker only once no matter how many jobs
reference it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.core.config import AdaptiveSearchConfig
from repro.errors import ParallelError
from repro.service.jobs import Job, JobResult
from repro.service.metrics import MetricsSnapshot
from repro.service.scheduler import SolverService
from repro.problems.registry import make_problem

__all__ = [
    "JobSpec",
    "load_jobs_file",
    "build_jobs",
    "run_specs",
    "format_results_table",
]

_SPEC_KEYS = {
    "family", "params", "walkers", "seed", "priority", "deadline", "repeat",
}


@dataclass(frozen=True)
class JobSpec:
    """One line of a jobs file (before expansion into jobs)."""

    family: str
    params: Mapping[str, Any] = field(default_factory=dict)
    walkers: int = 1
    seed: int | None = None
    priority: int = 0
    deadline: float | None = None
    repeat: int = 1

    def __post_init__(self) -> None:
        if self.walkers < 1:
            raise ParallelError(f"walkers must be >= 1, got {self.walkers}")
        if self.repeat < 1:
            raise ParallelError(f"repeat must be >= 1, got {self.repeat}")
        object.__setattr__(self, "params", dict(self.params))

    @property
    def label(self) -> str:
        if not self.params:
            return self.family
        inner = ",".join(f"{k}={v}" for k, v in sorted(self.params.items()))
        return f"{self.family}({inner})"


def load_jobs_file(path: str | Path) -> list[JobSpec]:
    """Parse a jobs file; raises :class:`ParallelError` on malformed input."""
    try:
        raw = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as err:
        raise ParallelError(f"cannot read jobs file {path}: {err}") from None
    except json.JSONDecodeError as err:
        raise ParallelError(f"jobs file {path} is not valid JSON: {err}") from None
    if isinstance(raw, Mapping):
        raw = raw.get("jobs")
    if not isinstance(raw, list) or not raw:
        raise ParallelError(
            f"jobs file {path} must hold a non-empty list of job objects"
        )
    specs = []
    for index, entry in enumerate(raw):
        if not isinstance(entry, Mapping):
            raise ParallelError(f"job #{index} is not an object: {entry!r}")
        if "family" not in entry:
            raise ParallelError(f"job #{index} is missing 'family'")
        unknown = set(entry) - _SPEC_KEYS
        if unknown:
            raise ParallelError(
                f"job #{index} has unknown key(s): {sorted(unknown)}"
            )
        specs.append(JobSpec(**entry))
    return specs


def build_jobs(
    specs: Sequence[JobSpec],
    *,
    config: AdaptiveSearchConfig | None = None,
) -> list[tuple[JobSpec, Job]]:
    """Expand specs into jobs, sharing problem instances across duplicates."""
    problems: dict[tuple[str, tuple[tuple[str, Any], ...]], Any] = {}
    jobs: list[tuple[JobSpec, Job]] = []
    for spec in specs:
        key = (spec.family, tuple(sorted(spec.params.items())))
        problem = problems.get(key)
        if problem is None:
            problem = make_problem(spec.family, **spec.params)
            problems[key] = problem
        for copy in range(spec.repeat):
            seed = None if spec.seed is None else spec.seed + copy
            jobs.append(
                (
                    spec,
                    Job(
                        problem=problem,
                        n_walkers=spec.walkers,
                        seed=seed,
                        config=config,
                        priority=spec.priority,
                        deadline=spec.deadline,
                    ),
                )
            )
    return jobs


def run_specs(
    service: SolverService,
    specs: Sequence[JobSpec],
    *,
    config: AdaptiveSearchConfig | None = None,
    timeout: float | None = None,
) -> list[tuple[JobSpec, JobResult]]:
    """Run every expanded job concurrently on ``service``."""
    pairs = build_jobs(specs, config=config)
    results = service.run_jobs([job for _, job in pairs], timeout=timeout)
    return [(spec, result) for (spec, _), result in zip(pairs, results)]


def format_results_table(
    rows: Sequence[tuple[JobSpec, JobResult]],
    snapshot: MetricsSnapshot | None = None,
) -> str:
    """Human-readable per-job table plus the service summary line."""
    header = (
        f"{'job':>4}  {'problem':<26} {'walkers':>7}  {'status':<9} "
        f"{'winner':>6}  {'queue ms':>9}  {'latency ms':>10}  {'retries':>7}"
    )
    lines = [header, "-" * len(header)]
    for spec, result in rows:
        winner = (
            str(result.winner.walk_id) if result.winner is not None else "-"
        )
        lines.append(
            f"{result.job_id:>4}  {spec.label:<26.26} "
            f"{result.n_walkers:>7}  {result.status.value:<9} "
            f"{winner:>6}  {result.queue_wait * 1e3:>9.1f}  "
            f"{result.latency * 1e3:>10.1f}  {result.retries:>7}"
        )
    if snapshot is not None:
        lines.append("")
        lines.append(snapshot.summary())
    return "\n".join(lines)
