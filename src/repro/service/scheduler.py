"""The concurrent solve-job scheduler.

``SolverService`` multiplexes many concurrent multi-walk solve jobs over
one shared :class:`~repro.service.pool.WorkerPool`:

- every submitted :class:`~repro.service.jobs.Job` is expanded into
  per-walk tasks tagged with the job's cancel token;
- tasks are dispatched to idle workers in priority order, interleaved by
  walk index within a priority class, so when jobs outnumber workers every
  job keeps at least its first walk moving instead of head-of-line blocking
  (the oversubscription policy: queueing is unbounded, width is
  time-shared);
- the first solved walk of a job wins: the scheduler raises that job's
  cancel generation (other jobs' walks are untouched — see
  :mod:`repro.service.worker`), completes the job immediately and recycles
  the slot while losing walks drain in the background;
- a crashed walk (exception payload or dead worker process) is retried
  with exponential backoff under the job's :class:`RetryPolicy`; dead
  workers are respawned; when the retry budget runs out the job fails;
- per-job deadlines force-cancel overdue jobs.

All scheduling state is owned by one background thread; clients interact
through thread-safe :class:`JobHandle` futures.
"""

from __future__ import annotations

import heapq
import itertools
import pickle
import threading
import time
from collections import deque
from typing import Any, Optional, Sequence

import numpy as np

from repro.core.config import AdaptiveSearchConfig
from repro.core.termination import TerminationReason
from repro.errors import ParallelError
from repro.parallel.results import WalkOutcome
from repro.problems.base import Problem
from repro.service.jobs import Job, JobResult, JobStatus, RetryPolicy
from repro.service.metrics import MetricsSnapshot, ServiceMetrics
from repro.service.pool import CancelToken, WorkerPool
from repro.service.worker import WalkTask
from repro.telemetry.events import JobDispatch, JobFinish, JobSubmit
from repro.telemetry.recorder import (
    Recorder,
    epoch_of_monotonic,
    get_recorder,
)
from repro.util.rng import SeedLike

__all__ = ["JobHandle", "SolverService"]


class JobHandle:
    """Future-style handle on a submitted job (thread-safe)."""

    def __init__(self, job_id: int, service: "SolverService") -> None:
        self.job_id = job_id
        self._service = service
        self._event = threading.Event()
        self._result: Optional[JobResult] = None
        self._status = JobStatus.PENDING

    @property
    def status(self) -> JobStatus:
        return self._status

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> JobResult:
        """Block until the job completes; raises on timeout."""
        if not self._event.wait(timeout):
            raise ParallelError(
                f"timed out after {timeout}s waiting for job {self.job_id}"
            )
        assert self._result is not None
        return self._result

    def cancel(self) -> None:
        """Request cancellation (no-op if the job already finished)."""
        self._service._request_cancel(self.job_id)

    # called from the scheduler thread only
    def _complete(self, result: JobResult) -> None:
        self._result = result
        self._status = result.status
        self._event.set()


class _JobState:
    """Scheduler-thread-private bookkeeping for one job."""

    __slots__ = (
        "job", "job_id", "seq", "handle", "problem_id", "token", "retry",
        "seeds", "submitted_at", "first_dispatch_at", "deadline_at",
        "outcomes", "outstanding", "winner", "retries", "crashes", "error",
        "trace",
    )

    def __init__(
        self,
        job: Job,
        job_id: int,
        seq: int,
        handle: JobHandle,
        retry: RetryPolicy,
        submitted_at: float,
    ) -> None:
        self.job = job
        self.job_id = job_id
        self.seq = seq
        self.handle = handle
        self.retry = retry
        self.problem_id: int | None = None
        self.token: CancelToken | None = None
        self.seeds = job.walk_seed_sequences()
        self.submitted_at = submitted_at
        self.first_dispatch_at: float | None = None
        self.deadline_at = (
            submitted_at + job.deadline if job.deadline is not None else None
        )
        self.outcomes: dict[int, WalkOutcome] = {}
        self.outstanding: set[int] = set(range(len(self.seeds)))
        self.winner: WalkOutcome | None = None
        self.retries = 0
        self.crashes = 0
        self.error: str | None = None
        self.trace = job.trace


def _outcome_from_payload(walk_id: int, payload: dict[str, Any]) -> WalkOutcome:
    return WalkOutcome(
        walk_id=walk_id,
        solved=payload["solved"],
        cost=payload["cost"],
        iterations=payload["iterations"],
        wall_time=payload["wall_time"],
        reason=TerminationReason[payload["reason"]],
        config=(
            np.asarray(payload["config"], dtype=np.int64)
            if payload["config"] is not None
            else None
        ),
    )


class SolverService:
    """Schedules concurrent solve jobs over a persistent worker pool.

    Parameters
    ----------
    n_workers:
        size of the owned pool (ignored when ``pool`` is given).
    pool:
        an existing :class:`WorkerPool` to borrow; the caller keeps
        ownership (and shuts it down) in that case.
    mp_context / cancel_slots:
        forwarded to the owned pool.
    poll_every:
        iterations between cancel-token polls inside walks.
    retry_policy:
        default crash policy for jobs that do not carry their own.
    tick:
        scheduler heartbeat in seconds: the granularity of deadline
        enforcement, crash detection and backoff wake-ups (results are
        reaped as fast as they arrive regardless).
    recorder:
        telemetry recorder for dispatch/finish events and spans; defaults
        to the process recorder (disabled unless configured).  Passing an
        explicit recorder also shares its metrics registry with the
        service's :class:`ServiceMetrics`, unifying the two.
    chaos:
        optional :class:`~repro.chaos.plan.FaultPlan`; when set, every
        dispatch asks the plan for a walk fault to ride inside the task
        (``None`` costs one attribute check per dispatch).
    """

    def __init__(
        self,
        n_workers: int | None = None,
        *,
        pool: WorkerPool | None = None,
        mp_context: str | None = None,
        cancel_slots: int = 64,
        poll_every: int = 64,
        retry_policy: RetryPolicy | None = None,
        tick: float = 0.005,
        recorder: Recorder | None = None,
        chaos: Any = None,
    ) -> None:
        if pool is None and (n_workers is None or n_workers < 1):
            raise ParallelError(
                f"n_workers must be >= 1 when no pool is given, got {n_workers}"
            )
        if poll_every < 1:
            raise ParallelError(f"poll_every must be >= 1, got {poll_every}")
        if tick <= 0:
            raise ParallelError(f"tick must be > 0, got {tick}")
        self._pool = pool
        self._owns_pool = pool is None
        self._pool_kwargs = {
            "mp_context": mp_context, "cancel_slots": cancel_slots,
        }
        self.n_workers = pool.n_workers if pool is not None else int(n_workers)  # type: ignore[arg-type]
        self.poll_every = poll_every
        self.retry_policy = retry_policy or RetryPolicy()
        self.tick = tick
        self.chaos = chaos
        if chaos is not None:
            chaos.arm()

        self._lock = threading.Lock()
        self._thread: threading.Thread | None = None
        self._inbox: deque[tuple[Any, ...]] = deque()
        self._job_counter = itertools.count()
        self._started = False
        self._shutdown_requested = False
        self._closed = False
        self.recorder = recorder if recorder is not None else get_recorder()
        # an explicitly instrumented service shares its recorder's metrics
        # registry; otherwise the metrics stay private to this service so
        # concurrent services in one process never merge their counters
        self.metrics = ServiceMetrics(
            self.n_workers,
            registry=recorder.registry if recorder is not None else None,
        )

        # scheduler-thread-private state
        self._jobs: dict[int, _JobState] = {}
        self._pending: list[tuple[tuple[int, int], int]] = []  # (key, job_id)
        self._ready: list[tuple[tuple[int, int, int], int, int]] = []
        self._delayed: list[tuple[float, tuple[int, int, int], int, int]] = []
        self._idle: set[int] = set()
        #: worker -> (job_id, walk_id, dispatched_at, job_label, walk_label)
        #: where the labels are cluster-scope ids when the job is traced
        self._in_flight: dict[int, tuple[int, int, float, int, int]] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "SolverService":
        """Spawn the pool (if owned) and the scheduler thread (idempotent)."""
        with self._lock:
            if self._closed:
                raise ParallelError("service is shut down")
            if self._started:
                return self
            if self._pool is None:
                self._pool = WorkerPool(self.n_workers, **self._pool_kwargs)
            self._idle = set(self._pool.worker_ids)
            self._thread = threading.Thread(
                target=self._run, name="repro-solver-service", daemon=True
            )
            self._started = True
            self._thread.start()
        return self

    def shutdown(
        self, *, wait_jobs: bool = True, timeout: float | None = 60.0
    ) -> None:
        """Stop the service; with ``wait_jobs`` outstanding jobs finish
        first, otherwise they complete as CANCELLED (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            started = self._started
        if started:
            self._shutdown_requested = True
            self._inbox.append(("shutdown", wait_jobs))
            assert self._thread is not None
            self._thread.join(timeout=timeout)
            if self._thread.is_alive():  # pragma: no cover - defensive
                raise ParallelError("scheduler thread failed to stop in time")
        if self._owns_pool and self._pool is not None:
            self._pool.shutdown()

    def __enter__(self) -> "SolverService":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # client surface
    # ------------------------------------------------------------------
    def submit(
        self,
        problem: Problem,
        n_walkers: int = 1,
        seed: SeedLike = None,
        *,
        config: AdaptiveSearchConfig | None = None,
        priority: int = 0,
        deadline: float | None = None,
        retry: RetryPolicy | None = None,
        seeds: Sequence[np.random.SeedSequence] | None = None,
    ) -> JobHandle:
        """Submit one solve job; returns immediately with a handle."""
        return self.submit_job(
            Job(
                problem=problem,
                n_walkers=n_walkers,
                seed=seed,
                seeds=seeds,
                config=config,
                priority=priority,
                deadline=deadline,
                retry=retry,
            )
        )

    def submit_job(self, job: Job) -> JobHandle:
        with self._lock:
            if self._closed:
                raise ParallelError("service is shut down")
        if not self._started:
            self.start()
        # fail fast in the caller's frame: an un-picklable problem would
        # otherwise surface asynchronously (queue feeder thread) and read
        # like a worker crash-retry loop instead of a usage error
        try:
            pickle.dumps(job.problem, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as err:
            raise ParallelError(
                f"problem {type(job.problem).__name__!r} is not picklable "
                f"and cannot be shipped to pool workers: {err}"
            ) from err
        job_id = next(self._job_counter)
        handle = JobHandle(job_id, self)
        self.metrics.record_submit()
        recorder = self.recorder
        if recorder.enabled:
            ctx = job.trace
            recorder.emit(
                JobSubmit(
                    trace_id=ctx.trace_id if ctx is not None else "",
                    job_id=(
                        ctx.job_id
                        if ctx is not None and ctx.job_id >= 0
                        else job_id
                    ),
                    n_walkers=job.n_walkers,
                    problem=getattr(
                        job.problem, "name", type(job.problem).__name__
                    ),
                )
            )
        self._inbox.append(("submit", job, job_id, handle, time.monotonic()))
        return handle

    def solve(
        self,
        problem: Problem,
        n_walkers: int = 1,
        seed: SeedLike = None,
        *,
        timeout: float | None = None,
        **kwargs: Any,
    ) -> JobResult:
        """Submit and block until the job completes."""
        return self.submit(problem, n_walkers, seed, **kwargs).result(timeout)

    def run_jobs(
        self, jobs: Sequence[Job], *, timeout: float | None = None
    ) -> list[JobResult]:
        """Run many jobs concurrently; results in submission order."""
        handles = [self.submit_job(job) for job in jobs]
        return [handle.result(timeout) for handle in handles]

    def snapshot(self) -> MetricsSnapshot:
        return self.metrics.snapshot()

    @property
    def pool(self) -> WorkerPool | None:
        """The underlying worker pool (``None`` before :meth:`start`)."""
        return self._pool

    def walk_progress(self) -> list[dict[str, Any]]:
        """Iteration progress of every in-flight walk (cluster-scope ids
        when the job carries a trace context).  Snapshot-cheap: reads the
        shared progress array the walks already write between cancel
        polls.  Safe to call from any thread."""
        pool = self._pool
        if pool is None:
            return []
        now = time.monotonic()
        entries: list[dict[str, Any]] = []
        try:
            flights = list(self._in_flight.items())
        except RuntimeError:  # pragma: no cover - resized mid-iteration
            return []
        for worker_id, entry in flights:
            _, _, dispatched_at, job_label, walk_label = entry
            entries.append(
                {
                    "job_id": job_label,
                    "walk_id": walk_label,
                    "iterations": int(pool.progress[worker_id]),
                    "elapsed": now - dispatched_at,
                }
            )
        return entries

    def _request_cancel(self, job_id: int) -> None:
        self._inbox.append(("cancel", job_id))

    # ------------------------------------------------------------------
    # scheduler thread
    # ------------------------------------------------------------------
    def _run(self) -> None:
        draining = False
        try:
            while True:
                draining = self._drain_inbox() or draining
                now = time.monotonic()
                self._promote_delayed(now)
                self._activate_pending()
                self._check_deadlines(now)
                self._check_workers()
                self._dispatch()
                if draining and not self._jobs and not self._inbox:
                    return
                self._reap()
        except Exception:  # pragma: no cover - defensive: fail fast, loudly
            import traceback

            error = traceback.format_exc()
            for state in list(self._jobs.values()):
                state.error = error
                self._finish_job(state, JobStatus.FAILED, time.monotonic())
            raise

    def _drain_inbox(self) -> bool:
        """Process client messages; returns True once shutdown was seen."""
        draining = False
        while self._inbox:
            message = self._inbox.popleft()
            kind = message[0]
            if kind == "submit":
                _, job, job_id, handle, submitted_at = message
                state = _JobState(
                    job, job_id, job_id, handle,
                    job.retry or self.retry_policy, submitted_at,
                )
                self._jobs[job_id] = state
                heapq.heappush(
                    self._pending, ((-job.priority, state.seq), job_id)
                )
            elif kind == "cancel":
                state = self._jobs.get(message[1])
                if state is not None:
                    if state.token is not None:
                        self._pool.cancel(state.token)  # type: ignore[union-attr]
                    self._finish_job(
                        state, JobStatus.CANCELLED, time.monotonic()
                    )
            elif kind == "shutdown":
                draining = True
                if not message[1]:  # wait_jobs=False: cancel everything
                    for state in list(self._jobs.values()):
                        if state.token is not None:
                            self._pool.cancel(state.token)  # type: ignore[union-attr]
                        self._finish_job(
                            state, JobStatus.CANCELLED, time.monotonic()
                        )
        return draining

    def _activate_pending(self) -> None:
        """Give queued jobs a cancel slot and enqueue their walk tasks."""
        pool = self._pool
        assert pool is not None
        while self._pending:
            (key, job_id) = self._pending[0]
            state = self._jobs.get(job_id)
            if state is None or state.token is not None:
                heapq.heappop(self._pending)  # cancelled or already active
                continue
            token = pool.acquire_slot()
            if token is None:
                return  # every slot busy; stay queued
            heapq.heappop(self._pending)
            state.token = token
            state.problem_id = pool.register_problem(state.job.problem)
            priority = -state.job.priority
            for walk_id in range(len(state.seeds)):
                heapq.heappush(
                    self._ready,
                    ((priority, walk_id, state.seq), job_id, walk_id),
                )

    def _promote_delayed(self, now: float) -> None:
        while self._delayed and self._delayed[0][0] <= now:
            _, key, job_id, walk_id = heapq.heappop(self._delayed)
            heapq.heappush(self._ready, (key, job_id, walk_id))

    def _dispatch(self) -> None:
        pool = self._pool
        assert pool is not None
        while self._idle and self._ready:
            key, job_id, walk_id = heapq.heappop(self._ready)
            state = self._jobs.get(job_id)
            if state is None or state.token is None:
                continue  # job finished while this task was queued
            worker_id = self._idle.pop()
            now = time.monotonic()
            recorder = self.recorder
            ctx = state.trace
            # cluster-scope ids when the job carries a trace context (a net
            # job is a single-walk local job whose *cluster* walk id lives
            # in the context), local ids otherwise
            walk_label = (
                ctx.walk_id if ctx is not None and ctx.walk_id >= 0 else walk_id
            )
            job_label = (
                ctx.job_id if ctx is not None and ctx.job_id >= 0 else job_id
            )
            task_trace = (
                ctx.for_job(job_label).for_walk(walk_label)
                if ctx is not None and recorder.enabled
                else None
            )
            fault = (
                self.chaos.walk_fault(walk_label, job_label)
                if self.chaos is not None
                else None
            )
            pool.progress[worker_id] = 0
            pool.send_task(
                worker_id,
                WalkTask(
                    job_id=job_id,
                    walk_id=walk_id,
                    problem_id=state.problem_id,  # type: ignore[arg-type]
                    config=state.job.config,
                    seed=state.seeds[walk_id],
                    slot=state.token.slot,
                    generation=state.token.generation,
                    poll_every=self.poll_every,
                    trace=task_trace,
                    milestone_every=recorder.milestone_every,
                    fault=fault,
                ),
            )
            self._in_flight[worker_id] = (
                job_id, walk_id, now, job_label, walk_label,
            )
            if state.first_dispatch_at is None:
                state.first_dispatch_at = now
            self.metrics.record_dispatch()
            if recorder.enabled:
                recorder.emit(
                    JobDispatch(
                        trace_id=ctx.trace_id if ctx is not None else "",
                        job_id=job_label,
                        walk_id=walk_label,
                        worker=worker_id,
                    )
                )

    def _check_deadlines(self, now: float) -> None:
        for state in list(self._jobs.values()):
            if state.deadline_at is not None and now >= state.deadline_at:
                if state.token is not None:
                    self._pool.cancel(state.token)  # type: ignore[union-attr]
                self._finish_job(state, JobStatus.TIMED_OUT, now)

    def _check_workers(self) -> None:
        pool = self._pool
        assert pool is not None
        for worker_id in pool.worker_ids:
            if pool.is_alive(worker_id):
                continue
            entry = self._in_flight.pop(worker_id, None)
            self._idle.discard(worker_id)
            pool.respawn(worker_id)
            self.metrics.record_respawn()
            self._idle.add(worker_id)
            if entry is None:
                continue  # died idle: nothing to retry
            job_id, walk_id, dispatched_at = entry[0], entry[1], entry[2]
            self._handle_crash(
                job_id,
                walk_id,
                busy_time=time.monotonic() - dispatched_at,
                error=f"worker process {worker_id} died while running "
                f"walk {walk_id} of job {job_id}",
            )

    def _reap(self) -> None:
        """Pull walk reports from the pool outbox (one blocking poll, then
        everything already queued)."""
        import queue as queue_mod

        pool = self._pool
        assert pool is not None
        block = True
        while True:
            try:
                message = pool.outbox.get(timeout=self.tick if block else 0)
            except queue_mod.Empty:
                return
            block = False
            kind, worker_id, job_id, walk_id, payload = message
            if kind != "result":  # pragma: no cover - protocol guard
                continue
            entry = self._in_flight.pop(worker_id, None)
            busy_time = (
                time.monotonic() - entry[2] if entry is not None else 0.0
            )
            self._idle.add(worker_id)
            if self.recorder.enabled and "telemetry" in payload:
                # worker-side trace records, shipped home via the outbox
                self.recorder.ingest(payload["telemetry"])
            if "error" in payload:
                self._handle_crash(
                    job_id, walk_id, busy_time=busy_time,
                    error=payload["error"],
                )
                continue
            state = self._jobs.get(job_id)
            stale = state is None or walk_id not in state.outstanding
            self.metrics.record_walk_completed(busy_time, stale=stale)
            if stale:
                continue
            assert state is not None
            outcome = _outcome_from_payload(walk_id, payload)
            state.outcomes[walk_id] = outcome
            state.outstanding.discard(walk_id)
            now = time.monotonic()
            if outcome.solved and state.winner is None:
                state.winner = outcome
                self._pool.cancel(state.token)  # type: ignore[arg-type,union-attr]
                self._finish_job(state, JobStatus.SOLVED, now)
            elif not state.outstanding:
                self._finish_job(state, JobStatus.UNSOLVED, now)

    # ------------------------------------------------------------------
    def _handle_crash(
        self, job_id: int, walk_id: int, *, busy_time: float, error: str
    ) -> None:
        state = self._jobs.get(job_id)
        if state is None:
            self.metrics.record_crash(busy_time, retried=False)
            return
        state.crashes += 1
        if state.retries < state.retry.max_retries:
            state.retries += 1
            self.metrics.record_crash(busy_time, retried=True)
            due = time.monotonic() + state.retry.delay(state.retries)
            key = (-state.job.priority, walk_id, state.seq)
            heapq.heappush(self._delayed, (due, key, job_id, walk_id))
        else:
            self.metrics.record_crash(busy_time, retried=False)
            state.error = error
            if state.token is not None:
                self._pool.cancel(state.token)  # type: ignore[union-attr]
            self._finish_job(state, JobStatus.FAILED, time.monotonic())

    def _finish_job(
        self, state: _JobState, status: JobStatus, now: float
    ) -> None:
        """Complete the handle, free the slot, forget the job.

        Losing walks may still be draining on workers; their late reports
        are counted as stale.  Slot recycling is immediately safe thanks to
        the generation tokens.
        """
        if state.job_id not in self._jobs:
            return  # already finished through another path
        del self._jobs[state.job_id]
        if state.token is not None:
            self._pool.release_slot(state.token)  # type: ignore[union-attr]
        queue_wait = (
            state.first_dispatch_at - state.submitted_at
            if state.first_dispatch_at is not None
            else now - state.submitted_at
        )
        solve_time = (
            now - state.first_dispatch_at
            if state.first_dispatch_at is not None
            else 0.0
        )
        latency = now - state.submitted_at
        result = JobResult(
            job_id=state.job_id,
            status=status,
            n_walkers=len(state.seeds),
            walks=[state.outcomes[k] for k in sorted(state.outcomes)],
            winner=state.winner,
            error=state.error,
            queue_wait=queue_wait,
            solve_time=solve_time,
            latency=latency,
            retries=state.retries,
            crashes=state.crashes,
        )
        self.metrics.record_job_finished(status, latency, queue_wait)
        recorder = self.recorder
        if recorder.enabled:
            ctx = state.trace
            trace_id = ctx.trace_id if ctx is not None else ""
            job_label = (
                ctx.job_id
                if ctx is not None and ctx.job_id >= 0
                else state.job_id
            )
            submitted_epoch = epoch_of_monotonic(state.submitted_at)
            recorder.emit_span(
                "job.queue_wait",
                start=submitted_epoch,
                duration=queue_wait,
                trace_id=trace_id,
                job_id=job_label,
            )
            recorder.emit_span(
                "job.total",
                start=submitted_epoch,
                duration=latency,
                trace_id=trace_id,
                job_id=job_label,
                status=status.value,
            )
            recorder.emit(
                JobFinish(
                    trace_id=trace_id,
                    job_id=job_label,
                    status=status.value,
                    latency=latency,
                    queue_wait=queue_wait,
                )
            )
        state.handle._complete(result)
