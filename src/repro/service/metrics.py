"""Service metrics: throughput, latency, queue wait, utilization, crashes.

Since the telemetry subsystem landed, ``ServiceMetrics`` is a *view* over
a :class:`repro.telemetry.MetricsRegistry` rather than a bag of private
counters: every figure lives in a registry instrument
(``service.jobs_submitted``, ``service.latency``, ...) so the same numbers
feed :meth:`snapshot`, heartbeat frames, Prometheus text rendering and the
``repro trace`` report.  The public API — ``record_*`` methods,
:meth:`snapshot`, :meth:`to_json`, the :class:`MetricsSnapshot` fields —
is unchanged from the pre-telemetry collector, and quantiles are still
exact ``np.percentile`` over a bounded observation window (the histogram
retains the same 16 384-observation ring the old collector used).

By default each ``ServiceMetrics`` owns a private registry (so concurrent
services in one process never bleed counters into each other); pass
``registry=`` to share one — e.g. the scheduler passes its recorder's
registry when the service is explicitly instrumented.

Worker utilization is measured as busy-time integral over wall time:
every dispatch->result interval adds to a busy-seconds accumulator, and
``utilization = busy_seconds / (n_workers * uptime)``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import asdict, dataclass

from repro.service.jobs import JobStatus
from repro.telemetry.metrics import MetricsRegistry

__all__ = ["MetricsSnapshot", "ServiceMetrics"]

#: retain at most this many per-job latency observations (ring buffer)
_MAX_OBSERVATIONS = 16_384

#: instruments are latency-scale histograms; share the default buckets but
#: pin the window so quantiles keep their historical semantics
_HISTOGRAM_KWARGS = {"window": _MAX_OBSERVATIONS}


@dataclass(frozen=True)
class MetricsSnapshot:
    """Immutable point-in-time view of the service counters."""

    uptime: float
    n_workers: int
    jobs_submitted: int
    jobs_completed: int
    jobs_solved: int
    jobs_unsolved: int
    jobs_failed: int
    jobs_cancelled: int
    jobs_timed_out: int
    jobs_in_flight: int
    peak_jobs_in_flight: int
    tasks_dispatched: int
    walks_completed: int
    stale_walks: int
    crashes: int
    retries: int
    worker_respawns: int
    throughput_jobs_per_s: float
    latency_mean: float
    latency_p50: float
    latency_p95: float
    queue_wait_mean: float
    worker_utilization: float

    def to_json(self) -> dict[str, float | int]:
        """JSON-safe dict of every counter (wire format of node heartbeats
        and the coordinator ``stats`` frame — plain built-in scalars only)."""
        return {
            key: (float(value) if isinstance(value, float) else int(value))
            for key, value in asdict(self).items()
        }

    def summary(self) -> str:
        return (
            f"service: {self.jobs_completed}/{self.jobs_submitted} jobs done "
            f"({self.jobs_solved} solved, {self.jobs_failed} failed, "
            f"{self.jobs_timed_out} timed out) in {self.uptime:.2f}s | "
            f"{self.throughput_jobs_per_s:.2f} jobs/s, "
            f"latency mean {self.latency_mean * 1e3:.1f}ms "
            f"p50 {self.latency_p50 * 1e3:.1f}ms "
            f"p95 {self.latency_p95 * 1e3:.1f}ms, "
            f"queue wait {self.queue_wait_mean * 1e3:.1f}ms | "
            f"{self.n_workers} workers at "
            f"{self.worker_utilization:.0%} utilization, "
            f"{self.crashes} crash(es), {self.retries} retried, "
            f"{self.worker_respawns} respawn(s)"
        )


class ServiceMetrics:
    """Registry-backed collector behind :class:`MetricsSnapshot`.

    Thread-safe: the instruments carry their own locks; the only composite
    update (in-flight count and its peak) takes the collector lock.
    """

    def __init__(
        self, n_workers: int, registry: MetricsRegistry | None = None
    ) -> None:
        self._lock = threading.Lock()
        self._started_at = time.monotonic()
        self.n_workers = n_workers
        self.registry = registry if registry is not None else MetricsRegistry()
        r = self.registry
        self._jobs_submitted = r.counter("service.jobs_submitted")
        self._jobs_in_flight = r.gauge("service.jobs_in_flight")
        self._peak_in_flight = r.gauge("service.peak_jobs_in_flight")
        self._tasks_dispatched = r.counter("service.tasks_dispatched")
        self._walks_completed = r.counter("service.walks_completed")
        self._stale_walks = r.counter("service.stale_walks")
        self._crashes = r.counter("service.crashes")
        self._retries = r.counter("service.retries")
        self._respawns = r.counter("service.worker_respawns")
        self._busy_seconds = r.counter("service.busy_seconds")
        self._by_status = {
            status: r.counter(f"service.jobs_{status.value}")
            for status in JobStatus
        }
        self._latency = r.histogram("service.latency", **_HISTOGRAM_KWARGS)
        self._queue_wait = r.histogram(
            "service.queue_wait", **_HISTOGRAM_KWARGS
        )

    # ------------------------------------------------------------------
    # recording (called from the scheduler thread)
    # ------------------------------------------------------------------
    def record_submit(self) -> None:
        with self._lock:
            self._jobs_submitted.inc()
            self._jobs_in_flight.inc()
            self._peak_in_flight.set_max(self._jobs_in_flight.value)

    def record_dispatch(self) -> None:
        self._tasks_dispatched.inc()

    def record_walk_completed(self, busy_time: float, stale: bool) -> None:
        self._walks_completed.inc()
        self._busy_seconds.inc(busy_time)
        if stale:
            self._stale_walks.inc()

    def record_crash(self, busy_time: float, retried: bool) -> None:
        self._crashes.inc()
        self._busy_seconds.inc(busy_time)
        if retried:
            self._retries.inc()

    def record_respawn(self) -> None:
        self._respawns.inc()

    def record_job_finished(
        self, status: JobStatus, latency: float, queue_wait: float
    ) -> None:
        with self._lock:
            self._jobs_in_flight.set(
                max(0.0, self._jobs_in_flight.value - 1.0)
            )
        self._by_status[status].inc()
        self._latency.observe(latency)
        self._queue_wait.observe(queue_wait)

    def to_json(self) -> dict[str, float | int]:
        """Shorthand for ``snapshot().to_json()``."""
        return self.snapshot().to_json()

    # ------------------------------------------------------------------
    def snapshot(self) -> MetricsSnapshot:
        uptime = max(time.monotonic() - self._started_at, 1e-9)
        completed = sum(
            int(self._by_status[s].value) for s in JobStatus if s.finished
        )
        return MetricsSnapshot(
            uptime=uptime,
            n_workers=self.n_workers,
            jobs_submitted=int(self._jobs_submitted.value),
            jobs_completed=completed,
            jobs_solved=int(self._by_status[JobStatus.SOLVED].value),
            jobs_unsolved=int(self._by_status[JobStatus.UNSOLVED].value),
            jobs_failed=int(self._by_status[JobStatus.FAILED].value),
            jobs_cancelled=int(self._by_status[JobStatus.CANCELLED].value),
            jobs_timed_out=int(self._by_status[JobStatus.TIMED_OUT].value),
            jobs_in_flight=int(self._jobs_in_flight.value),
            peak_jobs_in_flight=int(self._peak_in_flight.value),
            tasks_dispatched=int(self._tasks_dispatched.value),
            walks_completed=int(self._walks_completed.value),
            stale_walks=int(self._stale_walks.value),
            crashes=int(self._crashes.value),
            retries=int(self._retries.value),
            worker_respawns=int(self._respawns.value),
            throughput_jobs_per_s=completed / uptime,
            latency_mean=float(self._latency.mean),
            latency_p50=float(self._latency.p50),
            latency_p95=float(self._latency.p95),
            queue_wait_mean=float(self._queue_wait.mean),
            worker_utilization=min(
                1.0, self._busy_seconds.value / (self.n_workers * uptime)
            ),
        )
