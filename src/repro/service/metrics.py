"""Service metrics: throughput, latency, queue wait, utilization, crashes.

``ServiceMetrics`` is the mutable collector owned by the scheduler thread;
``snapshot()`` freezes it into an immutable :class:`MetricsSnapshot` that
can be read from any thread (a lock guards the handful of mutation points —
they are all O(1), so contention is irrelevant at solver time scales).

Worker utilization is measured as busy-time integral over wall time:
every dispatch->result interval adds to a busy-seconds accumulator, and
``utilization = busy_seconds / (n_workers * uptime)``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import asdict, dataclass

import numpy as np

from repro.service.jobs import JobStatus

__all__ = ["MetricsSnapshot", "ServiceMetrics"]

#: retain at most this many per-job latency observations (ring buffer)
_MAX_OBSERVATIONS = 16_384


@dataclass(frozen=True)
class MetricsSnapshot:
    """Immutable point-in-time view of the service counters."""

    uptime: float
    n_workers: int
    jobs_submitted: int
    jobs_completed: int
    jobs_solved: int
    jobs_unsolved: int
    jobs_failed: int
    jobs_cancelled: int
    jobs_timed_out: int
    jobs_in_flight: int
    peak_jobs_in_flight: int
    tasks_dispatched: int
    walks_completed: int
    stale_walks: int
    crashes: int
    retries: int
    worker_respawns: int
    throughput_jobs_per_s: float
    latency_mean: float
    latency_p50: float
    latency_p95: float
    queue_wait_mean: float
    worker_utilization: float

    def to_json(self) -> dict[str, float | int]:
        """JSON-safe dict of every counter (wire format of node heartbeats
        and the coordinator ``stats`` frame — plain built-in scalars only)."""
        return {
            key: (float(value) if isinstance(value, float) else int(value))
            for key, value in asdict(self).items()
        }

    def summary(self) -> str:
        return (
            f"service: {self.jobs_completed}/{self.jobs_submitted} jobs done "
            f"({self.jobs_solved} solved, {self.jobs_failed} failed, "
            f"{self.jobs_timed_out} timed out) in {self.uptime:.2f}s | "
            f"{self.throughput_jobs_per_s:.2f} jobs/s, "
            f"latency mean {self.latency_mean * 1e3:.1f}ms "
            f"p50 {self.latency_p50 * 1e3:.1f}ms "
            f"p95 {self.latency_p95 * 1e3:.1f}ms, "
            f"queue wait {self.queue_wait_mean * 1e3:.1f}ms | "
            f"{self.n_workers} workers at "
            f"{self.worker_utilization:.0%} utilization, "
            f"{self.crashes} crash(es), {self.retries} retried, "
            f"{self.worker_respawns} respawn(s)"
        )


class ServiceMetrics:
    """Mutable counters behind :class:`MetricsSnapshot` (thread-safe)."""

    def __init__(self, n_workers: int) -> None:
        self._lock = threading.Lock()
        self._started_at = time.monotonic()
        self.n_workers = n_workers
        self.jobs_submitted = 0
        self.jobs_in_flight = 0
        self.peak_jobs_in_flight = 0
        self.tasks_dispatched = 0
        self.walks_completed = 0
        self.stale_walks = 0
        self.crashes = 0
        self.retries = 0
        self.worker_respawns = 0
        self.busy_seconds = 0.0
        self._by_status: dict[JobStatus, int] = {s: 0 for s in JobStatus}
        self._latencies: list[float] = []
        self._queue_waits: list[float] = []

    # ------------------------------------------------------------------
    # recording (called from the scheduler thread)
    # ------------------------------------------------------------------
    def record_submit(self) -> None:
        with self._lock:
            self.jobs_submitted += 1
            self.jobs_in_flight += 1
            self.peak_jobs_in_flight = max(
                self.peak_jobs_in_flight, self.jobs_in_flight
            )

    def record_dispatch(self) -> None:
        with self._lock:
            self.tasks_dispatched += 1

    def record_walk_completed(self, busy_time: float, stale: bool) -> None:
        with self._lock:
            self.walks_completed += 1
            self.busy_seconds += busy_time
            if stale:
                self.stale_walks += 1

    def record_crash(self, busy_time: float, retried: bool) -> None:
        with self._lock:
            self.crashes += 1
            self.busy_seconds += busy_time
            if retried:
                self.retries += 1

    def record_respawn(self) -> None:
        with self._lock:
            self.worker_respawns += 1

    def record_job_finished(
        self, status: JobStatus, latency: float, queue_wait: float
    ) -> None:
        with self._lock:
            self.jobs_in_flight = max(0, self.jobs_in_flight - 1)
            self._by_status[status] += 1
            if len(self._latencies) >= _MAX_OBSERVATIONS:
                self._latencies.pop(0)
                self._queue_waits.pop(0)
            self._latencies.append(latency)
            self._queue_waits.append(queue_wait)

    def to_json(self) -> dict[str, float | int]:
        """Shorthand for ``snapshot().to_json()``."""
        return self.snapshot().to_json()

    # ------------------------------------------------------------------
    def snapshot(self) -> MetricsSnapshot:
        with self._lock:
            uptime = max(time.monotonic() - self._started_at, 1e-9)
            completed = sum(
                self._by_status[s] for s in JobStatus if s.finished
            )
            latencies = np.asarray(self._latencies, dtype=np.float64)
            waits = np.asarray(self._queue_waits, dtype=np.float64)
            return MetricsSnapshot(
                uptime=uptime,
                n_workers=self.n_workers,
                jobs_submitted=self.jobs_submitted,
                jobs_completed=completed,
                jobs_solved=self._by_status[JobStatus.SOLVED],
                jobs_unsolved=self._by_status[JobStatus.UNSOLVED],
                jobs_failed=self._by_status[JobStatus.FAILED],
                jobs_cancelled=self._by_status[JobStatus.CANCELLED],
                jobs_timed_out=self._by_status[JobStatus.TIMED_OUT],
                jobs_in_flight=self.jobs_in_flight,
                peak_jobs_in_flight=self.peak_jobs_in_flight,
                tasks_dispatched=self.tasks_dispatched,
                walks_completed=self.walks_completed,
                stale_walks=self.stale_walks,
                crashes=self.crashes,
                retries=self.retries,
                worker_respawns=self.worker_respawns,
                throughput_jobs_per_s=completed / uptime,
                latency_mean=float(latencies.mean()) if latencies.size else 0.0,
                latency_p50=(
                    float(np.percentile(latencies, 50)) if latencies.size else 0.0
                ),
                latency_p95=(
                    float(np.percentile(latencies, 95)) if latencies.size else 0.0
                ),
                queue_wait_mean=float(waits.mean()) if waits.size else 0.0,
                worker_utilization=min(
                    1.0, self.busy_seconds / (self.n_workers * uptime)
                ),
            )
