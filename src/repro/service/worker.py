"""Child-process side of the persistent worker pool.

A service worker is a long-lived process running :func:`service_worker_main`:
it blocks on its private inbox queue and reacts to three message kinds,

``("problem", problem_id, problem)``
    cache the (already unpickled) problem instance — each problem crosses
    the process boundary once per worker, not once per walk;
``("problem_bytes", problem_id, payload)``
    same, but the parent ships the bytes it pickled once at registration
    (so respawns never re-serialize) and the worker unpickles;
``("problem_shm", problem_id, manifest)``
    zero-copy form: attach the named shared-memory segment published by
    the pool and rebuild the problem over read-only views of it (see
    :mod:`repro.parallel.shm`); the attachment is held until shutdown;
``("walk", task)``
    run one Adaptive Search walk and report
    ``("result", worker_id, job_id, walk_id, payload)`` on the shared
    outbox;
``("shutdown",)``
    exit the loop.

Cancellation uses a shared *generation* array instead of the one-shot event
of the plain process executor: every job holds a ``(slot, generation)``
token, a walk polls ``cancel_generations[slot] >= generation`` between
iterations, and cancelling a job raises the slot to that job's generation.
Generations only grow, so a slot can be handed to the next job immediately —
a stale walk of the previous tenant still sees itself cancelled while the
new tenant (holding a strictly larger generation) keeps running.  One job's
win therefore never kills another job's walks.

Progress: alongside the cancel poll, the walk publishes its iteration
count into the shared ``progress`` array (one int64 slot per worker).  The
scheduler snapshots it for free, node agents ship it in heartbeats, and
the coordinator's straggler detector feeds on it — all without any extra
IPC on the hot path.

Chaos: a :class:`~repro.chaos.plan.WalkFault` can ride inside the task
(``task.fault``); the worker then raises, hard-exits, or sleeps per
iteration exactly as instructed.  The spec travels with the task, so walk
faults work identically across process boundaries and need no global
state in the child.
"""

from __future__ import annotations

import os
import pickle
import time
from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from repro.core.config import AdaptiveSearchConfig
from repro.core.solver import AdaptiveSearch
from repro.telemetry.events import TraceContext

__all__ = [
    "WalkTask",
    "GenerationCancelCallback",
    "walk_payload",
    "service_worker_main",
]


@dataclass(frozen=True)
class WalkTask:
    """One unit of pool work: a single walk of one job.

    ``trace`` is ``None`` unless the scheduler is tracing this job, in
    which case the worker runs the walk under a ring-buffered telemetry
    recorder and ships the buffered records home inside the result payload
    (``payload["telemetry"]``) — the pool outbox doubles as the telemetry
    uplink, so no extra IPC machinery exists for tracing.

    ``fault`` is ``None`` unless a chaos plan targeted this dispatch (see
    module docstring).
    """

    job_id: int
    walk_id: int
    problem_id: int
    config: Optional[AdaptiveSearchConfig]
    seed: np.random.SeedSequence
    slot: int
    generation: int
    poll_every: int = 64
    trace: Optional[TraceContext] = None
    milestone_every: int = 0
    fault: Optional[Any] = None  # chaos WalkFault, picklable


class GenerationCancelCallback:
    """Cancels a walk when its job's cancel slot reaches its generation.

    The shared array is only polled every ``poll_every`` iterations — the
    scheme needs completion detection, not instantaneous preemption
    (same trade-off as the process executor's event poll).  When a shared
    ``progress`` array is supplied, the same poll publishes the walk's
    iteration count into ``progress[progress_index]`` — piggybacked, so
    progress reporting costs nothing between polls.
    """

    def __init__(
        self, cancel_generations: Any, slot: int, generation: int,
        poll_every: int = 64,
        progress: Any = None,
        progress_index: int = 0,
    ) -> None:
        if poll_every < 1:
            raise ValueError(f"poll_every must be >= 1, got {poll_every}")
        self.cancel_generations = cancel_generations
        self.slot = slot
        self.generation = generation
        self.poll_every = poll_every
        self.progress = progress
        self.progress_index = progress_index

    def on_iteration(self, info: Any) -> bool | None:
        if info.iteration % self.poll_every == 0:
            if self.progress is not None:
                self.progress[self.progress_index] = info.iteration
            if self.cancel_generations[self.slot] >= self.generation:
                return False
        return None


class _FaultCallback:
    """Applies an injected walk fault from inside the solver loop."""

    def __init__(self, fault: Any) -> None:
        self.fault = fault

    def on_iteration(self, info: Any) -> bool | None:
        fault = self.fault
        if fault.action == "slow":
            time.sleep(fault.iteration_delay)
            return None
        if info.iteration >= fault.at_iteration:
            if fault.action == "exit":
                os._exit(3)
            raise RuntimeError(
                f"chaos: injected walk crash at iteration {info.iteration}"
            )
        return None


def walk_payload(result: Any) -> dict[str, Any]:
    """Reduce a :class:`SolveResult` to the picklable walk-report dict.

    The configuration ships whether or not the walk solved —
    ``result.config`` is the best configuration *seen*, which is what
    graceful degradation (deadline expiry, partial cluster loss) returns
    to the client as best-so-far.
    """
    return {
        "solved": result.solved,
        "cost": result.cost,
        "iterations": result.stats.iterations,
        "wall_time": result.stats.wall_time,
        "reason": result.reason.name,
        "config": (
            result.config.tolist() if result.config is not None else None
        ),
    }


def service_worker_main(
    worker_id: int,
    inbox: Any,
    outbox: Any,
    cancel_generations: Any,
    progress: Any = None,
) -> None:
    """Run the worker loop until a shutdown message arrives.

    Every walk task produces exactly one result message; a walk that raises
    reports an ``{"error": traceback}`` payload and the worker *survives* —
    the retry decision belongs to the scheduler.  Only killing the process
    (or shutdown) ends the loop.
    """
    problems: dict[int, Any] = {}
    attachments: list[Any] = []
    while True:
        message = inbox.get()
        kind = message[0]
        if kind == "shutdown":
            for att in attachments:
                att.detach()
            break
        if kind == "problem":
            _, problem_id, problem = message
            problems[problem_id] = problem
            continue
        if kind == "problem_bytes":
            _, problem_id, payload = message
            problems[problem_id] = pickle.loads(payload)
            continue
        if kind == "problem_shm":
            from repro.parallel.shm import attach_problem

            _, problem_id, manifest = message
            att = attach_problem(manifest)
            attachments.append(att)
            problems[problem_id] = att.problem
            continue
        if kind != "walk":  # pragma: no cover - protocol guard
            continue
        task: WalkTask = message[1]
        try:
            fault = task.fault
            if fault is not None and fault.at_iteration <= 0:
                # pre-solve faults fire deterministically even for walks
                # whose budget is smaller than one callback interval
                if fault.action == "exit":
                    os._exit(3)
                if fault.action == "raise":
                    raise RuntimeError(
                        "chaos: injected walk crash before the first "
                        "iteration"
                    )
            problem = problems[task.problem_id]
            solver = AdaptiveSearch(task.config)
            callbacks: list[Any] = [
                GenerationCancelCallback(
                    cancel_generations, task.slot, task.generation,
                    task.poll_every,
                    progress=progress, progress_index=worker_id,
                )
            ]
            if fault is not None:
                callbacks.append(_FaultCallback(fault))
            ring = None
            if task.trace is not None:
                # traced walk: record telemetry into a bounded ring and
                # ship it home with the result (see WalkTask docstring)
                from repro.telemetry.recorder import Recorder
                from repro.telemetry.sinks import RingBufferSink
                from repro.telemetry.solver import TelemetryCallback

                ring = RingBufferSink()
                recorder = Recorder(
                    sinks=[ring],
                    proc=f"worker-{worker_id}",
                    milestone_every=task.milestone_every,
                )
                callbacks.append(
                    TelemetryCallback(
                        recorder,
                        trace_id=task.trace.trace_id,
                        job_id=task.trace.job_id,
                        walk_id=task.trace.walk_id,
                    )
                )
            result = solver.solve(
                problem, seed=task.seed, callbacks=callbacks
            )
            payload = walk_payload(result)
            if ring is not None:
                payload["telemetry"] = ring.drain()
        except Exception:
            import traceback

            payload = {"error": traceback.format_exc()}
        outbox.put(("result", worker_id, task.job_id, task.walk_id, payload))
