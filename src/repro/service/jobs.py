"""Job and result types of the solve service.

A :class:`Job` is one multi-walk solve request: a problem, a walker count,
a seed, and scheduling attributes (priority, deadline, retry policy).  The
service expands every job into per-walk tasks over the shared
:class:`~repro.service.pool.WorkerPool` and folds the walk reports back
into a :class:`JobResult`.

Walker count is a *job* attribute here, not a solver-constructor argument:
the same warm pool serves jobs of any width, so how many walks a request
gets is a per-request scheduling decision (cf. the SAT runtime-distribution
literature, where the useful degree of parallelism depends on the
instance's runtime distribution, not on the machine).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional, Sequence

import numpy as np

from repro.core.config import AdaptiveSearchConfig
from repro.errors import ParallelError
from repro.parallel.results import ParallelResult, WalkOutcome
from repro.parallel.seeding import walk_seeds
from repro.problems.base import Problem
from repro.telemetry.events import TraceContext
from repro.util.rng import SeedLike

__all__ = ["JobStatus", "RetryPolicy", "Job", "JobResult"]


class JobStatus(Enum):
    """Lifecycle of a solve job inside the service."""

    PENDING = "pending"  # queued, no walk dispatched yet
    RUNNING = "running"  # at least one walk dispatched
    SOLVED = "solved"  # a walk reached cost <= target
    UNSOLVED = "unsolved"  # every walk exhausted its budget
    FAILED = "failed"  # a walk crashed and the retry budget ran out
    CANCELLED = "cancelled"  # cancelled by the client
    TIMED_OUT = "timed_out"  # the job's deadline passed

    @property
    def finished(self) -> bool:
        return self not in (JobStatus.PENDING, JobStatus.RUNNING)


@dataclass(frozen=True)
class RetryPolicy:
    """How the service reacts to a crashed walk (exception or dead worker).

    ``max_retries`` crashes are retried per job; each retry is delayed by
    ``backoff * backoff_factor ** (retry - 1)`` seconds (exponential
    backoff, first retry after ``backoff``).  One more crash fails the job.
    """

    max_retries: int = 2
    backoff: float = 0.05
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ParallelError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff < 0:
            raise ParallelError(f"backoff must be >= 0, got {self.backoff}")
        if self.backoff_factor < 1.0:
            raise ParallelError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )

    def delay(self, retry: int) -> float:
        """Backoff before the ``retry``-th retry (1-based)."""
        if retry < 1:
            raise ParallelError(f"retry must be >= 1, got {retry}")
        return self.backoff * self.backoff_factor ** (retry - 1)


@dataclass
class Job:
    """One solve request submitted to the service.

    Parameters
    ----------
    problem:
        the instance to solve.  Submitting the *same object* across jobs
        lets the pool serialize it to each worker once.
    n_walkers:
        independent walks raced for this job (first finisher wins).
    seed:
        master seed; per-walk seeds are spawned exactly as in
        :func:`repro.parallel.seeding.walk_seeds`, so a pool job is
        trajectory-identical to the inline/process executors.
    seeds:
        explicit per-walk seed sequences, overriding ``seed`` (used by the
        harness to reproduce sequential trajectories bit-for-bit).
    config:
        solver configuration (problem defaults merge inside the worker).
    priority:
        larger runs earlier when the pool is oversubscribed (default 0).
    deadline:
        seconds after submission at which the job is force-cancelled.
    retry:
        crash policy; ``None`` uses the service default.
    trace:
        telemetry trace context; when set (and the service's recorder is
        enabled) the job's dispatches, walks and completion are stamped
        with this trace id — how a cluster-scope solve keeps one id across
        client, coordinator, agents and pool workers.
    """

    problem: Problem
    n_walkers: int = 1
    seed: SeedLike = None
    seeds: Optional[Sequence[np.random.SeedSequence]] = None
    config: Optional[AdaptiveSearchConfig] = None
    priority: int = 0
    deadline: Optional[float] = None
    retry: Optional[RetryPolicy] = None
    trace: Optional[TraceContext] = None

    def __post_init__(self) -> None:
        if self.n_walkers < 1:
            raise ParallelError(
                f"n_walkers must be >= 1, got {self.n_walkers}"
            )
        if self.deadline is not None and self.deadline <= 0:
            raise ParallelError(
                f"deadline must be > 0 seconds, got {self.deadline}"
            )
        if self.seeds is not None and len(self.seeds) != self.n_walkers:
            raise ParallelError(
                f"got {len(self.seeds)} explicit seeds for "
                f"{self.n_walkers} walkers"
            )

    def walk_seed_sequences(self) -> list[np.random.SeedSequence]:
        if self.seeds is not None:
            return list(self.seeds)
        return walk_seeds(self.n_walkers, self.seed)


@dataclass
class JobResult:
    """Everything the service knows about a finished job.

    Timing fields (all in seconds):

    ``queue_wait``
        submission -> first walk dispatched to a worker.
    ``solve_time``
        first dispatch -> completion (the warm-pool analogue of the
        process executor's measured wall time).
    ``latency``
        submission -> completion (what a client experiences).
    """

    job_id: int
    status: JobStatus
    n_walkers: int
    walks: list[WalkOutcome] = field(default_factory=list)
    winner: Optional[WalkOutcome] = None
    error: Optional[str] = None
    queue_wait: float = 0.0
    solve_time: float = 0.0
    latency: float = 0.0
    retries: int = 0
    crashes: int = 0

    @property
    def solved(self) -> bool:
        return self.status is JobStatus.SOLVED

    @property
    def config(self) -> Optional[np.ndarray]:
        return self.winner.config if self.winner is not None else None

    def to_parallel_result(self) -> ParallelResult:
        """View this job as a :class:`ParallelResult` (``executor="pool"``).

        ``wall_time`` maps to the in-pool solve time and ``elapsed_time`` to
        the client-observed latency, mirroring the process executor's
        winner-time / call-time split.
        """
        return ParallelResult(
            solved=self.solved,
            n_walkers=self.n_walkers,
            winner=self.winner,
            walks=list(self.walks),
            wall_time=self.solve_time,
            elapsed_time=self.latency,
            executor="pool",
        )

    def summary(self) -> str:
        if self.status is JobStatus.SOLVED:
            assert self.winner is not None
            status = f"SOLVED by walk {self.winner.walk_id}"
        else:
            status = self.status.value.upper()
        extra = ""
        if self.crashes:
            extra = f", {self.crashes} crash(es)/{self.retries} retried"
        return (
            f"job {self.job_id} x{self.n_walkers}: {status}, "
            f"queue {self.queue_wait * 1e3:.1f}ms, "
            f"latency {self.latency * 1e3:.1f}ms{extra}"
        )
