"""Result-cache dedup: canonical job hashing plus a bounded LRU with TTL.

Two solve requests are "the same job" when they would provably compute the
same thing: same registered problem factory, same parameters, same walker
count, same seed, and same solver configuration.  :func:`canonical_job_key`
reduces that tuple to a sha256 digest over a ``sort_keys`` JSON encoding,
so parameter *order* never matters — ``{"n": 64, "density": 0.5}`` and
``{"density": 0.5, "n": 64}`` collide by construction.

The gateway uses the digest twice:

- **in-flight coalescing** — a second identical submission attaches to the
  already-running gateway job instead of spawning a cluster job, across
  tenants (results carry no tenant data).  The digest also rides to the
  coordinator as the ``client_key``, so even a gateway restart between the
  two submissions cannot double-run the work (protocol-v4 idempotency).
- **completed-result caching** — :class:`ResultCache`, an ``OrderedDict``
  LRU bounded by entry count with per-entry TTL; an expired or evicted
  entry simply means the job runs again.

Unseeded submissions (``seed`` absent/None) are never cached or coalesced:
each run legitimately explores a different trajectory.
"""

from __future__ import annotations

import hashlib
import json
import time
from collections import OrderedDict
from typing import Any, Optional

from repro.errors import GatewayError

__all__ = ["CacheEntry", "ResultCache", "canonical_job_key"]


def canonical_job_key(
    problem: str,
    params: dict[str, Any],
    *,
    n_walkers: int,
    seed: int | None,
    config: dict[str, Any] | None = None,
) -> Optional[str]:
    """Canonical digest for a submission, or ``None`` when unseeded.

    Raises :class:`GatewayError` when ``params``/``config`` contain values
    JSON cannot encode — those came off the wire as JSON, so this only
    fires for programmatic misuse.
    """
    if seed is None:
        return None
    material = {
        "problem": problem,
        "params": params,
        "n_walkers": int(n_walkers),
        "seed": int(seed),
        "config": config or {},
    }
    try:
        encoded = json.dumps(
            material, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
    except (TypeError, ValueError) as err:
        raise GatewayError(f"job parameters are not JSON-encodable: {err}")
    return hashlib.sha256(encoded).hexdigest()


class CacheEntry:
    """One cached result payload with its insertion stamp."""

    __slots__ = ("payload", "stamp")

    def __init__(self, payload: Any, stamp: float) -> None:
        self.payload = payload
        self.stamp = stamp


class ResultCache:
    """Bounded LRU of completed job results keyed by canonical digest.

    Single-event-loop use, so no locking.  ``hits`` / ``misses`` feed the
    gateway's metrics counters.
    """

    def __init__(self, max_entries: int = 1024, ttl: float = 3600.0) -> None:
        if max_entries < 1:
            raise GatewayError(
                f"cache needs max_entries >= 1, got {max_entries}"
            )
        if ttl <= 0:
            raise GatewayError(f"cache needs ttl > 0, got {ttl}")
        self.max_entries = max_entries
        self.ttl = float(ttl)
        self._entries: OrderedDict[str, CacheEntry] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str, now: float | None = None) -> Optional[Any]:
        """The cached payload, refreshing recency, or ``None``."""
        now = time.monotonic() if now is None else now
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        if now - entry.stamp > self.ttl:
            del self._entries[key]
            self.expirations += 1
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry.payload

    def put(self, key: str, payload: Any, now: float | None = None) -> None:
        now = time.monotonic() if now is None else now
        self._entries[key] = CacheEntry(payload, now)
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    def stats(self) -> dict[str, int]:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "expirations": self.expirations,
        }
