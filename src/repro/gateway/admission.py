"""Admission control and automatic walker-count planning.

**Admission** keeps the gateway stable under overload by shedding the
lowest-priority work first.  Each priority class may fill a different
fraction of the global in-flight capacity — with the defaults and
``capacity=100``, ``batch`` traffic is refused beyond 50 in-flight jobs,
``standard`` beyond 80, and only ``premium`` may use the full 100.  Under
saturation the low classes therefore starve before the high ones feel any
pressure, which is exactly the shedding order the priority classes
promise.  Refusals come back as a structured decision the HTTP layer turns
into ``429 Too Many Requests`` with a ``Retry-After`` header.

**Circuit breaking** protects the gateway's own threads when the cluster
behind it is unreachable (leader died, failover in progress).  Submits
that would block on a dead coordinator instead fail fast with ``503`` and
a ``Retry-After`` hint; after ``reset_timeout`` a single half-open probe
is let through, and one success re-closes the breaker.

**Planning** answers "how many walkers should this job get?" when the
client does not say.  The paper's central result makes this a statistics
question: independent multi-walk speedup is ``E[T] / E[min_k]``, entirely
determined by the sequential runtime distribution.  The planner records
observed wall times per problem family, fits them with
:func:`repro.stats.best_fit`, and picks the largest ``k`` whose predicted
*efficiency* (speedup / k) stays above a floor — exponential-like families
(Costas) get many walkers, saturating families (shifted-exponential or
lognormal regimes) stop early where extra walkers would be wasted.
"""

from __future__ import annotations

import math
import time
from typing import Optional

from repro.autoscale import Predictor
from repro.errors import GatewayError
from repro.stats import best_fit, predicted_speedup

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "CircuitBreaker",
    "PredictivePlanner",
    "WalkerPlanner",
]

#: fraction of global capacity each priority class may occupy
DEFAULT_PRIORITY_FRACTIONS = {0: 0.5, 1: 0.8, 2: 1.0}


class AdmissionDecision:
    """Outcome of one admission check."""

    __slots__ = ("admitted", "reason", "retry_after")

    def __init__(
        self, admitted: bool, reason: str = "", retry_after: float = 1.0
    ) -> None:
        self.admitted = admitted
        self.reason = reason
        self.retry_after = retry_after

    def __bool__(self) -> bool:
        return self.admitted


class AdmissionController:
    """Priority-aware load shedding over a global in-flight budget.

    ``capacity`` is the total number of gateway jobs allowed in flight at
    once; ``priority_fractions`` maps each integer priority to the share
    of that capacity it may consume.  A class's effective limit is
    ``max(1, floor(capacity * fraction))`` so tiny capacities still admit
    one job per class.

    ``cost_capacity`` adds a second, finer budget in predicted
    *walker-seconds*: when the planner can estimate what a job will cost
    (``k x E[min_k]``), admission also refuses jobs whose predicted cost
    would push the in-flight total past the class's share of the budget.
    Job counts treat a 1-walker costas probe and a 64-walker saturated
    magic-square identically; cost shedding refuses the expensive one
    first.  Jobs with no prediction (cold families) only face the count
    check, so the cost budget can never starve an unlearned family.
    """

    def __init__(
        self,
        capacity: int = 64,
        priority_fractions: dict[int, float] | None = None,
        *,
        cost_capacity: float | None = None,
    ) -> None:
        if capacity < 1:
            raise GatewayError(f"capacity must be >= 1, got {capacity}")
        if cost_capacity is not None and cost_capacity <= 0:
            raise GatewayError(
                f"cost_capacity must be > 0, got {cost_capacity}"
            )
        self.capacity = capacity
        self.cost_capacity = cost_capacity
        fractions = dict(priority_fractions or DEFAULT_PRIORITY_FRACTIONS)
        for priority, fraction in fractions.items():
            if not 0.0 < fraction <= 1.0:
                raise GatewayError(
                    f"priority {priority} fraction must be in (0, 1], "
                    f"got {fraction}"
                )
        self.priority_fractions = fractions
        self.inflight = 0
        self.inflight_cost = 0.0
        self.shed = 0
        self.shed_by_cost = 0

    def limit_for(self, priority: int) -> int:
        fraction = self.priority_fractions.get(priority, 1.0)
        return max(1, math.floor(self.capacity * fraction))

    def cost_limit_for(self, priority: int) -> Optional[float]:
        if self.cost_capacity is None:
            return None
        fraction = self.priority_fractions.get(priority, 1.0)
        return self.cost_capacity * fraction

    def admit(
        self,
        priority: int,
        tenant_inflight: int,
        tenant_max_inflight: int,
        cost: float | None = None,
    ) -> AdmissionDecision:
        """Check the tenant quota, the class share, then (when both a cost
        budget and a prediction exist) the walker-second budget; does not
        reserve — call :meth:`acquire` after a positive decision."""
        if tenant_inflight >= tenant_max_inflight:
            return AdmissionDecision(
                False,
                f"tenant in-flight quota of {tenant_max_inflight} reached",
                retry_after=1.0,
            )
        if self.inflight >= self.limit_for(priority):
            self.shed += 1
            return AdmissionDecision(
                False,
                f"gateway at capacity for priority class {priority} "
                f"({self.inflight}/{self.limit_for(priority)} in flight)",
                retry_after=2.0,
            )
        cost_limit = self.cost_limit_for(priority)
        if (
            cost_limit is not None
            and cost is not None
            and self.inflight > 0
            and self.inflight_cost + cost > cost_limit
        ):
            # an empty gateway always admits: a single huge job must run
            # eventually, however expensive the prediction says it is
            self.shed += 1
            self.shed_by_cost += 1
            return AdmissionDecision(
                False,
                f"predicted cost {cost:.1f} walker-seconds exceeds the "
                f"priority-{priority} budget "
                f"({self.inflight_cost:.1f}/{cost_limit:.1f} in flight)",
                retry_after=2.0,
            )
        return AdmissionDecision(True)

    def acquire(self, cost: float = 0.0) -> None:
        self.inflight += 1
        self.inflight_cost += max(0.0, cost)

    def release(self, cost: float = 0.0) -> None:
        if self.inflight > 0:
            self.inflight -= 1
        self.inflight_cost = max(0.0, self.inflight_cost - max(0.0, cost))
        if self.inflight == 0:
            self.inflight_cost = 0.0  # no drift accumulation across idle


class CircuitBreaker:
    """Fail-fast guard between the gateway and an unreachable cluster.

    Classic three-state breaker:

    - **closed** — submits pass through; ``failure_threshold``
      consecutive cluster failures trip it open;
    - **open** — submits are refused immediately (the HTTP layer turns
      that into ``503`` + ``Retry-After``) so request threads never pile
      up blocking on a dead coordinator while failover is in progress;
    - **half-open** — after ``reset_timeout`` one probe request is let
      through; success re-closes the breaker, failure re-opens it for
      another full timeout.

    Only *cluster* failures (``NetError`` on submit) count — admission
    refusals and bad requests are the caller's problem, not the
    cluster's.  Not thread-safe by itself; the gateway calls it under its
    submit lock.
    """

    def __init__(
        self, *, failure_threshold: int = 3, reset_timeout: float = 5.0
    ) -> None:
        if failure_threshold < 1:
            raise GatewayError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_timeout <= 0:
            raise GatewayError(
                f"reset_timeout must be > 0, got {reset_timeout}"
            )
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.state = "closed"
        self.failures = 0  # consecutive, while closed
        self.trips = 0
        self.rejections = 0
        self._opened_at = 0.0
        self._probe_inflight = False

    def allow(self) -> bool:
        """May a request proceed to the cluster right now?"""
        if self.state == "closed":
            return True
        if self.state == "open":
            if time.monotonic() - self._opened_at >= self.reset_timeout:
                self.state = "half_open"
                self._probe_inflight = True
                return True
            self.rejections += 1
            return False
        # half_open: exactly one probe at a time
        if self._probe_inflight:
            self.rejections += 1
            return False
        self._probe_inflight = True
        return True

    def record_success(self) -> None:
        """The cluster answered: close (or keep closed) the breaker."""
        self.state = "closed"
        self.failures = 0
        self._probe_inflight = False

    def record_failure(self) -> None:
        """The cluster was unreachable; maybe trip open."""
        self._probe_inflight = False
        if self.state == "half_open":
            self._trip()
            return
        self.failures += 1
        if self.state == "closed" and self.failures >= self.failure_threshold:
            self._trip()

    def _trip(self) -> None:
        self.state = "open"
        self.failures = 0
        self.trips += 1
        self._opened_at = time.monotonic()

    @property
    def retry_after(self) -> float:
        """Seconds a refused client should wait before retrying."""
        if self.state != "open":
            return 1.0
        remaining = self.reset_timeout - (time.monotonic() - self._opened_at)
        return max(1.0, remaining)


class WalkerPlanner:
    """Pick a default walker count per problem family from runtime fits.

    Wall times of completed jobs are recorded per family; once
    ``min_samples`` exist, :func:`repro.stats.best_fit` characterizes the
    family's runtime distribution and the plan is the largest power-of-two
    ``k <= max_walkers`` whose predicted efficiency
    ``speedup(k) / k >= min_efficiency``.  Before enough evidence exists
    (or when fitting fails on degenerate samples) the plan is
    ``default_walkers``.
    """

    def __init__(
        self,
        *,
        default_walkers: int = 4,
        max_walkers: int = 64,
        min_samples: int = 8,
        min_efficiency: float = 0.5,
        max_samples: int = 512,
    ) -> None:
        if not 1 <= default_walkers <= max_walkers:
            raise GatewayError(
                f"need 1 <= default_walkers <= max_walkers, got "
                f"default_walkers={default_walkers}, max_walkers={max_walkers}"
            )
        if not 0.0 < min_efficiency <= 1.0:
            raise GatewayError(
                f"min_efficiency must be in (0, 1], got {min_efficiency}"
            )
        self.default_walkers = default_walkers
        self.max_walkers = max_walkers
        self.min_samples = min_samples
        self.min_efficiency = min_efficiency
        self.max_samples = max_samples
        self._samples: dict[str, list[float]] = {}
        self._plans: dict[str, int] = {}
        self._fits: dict[str, str] = {}

    def record(
        self, family: str, wall_time: float, size: Optional[int] = None
    ) -> None:
        """Record one completed job's wall time and refresh the plan.

        ``size`` is accepted for interface parity with
        :class:`PredictivePlanner`; this planner models whole families.
        """
        if wall_time <= 0:
            return
        samples = self._samples.setdefault(family, [])
        samples.append(float(wall_time))
        if len(samples) > self.max_samples:
            # sliding window: old measurements stop describing the mix of
            # instances tenants currently submit
            del samples[: len(samples) - self.max_samples]
        if len(samples) >= self.min_samples:
            self._refit(family)

    def _refit(self, family: str) -> None:
        try:
            fit = best_fit(self._samples[family])
        except ValueError:
            # degenerate samples (e.g. all identical); keep prior plan
            return
        candidates = []
        k = 1
        while k <= self.max_walkers:
            candidates.append(k)
            k *= 2
        try:
            speedups = predicted_speedup(fit, candidates)
        except ValueError:
            return
        plan = 1
        for k in candidates:
            if speedups[k] / k >= self.min_efficiency:
                plan = k
        self._plans[family] = plan
        self._fits[family] = fit.name

    def plan(
        self,
        family: str,
        size: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> int:
        """The current walker-count recommendation for ``family``
        (``size``/``deadline`` ignored — see :class:`PredictivePlanner`)."""
        return self._plans.get(family, self.default_walkers)

    def job_cost(
        self,
        family: str,
        n_walkers: int,
        size: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> Optional[float]:
        """Predicted walker-seconds (always ``None``: this planner keeps no
        per-family cost model; :class:`PredictivePlanner` provides one)."""
        return None

    def fitted_family(self, family: str) -> Optional[str]:
        """Which distribution family the plan is based on (None = default)."""
        return self._fits.get(family)

    def stats(self) -> dict[str, dict[str, object]]:
        return {
            family: {
                "samples": len(samples),
                "plan": self.plan(family),
                "fit": self._fits.get(family),
            }
            for family, samples in sorted(self._samples.items())
        }


class PredictivePlanner:
    """Drop-in :class:`WalkerPlanner` replacement backed by a live
    :class:`~repro.autoscale.Predictor`.

    Same surface (``plan`` / ``record`` / ``job_cost`` / ``fitted_family``
    / ``stats``), three upgrades: models are keyed by *(family, size)*
    with the aggregate-fallback ladder instead of family-only; plans can
    honor per-job deadlines (``P(min_k <= d)`` confidence targets); and
    every plan comes with a predicted walker-second cost for admission.
    The underlying store persists, so a restarted gateway plans from its
    predecessor's evidence instead of defaults.
    """

    def __init__(
        self,
        predictor: Predictor | None = None,
        *,
        max_walkers: int | None = None,
    ) -> None:
        self.predictor = predictor if predictor is not None else Predictor()
        self.max_walkers = (
            max_walkers if max_walkers is not None else self.predictor.max_walkers
        )
        self.default_walkers = self.predictor.default_walkers

    def record(
        self, family: str, wall_time: float, size: Optional[int] = None
    ) -> None:
        self.predictor.observe(family, wall_time, size=size)

    def plan(
        self,
        family: str,
        size: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> int:
        planned = self.predictor.choose_walkers(family, size, deadline)
        return max(1, min(planned, self.max_walkers))

    def job_cost(
        self,
        family: str,
        n_walkers: int,
        size: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> Optional[float]:
        return self.predictor.expected_cost(
            family, n_walkers, size=size, deadline=deadline
        )

    def fitted_family(self, family: str) -> Optional[str]:
        model = self.predictor.store.get(family)
        if model is None or model.fit is None:
            return None
        return model.fit.name

    def stats(self) -> dict[str, dict[str, object]]:
        return self.predictor.stats()
