"""Minimal HTTP/1.1 server pieces on raw asyncio streams.

The offline environment forbids aiohttp, so the gateway speaks HTTP the
same way :mod:`repro.net.protocol` speaks its frame protocol: hand-rolled
over ``asyncio.StreamReader`` / ``StreamWriter``, small enough to audit in
one sitting.  Only what a JSON API front door needs is implemented:

- :func:`read_request` — request line + headers + ``Content-Length`` body
  (no chunked uploads; responses are always ``Content-Length`` framed);
- :class:`HttpResponse` with :func:`json_response` / :func:`error_response`
  helpers — every API answer is a JSON object, errors carry
  ``{"error": ...}`` plus optional extra fields (``retry_after``);
- :class:`Router` — literal and ``{param}`` path segments, per-method
  dispatch, 404/405 as :class:`HttpError`;
- keep-alive: the connection loop in :mod:`repro.gateway.app` serves
  requests until the peer closes or sends ``Connection: close``, which is
  what lets a closed-loop bench client reuse one TCP connection per
  worker.

Size ceilings mirror the frame protocol's ``MAX_FRAME_BYTES`` philosophy:
a request line, header block, or body beyond the limit is a protocol
violation answered with 431/413, not an allocation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable, Optional
from urllib.parse import parse_qsl, unquote, urlsplit

import asyncio

from repro.errors import GatewayError

__all__ = [
    "HttpError",
    "HttpRequest",
    "HttpResponse",
    "Router",
    "encode_response",
    "error_response",
    "json_response",
    "read_request",
    "text_response",
]

#: request line + header block ceiling
MAX_HEADER_BYTES = 32 * 1024
#: request body ceiling — JSON job submissions are a few hundred bytes
MAX_BODY_BYTES = 1024 * 1024

_REASONS = {
    200: "OK",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    401: "Unauthorized",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    426: "Upgrade Required",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(GatewayError):
    """An HTTP-level failure carrying the status to answer with."""

    def __init__(
        self, status: int, message: str, headers: dict[str, str] | None = None
    ) -> None:
        super().__init__(message)
        self.status = status
        self.headers = headers or {}


@dataclass
class HttpRequest:
    """One parsed request: line, lowercased headers, raw body."""

    method: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]
    body: bytes = b""
    version: str = "HTTP/1.1"

    def header(self, name: str, default: str = "") -> str:
        return self.headers.get(name.lower(), default)

    @property
    def keep_alive(self) -> bool:
        connection = self.header("connection").lower()
        if self.version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"

    def json(self) -> Any:
        """The body parsed as JSON; raises :class:`HttpError` 400."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as err:
            raise HttpError(400, f"request body is not valid JSON: {err}")


@dataclass
class HttpResponse:
    """One response; ``encode_response`` adds framing headers."""

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: dict[str, str] = field(default_factory=dict)


def json_response(
    payload: Any, status: int = 200, headers: dict[str, str] | None = None
) -> HttpResponse:
    return HttpResponse(
        status=status,
        body=(json.dumps(payload, separators=(",", ":")) + "\n").encode(),
        headers=dict(headers or {}),
    )


def text_response(
    text: str, status: int = 200, content_type: str = "text/plain"
) -> HttpResponse:
    return HttpResponse(
        status=status, body=text.encode("utf-8"), content_type=content_type
    )


def error_response(
    status: int,
    message: str,
    headers: dict[str, str] | None = None,
    **extra: Any,
) -> HttpResponse:
    return json_response(
        {"error": message, **extra}, status=status, headers=headers
    )


def encode_response(response: HttpResponse, *, keep_alive: bool) -> bytes:
    reason = _REASONS.get(response.status, "Unknown")
    lines = [
        f"HTTP/1.1 {response.status} {reason}",
        f"Content-Type: {response.content_type}",
        f"Content-Length: {len(response.body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in response.headers.items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + response.body


# ----------------------------------------------------------------------
# request parsing
# ----------------------------------------------------------------------
async def read_request(
    reader: asyncio.StreamReader,
    *,
    max_header_bytes: int = MAX_HEADER_BYTES,
    max_body_bytes: int = MAX_BODY_BYTES,
) -> Optional[HttpRequest]:
    """Read one request; ``None`` on a clean EOF before the request line.

    Raises :class:`HttpError` on malformed or oversized requests — the
    connection loop answers it and closes.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as err:
        if not err.partial:
            return None
        raise HttpError(400, "connection closed mid-request") from None
    except asyncio.LimitOverrunError:
        raise HttpError(431, "request header block too large") from None
    if len(head) > max_header_bytes:
        raise HttpError(431, "request header block too large")
    try:
        request_line, *header_lines = head.decode("latin-1").split("\r\n")[:-2]
    except ValueError:
        raise HttpError(400, "malformed request head") from None
    parts = request_line.split(" ")
    if len(parts) != 3:
        raise HttpError(400, f"malformed request line: {request_line!r}")
    method, target, version = parts
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise HttpError(400, f"unsupported HTTP version {version!r}")
    split = urlsplit(target)
    headers: dict[str, str] = {}
    for line in header_lines:
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise HttpError(400, f"bad Content-Length: {length_text!r}") from None
    if length > max_body_bytes:
        raise HttpError(413, f"request body of {length} bytes is too large")
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise HttpError(400, "connection closed mid-body") from None
    return HttpRequest(
        method=method.upper(),
        path=unquote(split.path) or "/",
        query=dict(parse_qsl(split.query)),
        headers=headers,
        body=body,
        version=version,
    )


# ----------------------------------------------------------------------
# routing
# ----------------------------------------------------------------------
Handler = Callable[..., Awaitable[Any]]


class Router:
    """Method + path-pattern dispatch with ``{param}`` capture segments.

    >>> router = Router()
    >>> router.add("GET", "/v1/jobs/{job_id}", handler)

    ``resolve`` returns ``(handler, params)`` or raises :class:`HttpError`
    404 (no pattern matches the path) / 405 (path known, method not).
    """

    def __init__(self) -> None:
        self._routes: list[tuple[str, tuple[str, ...], Handler]] = []

    def add(self, method: str, pattern: str, handler: Handler) -> None:
        segments = tuple(pattern.strip("/").split("/"))
        self._routes.append((method.upper(), segments, handler))

    def _match(
        self, segments: tuple[str, ...], path_parts: list[str]
    ) -> Optional[dict[str, str]]:
        if len(segments) != len(path_parts):
            return None
        params: dict[str, str] = {}
        for pattern_part, path_part in zip(segments, path_parts):
            if pattern_part.startswith("{") and pattern_part.endswith("}"):
                if not path_part:
                    return None
                params[pattern_part[1:-1]] = path_part
            elif pattern_part != path_part:
                return None
        return params

    def resolve(self, method: str, path: str) -> tuple[Handler, dict[str, str]]:
        path_parts = path.strip("/").split("/")
        seen_path = False
        for route_method, segments, handler in self._routes:
            params = self._match(segments, path_parts)
            if params is None:
                continue
            seen_path = True
            if route_method == method.upper():
                return handler, params
        if seen_path:
            raise HttpError(405, f"method {method} not allowed on {path}")
        raise HttpError(404, f"no such endpoint: {path}")
