"""Server-side WebSocket (RFC 6455) on asyncio streams — the subset the
gateway needs to stream job progress events.

Scope: the server accepts an upgrade on an existing HTTP connection, sends
unmasked text frames (JSON event objects), answers pings, and closes with
a proper close frame.  Fragmentation is not produced and not accepted
(every gateway event fits one frame), and binary frames are rejected —
the event stream is a JSON-lines-over-frames channel, nothing more.
"""

from __future__ import annotations

import base64
import hashlib
import struct
from typing import Optional

import asyncio

from repro.errors import GatewayError

__all__ = [
    "OP_TEXT",
    "OP_CLOSE",
    "OP_PING",
    "OP_PONG",
    "accept_key",
    "handshake_response",
    "read_frame",
    "send_close",
    "send_text",
]

#: fixed GUID the handshake concatenates to the client nonce (RFC 6455 §4)
_WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

OP_CONT = 0x0
OP_TEXT = 0x1
OP_BINARY = 0x2
OP_CLOSE = 0x8
OP_PING = 0x9
OP_PONG = 0xA

#: inbound frames are tiny control traffic (closes, pings); anything
#: larger is a misbehaving client
MAX_INBOUND_PAYLOAD = 64 * 1024


def accept_key(client_key: str) -> str:
    """``Sec-WebSocket-Accept`` for a client's ``Sec-WebSocket-Key``."""
    digest = hashlib.sha1((client_key + _WS_GUID).encode("ascii")).digest()
    return base64.b64encode(digest).decode("ascii")


def handshake_response(client_key: str) -> bytes:
    """The complete 101 Switching Protocols response."""
    return (
        "HTTP/1.1 101 Switching Protocols\r\n"
        "Upgrade: websocket\r\n"
        "Connection: Upgrade\r\n"
        f"Sec-WebSocket-Accept: {accept_key(client_key)}\r\n"
        "\r\n"
    ).encode("ascii")


def _encode_frame(opcode: int, payload: bytes) -> bytes:
    """One unmasked server->client frame (FIN always set)."""
    head = bytes([0x80 | opcode])
    length = len(payload)
    if length < 126:
        head += bytes([length])
    elif length < 1 << 16:
        head += bytes([126]) + struct.pack("!H", length)
    else:
        head += bytes([127]) + struct.pack("!Q", length)
    return head + payload


async def send_text(writer: asyncio.StreamWriter, text: str) -> None:
    writer.write(_encode_frame(OP_TEXT, text.encode("utf-8")))
    await writer.drain()


async def send_close(
    writer: asyncio.StreamWriter, code: int = 1000, reason: str = ""
) -> None:
    payload = struct.pack("!H", code) + reason.encode("utf-8")
    writer.write(_encode_frame(OP_CLOSE, payload))
    await writer.drain()


async def _send_pong(writer: asyncio.StreamWriter, payload: bytes) -> None:
    writer.write(_encode_frame(OP_PONG, payload))
    await writer.drain()


async def read_frame(
    reader: asyncio.StreamReader,
) -> Optional[tuple[int, bytes]]:
    """Read one client frame; ``None`` on EOF at a frame boundary.

    Client frames must be masked (RFC 6455 §5.1) and unfragmented; the
    payload is returned unmasked.
    """
    try:
        head = await reader.readexactly(2)
    except asyncio.IncompleteReadError as err:
        if not err.partial:
            return None
        raise GatewayError("websocket closed mid-frame") from None
    fin = bool(head[0] & 0x80)
    opcode = head[0] & 0x0F
    masked = bool(head[1] & 0x80)
    length = head[1] & 0x7F
    if not fin or opcode == OP_CONT:
        raise GatewayError("fragmented websocket frames are not supported")
    if not masked:
        raise GatewayError("client websocket frames must be masked")
    try:
        if length == 126:
            (length,) = struct.unpack("!H", await reader.readexactly(2))
        elif length == 127:
            (length,) = struct.unpack("!Q", await reader.readexactly(8))
        if length > MAX_INBOUND_PAYLOAD:
            raise GatewayError(
                f"inbound websocket frame of {length} bytes is too large"
            )
        mask = await reader.readexactly(4)
        payload = await reader.readexactly(length) if length else b""
    except asyncio.IncompleteReadError:
        raise GatewayError("websocket closed mid-frame") from None
    unmasked = bytes(b ^ mask[i % 4] for i, b in enumerate(payload))
    return opcode, unmasked


async def serve_control_frames(
    reader: asyncio.StreamReader, writer: asyncio.StreamWriter
) -> None:
    """Drain client frames until close/EOF, answering pings.

    Run as a background task next to the event-sender: its completion
    means the client went away and streaming should stop.
    """
    while True:
        frame = await read_frame(reader)
        if frame is None:
            return
        opcode, payload = frame
        if opcode == OP_CLOSE:
            return
        if opcode == OP_PING:
            await _send_pong(writer, payload)
